"""Remote memoization: two hosts sharing one memo server daemon.

The multi-host deployment of the mLR memo tier, demonstrated over loopback
TCP in one process (in production the daemon runs standalone:
``python -m repro.net.server --port 9876 --shards 4``):

1. **Shared-tier warm start** — a `MemoServerDaemon` is spawned; job 1
   (scan 1) reconstructs with ``MemoConfig(transport="tcp")``, populating
   the daemon's sharded database; job 2 (scan 2 of the same sample,
   independent noise — the IC-inspection recurrence) runs as a *fresh*
   solver against the same daemon and hits the tier job 1 built.
2. **Scheduler tier over the wire** — a `ReconstructionScheduler` with
   ``ServiceConfig(memo_transport="tcp")`` seeds a job from the daemon
   through a `RemoteSnapshotStore` (what a second beamline host's
   scheduler would do).
3. **Fail-open** — the daemon is killed mid-reconstruction: the job
   completes on cold compute (degraded queries are counted, nothing
   fails), and once a daemon is back on the address the same client
   reconnects.

Run:  python examples/remote_memo.py [--quick] [--out DIR]
"""

import argparse
import json
import os

import numpy as np

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.net import MemoServerDaemon
from repro.service import JobSpec, ReconstructionScheduler, ServiceConfig
from repro.solvers import ADMMConfig


def build_problem(quick: bool):
    n = 16 if quick else 32
    g = LaminoGeometry((n, n, n), n_angles=12 if quick else 24,
                       det_shape=(n, n), tilt_deg=61.0)
    truth = brain_like(g.vol_shape, seed=7)
    scans = [simulate_data(truth, g, noise_level=0.03, seed=s) for s in (1, 2)]
    return g, scans


def memo_cfg(**over) -> MemoConfig:
    base = dict(tau=0.9, warmup_iterations=1, index_train_min=8,
                index_clusters=4, index_nprobe=2)
    base.update(over)
    return MemoConfig(**base)


def shared_tier_demo(g, scans, admm) -> dict:
    print("== shared-tier warm start over loopback TCP ==")
    report = {}
    with MemoServerDaemon(n_shards=2, memo=memo_cfg(),
                          name="demo-daemon") as daemon:
        host, port = daemon.address
        print(f"daemon listening on {host}:{port} (2 shards)")

        def tcp_config():
            return MLRConfig(
                chunk_size=4,
                memo=memo_cfg(transport="tcp", server_address=(host, port)),
                n_workers=2, n_shards=2,
            )

        rates = []
        for i, d in enumerate(scans):
            solver = MLRSolver(g, tcp_config(), admm=admm)
            result = solver.reconstruct(d)
            ns = solver.memo_executor.router.net_stats
            rates.append(result.memoized_fraction)
            print(
                f"job {i + 1}: hit rate {rates[-1]:.2f}  "
                f"(requests {ns.requests}, pipelined inserts "
                f"{ns.pipelined_inserts}, degraded {ns.degraded_queries})"
            )
            report[f"job{i + 1}"] = {
                "hit_rate": rates[-1],
                "requests": ns.requests,
                "pipelined_inserts": ns.pipelined_inserts,
                "degraded_queries": ns.degraded_queries,
            }
            solver.close()
        assert rates[1] > rates[0], "job 2 must warm-start from the shared tier"
        report["daemon"] = {
            "entries": daemon.router.entries(),
            "queries": daemon.stats.queries,
            "connections": daemon.stats.connections,
        }
        print(f"daemon tier: {daemon.router.entries()} entries, "
              f"{daemon.stats.queries} queries served")

        print("\n== scheduler warm start through RemoteSnapshotStore ==")
        sched = ReconstructionScheduler(
            ServiceConfig(n_workers=1, memo_transport="tcp",
                          memo_server=(host, port))
        )
        # an inproc job seeded from the remote tier (a second host's scheduler)
        job = sched.submit(
            JobSpec("remote-seeded", g, scans[1],
                    config=MLRConfig(chunk_size=4, memo=memo_cfg()), admm=admm)
        )
        job.wait()
        sched.shutdown()
        assert any(ev.kind == "warm_start" for ev in job.events), (
            "scheduler must seed from the daemon tier"
        )
        report["scheduler_job"] = {
            "warm_started": True,
            "hit_rate": job.memo_delta.hit_rate,
            "db_entries_start": job.db_entries_start,
        }
        print(f"scheduler job warm-started: hit rate "
              f"{job.memo_delta.hit_rate:.2f}, seeded "
              f"{job.db_entries_start} entries")
    return report


def fail_open_demo(g, scans, admm) -> dict:
    print("\n== fail-open: daemon killed mid-reconstruction ==")
    daemon = MemoServerDaemon(n_shards=2, memo=memo_cfg(), name="doomed-daemon")
    host, port = daemon.address
    cfg = MLRConfig(
        chunk_size=4,
        memo=memo_cfg(transport="tcp", server_address=(host, port)),
        n_workers=2, n_shards=2,
    )
    solver = MLRSolver(g, cfg, admm=admm)
    solver.memo_executor.router.backoff_initial_s = 0.01

    def kill_at_iteration(it, _u, _info):
        if it == 1 and daemon.running:
            print("  ... killing the daemon mid-run")
            daemon.close()

    result = solver.reconstruct(scans[0], callback=kill_at_iteration)
    ns = solver.memo_executor.router.net_stats
    assert np.isfinite(result.u).all(), "fail-open job must still complete"
    assert ns.degraded_queries > 0 or ns.degraded_insert_batches > 0
    print(f"job completed cold: {ns.degraded_queries} degraded queries, "
          f"{ns.degraded_insert_batches} dropped insert batches")

    with MemoServerDaemon(host=host, port=port, n_shards=2, memo=memo_cfg()):
        connects_before = ns.connects
        solver.memo_executor.router.reset_backoff()  # "the daemon is back"
        solver.reconstruct(scans[0])
        assert ns.connects == connects_before + 1, "client must reconnect"
        print("daemon restarted on the same address: client reconnected "
              f"(connect #{ns.connects})")
    solver.close()
    return {
        "completed": True,
        "degraded_queries": ns.degraded_queries,
        "degraded_insert_batches": ns.degraded_insert_batches,
        "reconnects": ns.connects,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small problem / few iterations (CI configuration)")
    parser.add_argument("--out", default="benchmarks/results/remote-memo",
                        help="report output directory")
    args = parser.parse_args()

    g, scans = build_problem(args.quick)
    admm = ADMMConfig(n_outer=4 if args.quick else 8, n_inner=2,
                      step_max_rel=4.0)
    report = {
        "quick": bool(args.quick),
        "shared_tier": shared_tier_demo(g, scans, admm),
        "fail_open": fail_open_demo(g, scans, admm),
    }
    os.makedirs(args.out, exist_ok=True)
    out_path = os.path.join(args.out, "remote_memo.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
