"""Streaming pipelined reconstruction: overlap ingest I/O with memoized compute.

Three demonstrations of the `repro.pipeline` subsystem:

1. **Pipelined execution** — the same memoized reconstruction run with
   ``pipeline=PipelineConfig(...)``: every op sweep becomes an overlapped
   reader -> memoized compute -> writer pipeline, bit-identical to the
   monolithic path (asserted below).
2. **Streaming ingest** — projections arrive block by block from a
   producer thread (the "detector"), the ``F2D`` preprocessing runs on
   early chunks before the scan finishes, and the reconstruction matches
   the batch run bit for bit.
3. **Overlapped-phase model** — the paper-scale DES study: serial vs
   pipelined sweep makespan over queue depths and compute workers, with
   SSD chunk reads/writes as the outer stages (Figure 18).

Run:  python examples/streaming_pipeline.py [--quick]
"""

import argparse
import threading

import numpy as np

from repro.cluster import CostModel, ProblemDims
from repro.core import (
    MemoConfig,
    MLRConfig,
    MLRSolver,
    PipelineConfig,
    simulate_pipeline,
)
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller/faster run")
    args = parser.parse_args()

    n = 16 if args.quick else 32
    n_outer = 4 if args.quick else 10
    geometry = LaminoGeometry((n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=3), geometry,
                         noise_level=0.05, seed=1)
    ops = LaminoOperators(geometry)
    admm = ADMMConfig(n_outer=n_outer, n_inner=4, step_max_rel=4.0)
    memo = MemoConfig(tau=0.92, warmup_iterations=2,
                      index_train_min=8, index_clusters=4, index_nprobe=2)

    # -- 1. pipelined vs monolithic: bit-identical --------------------------------
    serial = MLRSolver(
        geometry, MLRConfig(chunk_size=4, memo=memo), admm=admm, ops=ops
    ).reconstruct(data)
    piped_solver = MLRSolver(
        geometry,
        MLRConfig(chunk_size=4, memo=memo, pipeline=PipelineConfig(queue_depth=2)),
        admm=admm, ops=ops,
    )
    piped = piped_solver.reconstruct(data)
    stats = piped_solver.executor.pipeline_stats()
    assert np.array_equal(serial.u, piped.u), "pipelined run must be bit-identical"
    print(f"pipelined == monolithic bit-for-bit over {stats.sweeps} sweeps / "
          f"{stats.items} chunk-ops")
    print(f"  reader backpressure stalls: {stats.read_queue.producer_blocks}, "
          f"writer starvation waits: {stats.write_queue.consumer_blocks}, "
          f"memoization served {100 * piped.memoized_fraction:.0f}% of chunk-ops")

    # -- 2. streaming ingest: reconstruct while the scan arrives ------------------
    streaming_solver = MLRSolver(
        geometry, MLRConfig(chunk_size=4, memo=memo), admm=admm, ops=ops
    )
    ingest = streaming_solver.make_ingest()

    def detector() -> None:
        from repro.pipeline import QueueClosed

        block = 3  # deliberately misaligned with the chunk grid
        try:
            with ingest:
                for lo in range(0, n, block):
                    ingest.push(data[lo:lo + block])
        except QueueClosed:
            pass  # the consumer died and tore the stream down

    feeder = threading.Thread(target=detector, name="detector")
    feeder.start()
    try:
        streamed = streaming_solver.reconstruct_streaming(ingest)
    finally:
        feeder.join()
    assert np.array_equal(serial.u, streamed.u), "streaming must match batch"
    print(f"streaming ingest ({ingest.n_chunks} chunks, 3-angle blocks) == "
          f"batch reconstruction bit-for-bit")

    # -- 3. paper-scale overlapped-phase model (Figure 18) -------------------------
    cost = CostModel()
    dims = ProblemDims(n=1024, n_chunks=64)
    read = cost.chunk_read_time(dims)
    write = cost.chunk_write_time(dims)
    compute = cost.chunk_compute_time(dims)
    serial_s = dims.n_chunks * (read + compute + write)
    print(f"\npaper-scale sweep ({dims.n}^3, {dims.n_chunks} chunks): "
          f"read {read * 1e3:.2f} ms + compute {compute * 1e3:.2f} ms + "
          f"write {write * 1e3:.2f} ms per chunk")
    print(f"{'queue':>6} {'workers':>8} {'pipelined (s)':>14} {'speedup':>8} "
          f"{'bound':>6} {'fill/drain':>11}")
    for q in (1, 2, 4):
        for w in (1, 2, 4):
            p = simulate_pipeline(dims.n_chunks, read, compute, write,
                                  queue_depth=q, n_workers=w)
            print(f"{q:>6} {w:>8} {p.pipelined_time:>14.3f} {p.speedup:>8.2f} "
                  f"{p.speedup_bound:>6.2f} {p.fill_drain_time:>11.4f}")
    print(f"serial makespan: {serial_s:.3f} s — overlap hides everything but "
          f"the bottleneck stage (speedup <= serial / max stage)")


if __name__ == "__main__":
    main()
