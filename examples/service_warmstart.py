"""Reconstruction service: multi-job scheduling + cross-job warm starts.

The IC-inspection operating mode: near-identical samples are scanned job
after job, so the memoization database accumulated by one reconstruction is
a head start for the next.  This demo drives the `repro.service` subsystem
end to end:

1. **Two-job warm start** — scan-1 and scan-2 (same sample, independent
   noise) run as prioritized jobs on a `ReconstructionScheduler`; the
   scheduler's shared memo service seeds job 2 from job 1's database tier,
   and the per-job `MemoDBStats` deltas quantify the gain against a cold
   control run of the same scan.
2. **Persistence** — the shared tier is saved as a versioned on-disk
   snapshot (npz + checksummed JSON manifest), loaded back, and probed:
   the restored databases answer `query_batch` bit-identically to the
   live ones.
3. **Operations** — a burst of prioritized jobs on a bounded queue shows
   priority ordering, cooperative cancellation and admission control.

Run:  python examples/service_warmstart.py [--quick] [--out DIR]
"""

import argparse
import json
import os

import numpy as np

from repro.core import MemoConfig, MLRConfig
from repro.harness import experiments as E
from repro.harness.datasets import SMALL
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.service import (
    AdmissionError,
    JobSpec,
    JobState,
    ReconstructionScheduler,
    ServiceConfig,
)
from repro.solvers import ADMMConfig


def warmstart_demo(out_dir: str, quick: bool) -> dict:
    snapshot_dir = os.path.join(out_dir, "snapshot")
    result = E.fig_warmstart(
        spec=SMALL, sim_outer=4 if quick else 8, quick=quick,
        snapshot_dir=snapshot_dir,
    )
    print(result.report())
    assert result.warm_hit_rate > result.cold_hit_rate, (
        "warm-started job must beat its cold run"
    )
    assert result.snapshot_bit_identical, "snapshot round trip must be bit-identical"
    return {
        "cold_hit_rate": result.cold_hit_rate,
        "warm_hit_rate": result.warm_hit_rate,
        "warm_gain": result.warm_gain,
        "first_job_hit_rate": result.first_job_hit_rate,
        "snapshot_bit_identical": result.snapshot_bit_identical,
        "snapshot_partitions": result.snapshot_partitions,
        "snapshot_nbytes": result.snapshot_nbytes,
        "jobs": [
            dict(zip(["job", "mode", "queries", "hits", "hit_rate",
                      "entries_at_start"], row))
            for row in result.job_rows
        ],
    }


def operations_demo(quick: bool) -> dict:
    """Priority ordering, cancellation and admission control in one burst."""
    n = 12 if quick else 16
    geometry = LaminoGeometry((n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=7), geometry,
                         noise_level=0.05, seed=1)
    cfg = MLRConfig(
        chunk_size=4,
        memo=MemoConfig(tau=0.9, warmup_iterations=1, index_train_min=8,
                        index_clusters=4, index_nprobe=2),
    )
    admm = ADMMConfig(n_outer=2, n_inner=2, step_max_rel=4.0)

    def spec(name: str, priority: int) -> JobSpec:
        return JobSpec(name=name, geometry=geometry, projections=data,
                       config=cfg, admm=admm, priority=priority)

    rejected = 0
    with ReconstructionScheduler(
        ServiceConfig(n_workers=1, max_queue_depth=4, share_memo=True)
    ) as sched:
        handles = [sched.submit(spec(f"job-p{p}", priority=p)) for p in (0, 2, 1, 3)]
        victim = handles[2]
        victim.cancel()  # cooperative: queued jobs die in place
        for i in range(8):
            try:
                handles.append(sched.submit(spec(f"burst-{i}", priority=0)))
            except AdmissionError as exc:
                if not rejected:
                    print(f"admission control: {exc}")
                rejected += 1
        for handle in handles:
            handle.wait(timeout=600)
    states = {h.spec.name: h.state.value for h in handles}
    print(f"job states: {states}")
    assert states["job-p1"] == JobState.CANCELLED.value
    assert rejected > 0, "the burst should overflow the bounded queue"
    done = [h for h in handles if h.state is JobState.DONE]
    assert done and all(h.result is not None for h in done)
    return {
        "states": states,
        "rejected": rejected,
        "scheduler": {
            "submitted": sched.stats.submitted,
            "completed": sched.stats.completed,
            "cancelled": sched.stats.cancelled,
            "rejected": sched.stats.rejected,
            "peak_queue_depth": sched.stats.peak_queue_depth,
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller/faster run")
    parser.add_argument("--out", default=os.path.join("benchmarks", "results", "service"),
                        help="artifact directory (snapshot + report)")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    np.random.seed(0)  # the demo itself is deterministic; belt and braces

    report = {"quick": args.quick}
    print("== two-job warm start over the shared memo service ==")
    report["warmstart"] = warmstart_demo(args.out, args.quick)
    print("\n== scheduler operations: priority / cancellation / admission ==")
    report["operations"] = operations_demo(args.quick)

    report_path = os.path.join(args.out, "warmstart_report.json")
    with open(report_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\n[report saved to {report_path}; snapshot under "
          f"{os.path.join(args.out, 'snapshot')}]")


if __name__ == "__main__":
    main()
