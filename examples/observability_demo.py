"""Observability demo: one instrumented reconstruction, dumped and reported.

Runs a pipelined reconstruction against a loopback memo server daemon with
the :mod:`repro.obs` runtime enabled (``MLRConfig(obs=ObsConfig())``), so
every tier records as it works:

- trace spans — solver / ADMM outer iterations / per-chunk sweep kernels /
  USFFT fft+interp phases / ANN queries / pipeline stages / wire dispatch,
- metrics — per-op memo hit counters, queue depth gauges and block-time
  histograms, client/server request latency histograms.

Then it writes the JSONL dump, prints the per-stage latency / throughput
tables (the same output as ``python -m repro.obs report run.jsonl``), the
server's Prometheus text view, and cross-checks that the published
``memo_db_*`` gauges reconcile exactly with ``MemoDBStats``.

The daemon also brings up its live telemetry plane (``telemetry_port=0``):
the demo scrapes ``/metrics`` and ``/healthz`` over HTTP while the daemon
is serving, asserts the scrape reconciles exactly with the in-process
registry (and that histogram buckets are cumulative), and writes the
memo-tier heat report (``python -m repro.obs heat``) next to the dump.

With ``--distributed`` the daemon instead runs as a separate *process*
(``python -m repro.net.server``): trace context rides the request frames,
the daemon's spans are drained over ``MSG_TRACE_PULL``, and the two JSONL
dumps are merged into one stitched cross-process trace tree with the
per-hop wire-cost table.

Run:  python examples/observability_demo.py [--quick] [--distributed] [--out DIR]
"""

import argparse
import os
import re
import socket
import subprocess
import sys
import time
import urllib.request

from repro.core import MemoConfig, MLRConfig, MLRSolver, ObsConfig, PipelineConfig
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.net import MemoServerDaemon
from repro.obs import build_report, dump_jsonl, load_jsonl, render_report, to_prometheus
from repro.obs import runtime as obs
from repro.obs.export import dump_lines
from repro.obs.heat import build_heat_report, entry_records, render_heat_report
from repro.obs.report import merge_dumps
from repro.solvers import ADMMConfig


def build_problem(quick: bool):
    n = 16 if quick else 32
    g = LaminoGeometry((n, n, n), n_angles=12 if quick else 24,
                       det_shape=(n, n), tilt_deg=61.0)
    truth = brain_like(g.vol_shape, seed=7)
    data = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, LaminoOperators(g), data


def memo_cfg(**over) -> MemoConfig:
    # index_train_min is low so the ANN index trains even at --quick scale
    # and the memo.ann_query stage shows up in the report
    base = dict(tau=0.9, warmup_iterations=1, index_train_min=4,
                index_clusters=2, index_nprobe=2)
    base.update(over)
    return MemoConfig(**base)


def _http_get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        assert resp.status == 200, (url, resp.status)
        return resp.read()


def _series(text: str) -> dict:
    """{sample-line-without-value: value} for every non-heat series.

    ``memo_entry_*`` heat histograms age with the wall clock between the
    scrape and the local render, so they are excluded from the exact-match
    reconciliation (their bucket shape is still validated)."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#") or line.startswith("memo_entry_"):
            continue
        key, val = line.rsplit(" ", 1)
        out[key] = val
    return out


def _assert_cumulative_buckets(text: str) -> int:
    """Every histogram's buckets must be non-decreasing in le-order."""
    last: dict = {}
    n = 0
    for line in text.splitlines():
        if "_bucket{" not in line:
            continue
        key = re.sub(r'le="[^"]*",?', "", line.rsplit(" ", 1)[0])
        val = float(line.rsplit(" ", 1)[1])
        assert val >= last.get(key, 0.0), f"non-cumulative bucket: {line}"
        last[key] = val
        n += 1
    return n


def spawn_server(port: int) -> subprocess.Popen:
    """Start ``python -m repro.net.server`` with tracing enabled and wait
    until its listener accepts."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    env["REPRO_OBS"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.server",
         "--host", "127.0.0.1", "--port", str(port),
         "--shards", "2", "--tau", "0.9"],
        env=env, cwd=repo,
    )
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return proc
        except OSError:
            time.sleep(0.1)
    proc.terminate()
    raise RuntimeError("memo server subprocess never came up")


def run_distributed(args) -> int:
    g, ops, data = build_problem(args.quick)
    admm = ADMMConfig(n_outer=5 if args.quick else 8, n_inner=2,
                      step_max_rel=4.0)
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()

    print("== cross-process traced reconstruction ==")
    proc = spawn_server(port)
    print(f"spawned `python -m repro.net.server` (pid {proc.pid}) "
          f"on 127.0.0.1:{port}")
    try:
        cfg = MLRConfig(
            chunk_size=4,
            memo=memo_cfg(transport="tcp", server_address=("127.0.0.1", port)),
            pipeline=PipelineConfig(queue_depth=2),
            obs=ObsConfig(),
        )
        solver = MLRSolver(g, cfg, admm=admm, ops=ops)
        result = solver.reconstruct(data)
        print(f"reconstructed: {result.u.shape}, "
              f"memoized fraction {100 * result.memoized_fraction:.0f}%")
        # drain the daemon's span rings over the wire before closing
        pulled = solver.memo_executor.router.trace_pull()
        solver.close()
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    out_dir = args.out or "."
    os.makedirs(out_dir, exist_ok=True)
    local_path = os.path.join(out_dir, "observability_demo_client.jsonl")
    n_lines = dump_jsonl(local_path)
    server_path = os.path.join(out_dir, "observability_demo_server.jsonl")
    with open(server_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(dump_lines([], pulled["spans"],
                                      pulled["dropped"])) + "\n")
    print(f"\nwrote {n_lines} client records to {local_path}")
    print(f"wrote {len(pulled['spans'])} server spans from "
          f"'{pulled['server']}' to {server_path}")

    print("\n== stitched cross-process report "
          "(python -m repro.obs report client.jsonl server.jsonl) ==")
    merged = merge_dumps([load_jsonl(local_path), load_jsonl(server_path)])
    report = render_report(build_report(merged))
    print(report)
    assert "processes" in report and " 2 processes" in report, \
        "expected the trace tree to span both processes"
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem + few iterations (the CI configuration)")
    parser.add_argument("--distributed", action="store_true",
                        help="run the memo daemon as a separate process and "
                             "stitch the cross-process trace")
    parser.add_argument("--out", default=None,
                        help="directory for the JSONL dump (default: cwd)")
    args = parser.parse_args()

    if args.distributed:
        return run_distributed(args)

    g, ops, data = build_problem(args.quick)
    admm = ADMMConfig(n_outer=5 if args.quick else 8, n_inner=2,
                      step_max_rel=4.0)

    print("== instrumented pipelined reconstruction over loopback TCP ==")
    with MemoServerDaemon(n_shards=2, memo=memo_cfg(), name="obs-demo",
                          telemetry_port=0) as daemon:
        host, port = daemon.address
        print(f"daemon listening on {host}:{port} (2 shards), "
              f"telemetry plane at {daemon.telemetry.url}")
        cfg = MLRConfig(
            chunk_size=4,
            memo=memo_cfg(transport="tcp", server_address=daemon.address),
            pipeline=PipelineConfig(queue_depth=2),
            obs=ObsConfig(),  # the only line observability costs
        )
        solver = MLRSolver(g, cfg, admm=admm, ops=ops)
        result = solver.reconstruct(data)
        print(f"reconstructed: {result.u.shape}, "
              f"memoized fraction {100 * result.memoized_fraction:.0f}%")

        # the server's view, as a Prometheus scrape would see it
        payload = solver.memo_executor.router.metrics()
        prom = to_prometheus(payload["metrics"])
        served = [ln for ln in prom.splitlines()
                  if ln.startswith("net_server_") and "_max" not in ln
                  and "bucket" not in ln and "_sum" not in ln][:6]
        print("\n== server metrics (prometheus text, excerpt) ==")
        print("\n".join(served))

        # reconcile the published gauges against the authoritative stats
        snapshot = obs.snapshot()
        for op in cfg.memo.memo_ops:
            expected = solver.memo_executor.db_stats(op).as_dict()
            got = {
                e["name"][len("memo_db_"):]: e["value"]
                for e in snapshot
                if e["labels"].get("op") == op and e["name"].startswith("memo_db_")
                and e["name"] != "memo_db_hit_rate"
            }
            mismatches = {k: (v, got.get(k)) for k, v in expected.items()
                          if got.get(k) != v}
            assert not mismatches, mismatches
        print("\nmemo_db_* gauges reconcile exactly with MemoDBStats for "
              f"{len(cfg.memo.memo_ops)} ops")
        solver.close()

        # -- live telemetry plane: scrape the daemon's HTTP endpoints --
        base = daemon.telemetry.url
        assert _http_get(base + "/healthz") == b"ok\n"
        scraped = _http_get(base + "/metrics").decode("utf-8")
        n_buckets = _assert_cumulative_buckets(scraped)
        scraped_series = _series(scraped)
        local_series = _series(to_prometheus(obs.snapshot()))
        drift = {k: (scraped_series.get(k), local_series.get(k))
                 for k in scraped_series.keys() | local_series.keys()
                 if scraped_series.get(k) != local_series.get(k)}
        assert not drift, dict(list(drift.items())[:8])
        print(f"\nlive scrape of {base}/metrics reconciles exactly with the "
              f"in-process registry ({len(scraped_series)} series, "
              f"{n_buckets} cumulative buckets); /healthz is ok")

        # -- memo-tier heat, straight off the live daemon state --
        heat_text = render_heat_report(
            build_heat_report(list(entry_records(daemon.pull_state()))))

    out_dir = args.out or "."
    os.makedirs(out_dir, exist_ok=True)
    heat_path = os.path.join(out_dir, "heat_report.txt")
    with open(heat_path, "w", encoding="utf-8") as fh:
        fh.write(heat_text + "\n")
    print("\n== memo-tier heat (python -m repro.obs heat HOST:PORT) ==")
    print(heat_text)
    print(f"wrote heat report to {heat_path}")
    dump_path = os.path.join(out_dir, "observability_demo.jsonl")
    n_lines = dump_jsonl(dump_path)
    print(f"\nwrote {n_lines} JSONL records to {dump_path}")

    print("\n== per-stage report (python -m repro.obs report) ==")
    print(render_report(build_report(load_jsonl(dump_path))))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
