"""Multi-GPU scaling study on the simulated Polaris platform.

Runs a real (scaled-down) reconstruction on the *distributed* memoized
executor — 4 simulated GPU workers over a 2-shard memoization service —
then replays its worker-tagged trace at paper scale across 1..16 simulated
A100s and 1..4 index shards: the Section 5.2 / Figures 14-16 experiment
(intra-node scaling, the inter-node dip, memory-node NIC saturation,
query-latency inflation) plus the sharded-service surface.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.cluster import ProblemDims
from repro.core import MemoConfig, MLRConfig, MLRSolver, simulate_iteration


def main() -> None:
    # -- real run at simulation scale to harvest the memoization trace ---------
    from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
    from repro.solvers import ADMMConfig

    n = 32
    n_workers, n_shards = 4, 2
    geometry = LaminoGeometry((n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=3), geometry,
                         noise_level=0.05, seed=1)
    ops = LaminoOperators(geometry)
    admm = ADMMConfig(n_outer=10, n_inner=4, step_max_rel=4.0)
    solver = MLRSolver(
        geometry,
        MLRConfig(chunk_size=4, memo=MemoConfig(tau=0.92, warmup_iterations=2),
                  n_workers=n_workers, n_shards=n_shards),
        admm=admm,
        ops=ops,
    )
    result = solver.reconstruct(data)
    ex = solver.executor
    steady = [ev for ev in result.events if ev.outer == admm.n_outer - 1]
    print(f"trace harvested: {len(steady)} chunk-ops in the steady iteration, "
          f"{ex.router.entries()} database entries, "
          f"{n_workers} workers x {n_shards} shards")

    print("\nper-shard memoization service:")
    for s, st in enumerate(ex.per_shard_db_stats()):
        print(f"  shard {s}: {st.queries} queries, hit rate {st.hit_rate:.0%}, "
              f"{ex.router.per_shard_entries()[s]} entries")
    print("per-worker key coalescing:")
    for w, cs in enumerate(ex.per_worker_coalesce_stats()):
        print(f"  worker {w}: {cs.keys} keys in {cs.messages} messages "
              f"(mean batch {cs.mean_batch:.2f})")

    # -- paper-scale replay across GPU counts and index shards -------------------
    # the key population is the modeled beamline-scale database (months of
    # accumulated scans), not the sim-scale entry count: index search has to
    # be visible next to the wire time for the shard dimension to mean much
    dims = ProblemDims(n=1024, n_chunks=64)
    paper_keys = 100_000_000
    print(f"\n{'GPUs':>5} {'shards':>7} {'LSP (s)':>9} {'speedup':>8} "
          f"{'mem-NIC util':>13} {'query p50 (ms)':>15} {'>100ms':>7}")
    base = None
    for g in (1, 2, 4, 8, 16):
        for s in (1, 4):
            perf = simulate_iteration(
                dims, n_gpus=g, variant="canc_fused", n_inner=4,
                trace=steady, db_keys=paper_keys, n_shards=s,
                trace_by_location=True,
            )
            base = base or perf.lsp_time
            lat = np.asarray(perf.query_latencies)
            print(f"{g:>5} {s:>7} {perf.lsp_time:>9.2f} {base / perf.lsp_time:>8.2f} "
                  f"{perf.memory_nic_utilization():>12.0%} "
                  f"{np.median(lat) * 1e3 if lat.size else 0:>15.1f} "
                  f"{np.mean(lat > 0.1) if lat.size else 0:>7.0%}")
    print("\nintra-node scaling is near-linear; crossing nodes (>4 GPUs) adds "
          "all-to-all rechunking traffic, and the shared memory-node NIC "
          "becomes the bottleneck — sharding the index database parallelizes "
          "the similarity search but cannot widen the NIC (Figures 14-16).")


if __name__ == "__main__":
    main()
