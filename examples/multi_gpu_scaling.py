"""Multi-GPU scaling study on the simulated Polaris platform.

Runs a real (scaled-down) memoized reconstruction to obtain the hit/miss
trace, then replays that trace at paper scale across 1..16 simulated A100s —
the Section 5.2 / Figures 14-16 experiment: intra-node scaling, the
inter-node dip, memory-node NIC saturation, and query-latency inflation.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.cluster import ProblemDims
from repro.core import MLRConfig, MLRSolver, MemoConfig, simulate_iteration
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig


def main() -> None:
    # -- real run at simulation scale to harvest the memoization trace ---------
    n = 32
    geometry = LaminoGeometry((n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=3), geometry,
                         noise_level=0.05, seed=1)
    ops = LaminoOperators(geometry)
    admm = ADMMConfig(n_outer=10, n_inner=4, step_max_rel=4.0)
    solver = MLRSolver(
        geometry,
        MLRConfig(chunk_size=4, memo=MemoConfig(tau=0.92, warmup_iterations=2)),
        admm=admm,
        ops=ops,
    )
    result = solver.reconstruct(data)
    steady = [ev for ev in result.events if ev.outer == admm.n_outer - 1]
    db_keys = sum(1 for ev in result.events if ev.case == "miss")
    print(f"trace harvested: {len(steady)} chunk-ops in the steady iteration, "
          f"{db_keys} database entries")

    # -- paper-scale replay across GPU counts -----------------------------------
    dims = ProblemDims(n=1024, n_chunks=64)
    print(f"\n{'GPUs':>5} {'LSP (s)':>9} {'speedup':>8} {'mem-NIC util':>13} "
          f"{'query p50 (ms)':>15} {'>100ms':>7}")
    base = None
    for g in (1, 2, 4, 8, 16):
        perf = simulate_iteration(
            dims, n_gpus=g, variant="canc_fused", n_inner=4,
            trace=steady, db_keys=max(db_keys, 1),
        )
        base = base or perf.lsp_time
        lat = np.asarray(perf.query_latencies)
        print(f"{g:>5} {perf.lsp_time:>9.2f} {base / perf.lsp_time:>8.2f} "
              f"{perf.memory_nic_utilization():>12.0%} "
              f"{np.median(lat) * 1e3 if lat.size else 0:>15.1f} "
              f"{np.mean(lat > 0.1) if lat.size else 0:>7.0%}")
    print("\nintra-node scaling is near-linear; crossing nodes (>4 GPUs) adds "
          "all-to-all rechunking traffic, and the shared memory-node NIC "
          "becomes the bottleneck — the Figures 14-16 story.")


if __name__ == "__main__":
    main()
