"""IC inspection scenario: fine features, strict threshold, offload planning.

The paper motivates laminography with integrated-circuit imaging at
sub-10-nm resolution: fine signal traces demand the strict similarity
threshold (tau = 0.95 per Section 4.5), and the full-resolution problem
does not fit in CPU memory — ADMM-Offload plans which variables spill to
SSD.  This example runs both parts: a scaled-down IC reconstruction with
strict-tau memoization, and the paper-scale offload plan for the same
experiment.

Run:  python examples/ic_inspection.py
"""

from repro.cluster import CostModel, ProblemDims
from repro.core import (
    IterationSchedule,
    MemoConfig,
    MLRConfig,
    MLRSolver,
    OffloadPlanner,
    greedy_offload,
)
from repro.lamino import LaminoGeometry, LaminoOperators, ic_layers, simulate_data
from repro.solvers import ADMMConfig, ADMMSolver, accuracy


def main() -> None:
    # -- scaled-down IC reconstruction with strict tau --------------------------
    n = 32
    geometry = LaminoGeometry((n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0)
    truth = ic_layers(geometry.vol_shape, n_layers=3, seed=7)
    data = simulate_data(truth, geometry, noise_level=0.02, seed=2)
    ops = LaminoOperators(geometry)
    admm = ADMMConfig(alpha=5e-4, rho=0.5, n_outer=16, n_inner=4, step_max_rel=4.0)

    reference = ADMMSolver(ops, admm).run(data)
    config = MLRConfig(
        chunk_size=4,
        memo=MemoConfig(tau=0.95, warmup_iterations=2),  # fine IC features
    )
    result = MLRSolver(geometry, config, admm=admm, ops=ops).reconstruct(data)
    print("IC phantom, strict threshold tau=0.95 (Section 4.5):")
    print(f"  memoized fraction: {100 * result.memoized_fraction:.0f}%")
    print(f"  accuracy vs original: {accuracy(reference.u.real, result.u.real):.3f}")

    # -- paper-scale offload plan for the same run -------------------------------
    cost = CostModel()
    dims = ProblemDims(n=1024, n_chunks=64)
    schedule = IterationSchedule.from_cost_model(dims, cost)
    planner = OffloadPlanner(schedule, cost)
    best = planner.best_plan()
    greedy = greedy_offload(schedule, cost)
    print("\nADMM-Offload plan at (1K)^3 (Section 5.1):")
    print(f"  offloaded variables: {', '.join(best.offloaded)}")
    print(f"  peak RSS: {best.peak_bytes / 2**30:.1f} GiB "
          f"(baseline {best.baseline_peak_bytes / 2**30:.1f} GiB, "
          f"saving {100 * best.memory_saving:.1f}%)")
    print(f"  exposed transfer time: {best.exposed_time:.2f} s "
          f"({100 * best.time_loss:.1f}% of the iteration)")
    print(f"  MT metric: {best.mt if best.mt != float('inf') else 'inf'} "
          f"(greedy baseline: {greedy.mt:.2f})")


if __name__ == "__main__":
    main()
