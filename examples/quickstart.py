"""Quickstart: memoized laminography reconstruction in ~30 lines.

Builds a synthetic flat specimen, simulates a laminography scan, and
reconstructs it twice — with the original ADMM-FFT and with mLR's
memoization — then compares quality and the fraction of FFT operations the
memoization replaced.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig, ADMMSolver, accuracy, psnr


def main() -> None:
    n = 32
    geometry = LaminoGeometry(
        vol_shape=(n, n, n), n_angles=n, det_shape=(n, n), tilt_deg=61.0
    )
    truth = brain_like(geometry.vol_shape, seed=3)
    data = simulate_data(truth, geometry, noise_level=0.03, seed=1)
    print(f"geometry: {geometry.vol_shape} volume, {geometry.n_angles} angles, "
          f"tilt {geometry.tilt_deg} deg")

    ops = LaminoOperators(geometry)
    admm = ADMMConfig(alpha=1e-3, rho=0.5, n_outer=20, n_inner=4, step_max_rel=4.0)

    # -- original ADMM-FFT ----------------------------------------------------
    reference = ADMMSolver(ops, admm).run(data)
    print(f"\noriginal ADMM-FFT: loss {reference.history['loss'][0]:.2f} -> "
          f"{reference.history['loss'][-1]:.2f}, "
          f"PSNR vs truth {psnr(truth, reference.u.real):.1f} dB")

    # -- mLR (memoized) ---------------------------------------------------------
    config = MLRConfig(chunk_size=4, memo=MemoConfig(tau=0.94, warmup_iterations=2))
    solver = MLRSolver(geometry, config, admm=admm, ops=ops)
    result = solver.reconstruct(data)
    print(f"mLR (tau={config.memo.tau}): memoization replaced "
          f"{100 * result.memoized_fraction:.0f}% of FFT chunk-operations")
    print(f"case counts: {result.case_counts}")
    print(f"accuracy vs original reconstruction (paper Eq. 5): "
          f"{accuracy(reference.u.real, result.u.real):.3f}")
    print(f"PSNR vs ground truth: {psnr(truth, result.u.real):.1f} dB")

    mid = geometry.vol_shape[1] // 2
    err = np.abs(reference.u.real - result.u.real)[:, mid, :]
    print(f"max mid-slice deviation between the two reconstructions: {err.max():.4f}")


if __name__ == "__main__":
    main()
