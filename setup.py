"""Legacy setup shim: the execution environment is offline and lacks the
``wheel`` package, so ``pip install -e .`` must go through the classic
``setup.py develop`` path instead of PEP 660."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "mLR: scalable laminography reconstruction based on memoization "
        "(SC'25 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
