"""Figure 9: operation cancellation and fusion ablation."""

from benchmarks._util import emit
from repro.harness import experiments as E


def _get(rows, dataset, workload, variant_prefix):
    for ds, wl, var, sec in rows:
        if ds == dataset and wl == workload and var.startswith(variant_prefix):
            return sec
    raise KeyError((dataset, workload, variant_prefix))


def test_fig09_cancellation(benchmark):
    result = benchmark.pedantic(E.fig09_cancellation, iterations=1, rounds=1)
    emit("fig09_cancellation", result.report())
    for ds in ("1K", "1.5K"):
        full = _get(result.rows, ds, "LSP(4xFFT)", "w/ cancellation w/ fusion")
        none = _get(result.rows, ds, "LSP(4xFFT)", "w/o cancellation")
        assert full < none  # cancellation + fusion wins
    # cancellation WITHOUT fusion pays the CPU-subtraction penalty relative
    # to the fused variant (the Section 4.2 effect)
    small_nofuse = _get(result.rows, "1K", "LSP(4xFFT)", "w/ cancellation w/o fusion")
    small_fused = _get(result.rows, "1K", "LSP(4xFFT)", "w/ cancellation w/ fusion")
    assert small_nofuse >= small_fused * 0.95
