"""Figure 15: memory-node interconnect utilization vs GPU count."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig15_bandwidth(benchmark):
    result = benchmark.pedantic(
        E.fig15_bandwidth, kwargs=dict(sim_outer=10, quick=False),
        iterations=1, rounds=1,
    )
    rows = "\n".join(
        f"  {g} GPUs: {100 * u:.0f}%"
        for g, u in zip(result.gpu_counts, result.nic_utilization)
    )
    emit("fig15_bandwidth", "Figure 15: interconnect utilization\n" + rows)
    util = dict(zip(result.gpu_counts, result.nic_utilization))
    # utilization grows with GPU count and approaches the bottleneck
    assert util[16] > util[1]
    assert util[16] > 0.35  # heading towards the bottleneck (paper: near peak)
