"""Ablation of this reproduction's engineering deviations (DESIGN.md §6).

The paper's memoization as literally described (verbatim value reuse, no
staleness bound) is numerically unstable at reproduction scale; this bench
quantifies what each added mechanism buys — the evidence behind the design
deviations recorded in DESIGN.md / EXPERIMENTS.md.
"""

import numpy as np

from benchmarks._util import emit
from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.harness.datasets import SMALL, build
from repro.lamino import LaminoOperators
from repro.solvers import ADMMConfig, ADMMSolver, accuracy

ADMM = ADMMConfig(alpha=1e-3, rho=0.5, n_outer=16, n_inner=4, step_max_rel=4.0)


def run_variant(geometry, ops, data, **memo_over):
    base = dict(tau=0.92, warmup_iterations=2, index_train_min=8, index_clusters=4)
    base.update(memo_over)
    cfg = MLRConfig(chunk_size=SMALL.sim_chunk, memo=MemoConfig(**base))
    res = MLRSolver(geometry, cfg, admm=ADMM, ops=ops).reconstruct(data)
    return res


def ablation():
    geometry, truth, data = build(SMALL)
    ops = LaminoOperators(geometry)
    ref = ADMMSolver(ops, ADMM).run(data)
    rows = []
    variants = {
        "full (affine reuse + staleness bound)": {},
        "no scale correction (verbatim reuse)": {"scale_correction": False},
        "no staleness bound": {"max_consecutive_reuse": 10_000},
        "no local cache": {"cache": None},
    }
    results = {}
    for name, over in variants.items():
        res = run_variant(geometry, ops, data, **over)
        acc = accuracy(ref.u.real, res.u.real)
        rows.append([name, round(acc, 3), round(res.memoized_fraction, 2)])
        results[name] = acc
    return rows, results


def test_ablation_deviations(benchmark):
    rows, results = benchmark.pedantic(ablation, iterations=1, rounds=1)
    lines = ["Ablation: engineering deviations (accuracy vs exact solver)"]
    lines += [f"  {name:<40} acc={acc:<8} memo={memo}" for name, acc, memo in rows]
    emit("ablation_deviations", "\n".join(lines))
    full = results["full (affine reuse + staleness bound)"]
    # each removed mechanism hurts (or at best matches) accuracy
    assert full >= results["no scale correction (verbatim reuse)"] - 0.05
    assert full >= results["no staleness bound"] - 0.05
    # verbatim reuse is catastrophically worse (the divergence that motivated
    # affine reuse)
    assert results["no scale correction (verbatim reuse)"] < full - 0.1
    assert np.isfinite(full)
