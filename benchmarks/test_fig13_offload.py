"""Figure 13: ADMM-Offload vs greedy and LRU baselines."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig13_offload(benchmark):
    result = benchmark.pedantic(E.fig13_offload, iterations=1, rounds=1)
    emit("fig13_offload", result.report())
    best = result.outcomes["ADMM-Offload"]
    greedy = result.outcomes["ADMM greedy offload"]
    lru = result.outcomes["ADMM LRU offload"]
    base = result.outcomes["ADMM (no offload)"]
    # ADMM-Offload saves memory with (near-)zero exposed time
    assert best.memory_saving > 0.05
    assert best.time_loss < 0.05
    # greedy pays heavily on the critical path (paper: 81.5% loss)
    assert greedy.time_loss > 0.5
    # MT ordering: ADMM-Offload > greedy (paper: 1.38 vs 0.51)
    assert best.mt > greedy.mt
    # LRU cannot prefetch, so it also loses big (paper: 40.5% worse)
    assert lru.time_loss > best.time_loss
    assert base.peak_bytes >= best.peak_bytes
