"""Figure 14: FFT-operation and overall scaling across GPUs/nodes."""

import pytest

from benchmarks._util import emit
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def scaling():
    return E.fig14_scaling(sim_outer=10, quick=False)


def test_fig14_scaling(benchmark, scaling):
    result = benchmark.pedantic(lambda: scaling, iterations=1, rounds=1)
    emit("fig14_scaling", result.report())
    overall = dict(zip(result.gpu_counts, result.overall))
    # intra-node scaling helps (paper: 1.36x from 2 to 4 GPUs)
    assert overall[2] < overall[1]
    assert overall[4] < overall[2] * 1.02
    # diminishing returns past one node (paper: ~1% loss from 4 to 8)
    gain_intra = overall[1] / overall[4]
    gain_inter = overall[4] / overall[16]
    assert gain_intra > gain_inter
    # per-op speedup at 16 GPUs in the paper's ~2x ballpark for Fu1D
    fu1d = result.op_times["Fu1D"]
    assert fu1d[0] / fu1d[-1] > 1.5
