"""Figure 17: convergence loss with and without memoization.

Known deviation (see EXPERIMENTS.md): at this reproduction's scale the
memoized trajectory's true loss oscillates above the exact solver's curve
instead of tracking it tightly; the assertions check the paper's qualitative
claims that hold here — no divergence, no failure to descend — rather than
curve overlap.
"""

import numpy as np

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig17_convergence(benchmark):
    result = benchmark.pedantic(
        E.fig17_convergence, kwargs=dict(n_outer=40, tau=0.96, quick=False),
        iterations=1, rounds=1,
    )
    emit("fig17_convergence", result.report())
    lw = np.asarray(result.loss_without)
    lm = np.asarray(result.loss_with)
    # the exact solver converges strongly
    assert lw[-1] < 0.2 * lw[0]
    # the memoized solver descends from its start ...
    assert lm[1:].min() < 0.8 * lm[0]
    # ... and stays bounded (no divergence — a diverged run exceeds its
    # starting loss by many orders of magnitude) throughout
    assert lm.max() < 30.0 * lm[0]
