"""Table 1: reconstruction accuracy vs the similarity threshold tau."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_tab01_accuracy(benchmark):
    result = benchmark.pedantic(
        E.tab01_accuracy, kwargs=dict(n_outer=24, quick=False),
        iterations=1, rounds=1,
    )
    emit("tab01_accuracy", result.report())
    accs = dict(zip(result.taus, result.accuracies))
    # larger tau -> higher accuracy (the Table 1 trend), allowing small
    # non-monotonic wiggle between adjacent taus
    assert accs[0.96] > accs[0.86]
    assert accs[0.94] > accs[0.88]
    # the default threshold keeps accuracy in a usable band
    assert accs[0.92] > 0.6
    # and memoization stays substantial throughout the sweep
    assert all(m > 0.3 for m in result.memo_fractions)
