"""Figure 10: memoization case breakdown per FFT operation."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig10_memo_breakdown(benchmark):
    result = benchmark.pedantic(
        E.fig10_memo_breakdown, kwargs=dict(sim_outer=12, quick=False),
        iterations=1, rounds=1,
    )
    emit("fig10_memo_breakdown", result.report())
    for _op, cases in result.data.items():
        orig = sum(cases["orig"].values())
        fail = sum(cases["fail"].values())
        suc = sum(cases["suc"].values())
        cached = sum(cases["cached"].values())
        # failed memoization costs barely more than the original computation
        assert fail < 1.2 * orig
        # successful memoization beats computing; the local cache beats both
        assert suc < orig
        assert cached < suc
    # all three cases occur in a real run
    assert set(result.case_distribution) >= {"miss", "db_hit", "cache_hit"}
