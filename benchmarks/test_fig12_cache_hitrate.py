"""Figure 12: private vs global memoization-cache hit rates."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig12_cache_hitrate(benchmark):
    result = benchmark.pedantic(
        E.fig12_cache_hitrate, kwargs=dict(n_outer=30, quick=False),
        iterations=1, rounds=1,
    )
    emit("fig12_cache_hitrate", result.report())
    import numpy as np

    priv = np.mean([hr for _, hr in result.private_series[3:]])
    glob = np.mean([hr for _, hr in result.global_series[3:]])
    # similar hit rates (the Figure 12 observation) ...
    assert abs(priv - glob) < 0.35
    # ... at a fraction of the similarity-comparison cost (85% in the paper)
    assert result.comparison_saving > 0.5
