"""Figure 11: key coalescing reduces per-key communication + search time."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig11_coalesce(benchmark):
    result = benchmark.pedantic(E.fig11_coalesce, iterations=1, rounds=1)
    emit("fig11_coalesce", result.report())
    assert result.improvement > 0.2  # paper reports 25%
    w = result.per_key["with"]
    wo = result.per_key["without"]
    assert w["communication"] < wo["communication"]
    assert w["similarity_search"] < wo["similarity_search"]
