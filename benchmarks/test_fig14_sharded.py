"""Figure 14 companion: multi-worker execution over a sharded memo service."""

import pytest

from benchmarks._util import emit
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def sharded():
    return E.fig14_sharded(
        n_workers=4,
        n_shards=2,
        grid_workers=(1, 2, 4, 8, 16),
        grid_shards=(1, 2, 4),
        sim_outer=10,
        quick=False,
    )


def test_fig14_sharded(benchmark, sharded):
    result = benchmark.pedantic(lambda: sharded, iterations=1, rounds=1)
    emit("fig14_sharded", result.report())

    # the numeric run really executed >= 4 workers x >= 2 shards
    assert result.n_workers >= 4 and result.n_shards >= 2

    # every shard served traffic and reports a sane hit rate
    assert len(result.shard_hit_rates) == result.n_shards
    assert all(q > 0 for q in result.shard_queries)
    assert all(0.0 <= hr <= 1.0 for hr in result.shard_hit_rates)
    assert sum(result.shard_entries) > 0

    # every worker coalesced keys into messages (batch stats are per worker)
    assert len(result.worker_keys) == result.n_workers
    assert all(k > 0 for k in result.worker_keys)
    assert all(m > 0 for m in result.worker_messages)
    assert all(b >= 1.0 for b in result.worker_mean_batch)

    # memoization actually served chunk-ops in the numeric run
    served = result.case_counts.get("db_hit", 0) + result.case_counts.get("cache_hit", 0)
    assert served > 0


def test_fig14_sharded_scaling_surface(sharded):
    # workers scale: more workers never slow the iteration down
    for s in sharded.grid_shards:
        times = [sharded.lsp_times[(w, s)] for w in sharded.grid_workers]
        assert times[-1] < times[0]
    # shards scale: at any worker count, sharding the index never hurts
    for w in sharded.grid_workers:
        t1 = sharded.lsp_times[(w, sharded.grid_shards[0])]
        tn = sharded.lsp_times[(w, sharded.grid_shards[-1])]
        assert tn <= t1 * 1.001
