"""Figure 16: memoization-database query latency distribution vs GPUs."""

import numpy as np

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig16_latency_cdf(benchmark):
    result = benchmark.pedantic(
        E.fig16_latency_cdf, kwargs=dict(sim_outer=10, quick=False),
        iterations=1, rounds=1,
    )
    lines = ["Figure 16: query latency under contention"]
    for g in result.gpu_counts:
        lat = np.asarray(result.latencies[g])
        lines.append(
            f"  {g:>2} GPUs: p50={np.median(lat) * 1e3:7.1f}ms "
            f"p99={np.percentile(lat, 99) * 1e3:7.1f}ms "
            f">100ms: {np.mean(lat > 0.1):.0%}"
        )
    emit("fig16_latency_cdf", "\n".join(lines))
    lat1 = np.asarray(result.latencies[result.gpu_counts[0]])
    lat16 = np.asarray(result.latencies[result.gpu_counts[-1]])
    # the distribution shifts right under contention
    assert np.median(lat16) >= np.median(lat1)
    # a significant share of queries exceeds 100ms at 16 GPUs (paper: 43%)
    assert np.mean(lat16 > 0.1) > 0.2
