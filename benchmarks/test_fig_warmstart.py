"""Cross-job warm start: the service's shared memo tier, quantified."""

import pytest

from benchmarks._util import emit
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def warmstart():
    return E.fig_warmstart(sim_outer=8, quick=False)


def test_fig_warmstart(benchmark, warmstart):
    result = benchmark.pedantic(lambda: warmstart, iterations=1, rounds=1)
    emit("fig_warmstart", result.report())

    # the acceptance bar: job 2's warm hit rate strictly beats its cold run
    assert result.warm_hit_rate > result.cold_hit_rate
    assert result.warm_gain > 0.0

    # warm start also beats job 1's own (within-run) hit rate — the
    # cross-job recurrence is real signal, not just within-run reuse
    assert result.warm_hit_rate > result.first_job_hit_rate

    # the persistence guarantee: save -> load answers bit-identically
    assert result.snapshot_bit_identical
    assert result.snapshot_partitions > 0
    assert result.snapshot_nbytes > 0


def test_fig_warmstart_traffic_sane(warmstart):
    rows = {(r[0], r[1]): r for r in warmstart.job_rows}
    warm = rows[("scan-2", "service (warm)")]
    cold = rows[("scan-2", "standalone cold")]
    # both runs issued real query traffic
    assert warm[2] > 0 and cold[2] > 0
    # the warm job started on a populated tier, the cold one on an empty one
    assert warm[5] > 0 and cold[5] == 0
