"""Run all hot-path microbenchmarks and write ``BENCH_perf.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf/run_all.py [--quick]

Writes the machine-readable results to the repository root
(``BENCH_perf.json``) and to ``benchmarks/results/BENCH_perf.json`` (the CI
artifact directory).  The ``acceptance`` block carries the two headline
numbers this perf trajectory is gated on: the end-to-end ``MLRSolver.run``
speedup and the batched memo-query speedup, both measured against the
pre-vectorization baselines preserved in the source tree.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", ".."))  # make `benchmarks` importable

from benchmarks.perf import bench_e2e, bench_memo, bench_net, bench_usfft  # noqa: E402
from benchmarks.perf.harness import RESULTS_DIR, ROOT_JSON, machine_info, write_json  # noqa: E402
from benchmarks.perf.trend import HISTORY_PATH, append_history  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes / fewer repeats (the CI configuration)",
    )
    parser.add_argument(
        "--output", default=None,
        help="extra path to write the JSON to (besides the default two)",
    )
    args = parser.parse_args(argv)
    repeat = 3 if args.quick else 5

    benchmarks: dict = {}
    print("[perf] usfft op sweeps (optimized vs reference kernels)...")
    benchmarks.update(bench_usfft.run(quick=args.quick, repeat=repeat))
    print("[perf] memo service throughput (batched zero-copy vs scalar serialized)...")
    benchmarks.update(bench_memo.run(quick=args.quick, repeat=repeat))
    print("[perf] remote transport round-trip overhead (loopback tcp vs inproc)...")
    benchmarks.update(bench_net.run(quick=args.quick, repeat=repeat))
    print("[perf] end-to-end MLRSolver.run (optimized vs reference hot path)...")
    benchmarks.update(bench_e2e.run(quick=args.quick, repeat=2 if args.quick else 3))

    payload = {
        # /2: every timing block additionally carries p50_s/p95_s/p99_s
        "schema": "mlr-bench-perf/2",
        "generated_unix": int(time.time()),
        "quick": bool(args.quick),
        "machine": machine_info(),
        "benchmarks": benchmarks,
        "acceptance": {
            "e2e_speedup": benchmarks["mlr_solver_run"]["speedup"],
            "memo_query_batch_speedup": benchmarks["memo_query_batch"]["speedup"],
        },
    }
    paths = [ROOT_JSON, os.path.join(RESULTS_DIR, "BENCH_perf.json")]
    if args.output:
        paths.append(args.output)
    for path in write_json(payload, paths):
        print(f"[perf] wrote {path}")
    # append-only perf trail: `python -m benchmarks.perf.trend` gates on it
    append_history(payload)
    print(f"[perf] appended history entry to {os.path.abspath(HISTORY_PATH)}")
    for name, entry in benchmarks.items():
        print(
            f"[perf] {name}: baseline {entry['baseline']['best_s']*1e3:8.2f} ms"
            f" -> optimized {entry['optimized']['best_s']*1e3:8.2f} ms"
            f"  ({entry['speedup']:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
