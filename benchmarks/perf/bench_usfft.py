"""USFFT op-sweep microbenchmarks: vectorized kernels vs reference kernels.

Times full chunked sweeps of the four memoizable operations (the shapes the
executors actually drive through ``sweep_stream``) in complex64, with the
same plans and inputs on both paths.
"""

from __future__ import annotations

import numpy as np

from repro.lamino import usfft as U

from .harness import pair_entry, time_fn


def _plans(quick: bool):
    rng = np.random.default_rng(0)
    if quick:
        n, ns = 64, 48
        shape2d, nsl, npts = (48, 48), 32, 24 * 48
    else:
        n, ns = 128, 96
        shape2d, nsl, npts = (64, 64), 64, 48 * 64
    plan1d = U.USFFT1DPlan(n, rng.uniform(-n / 2, n / 2, size=ns))
    pts = np.stack(
        [
            rng.uniform(-shape2d[0] / 2, shape2d[0] / 2, size=(nsl, npts)),
            rng.uniform(-shape2d[1] / 2, shape2d[1] / 2, size=(nsl, npts)),
        ],
        axis=-1,
    )
    plan2d = U.USFFT2DPlan(shape2d, pts)
    return rng, plan1d, plan2d


def run(quick: bool = True, repeat: int = 5) -> dict:
    rng, plan1d, plan2d = _plans(quick)
    lead = 24 if quick else 48
    chunk = 8
    f1 = (
        rng.standard_normal((lead, plan1d.n, lead))
        + 1j * rng.standard_normal((lead, plan1d.n, lead))
    ).astype(np.complex64)
    F1 = U.usfft1d_type2(f1, plan1d, axis=1)
    f2 = (
        rng.standard_normal((plan2d.nslices, *plan2d.shape))
        + 1j * rng.standard_normal((plan2d.nslices, *plan2d.shape))
    ).astype(np.complex64)
    F2 = U.usfft2d_type2(f2, plan2d)

    def sweep_1d_type2():
        U.usfft1d_type2(f1, plan1d, axis=1)

    def sweep_1d_type1():
        U.usfft1d_type1(F1, plan1d, axis=1)

    def sweep_2d_type2():
        # chunked exactly like the executors: one call per location slab
        for lo in range(0, plan2d.nslices, chunk):
            hi = min(lo + chunk, plan2d.nslices)
            U.usfft2d_type2(f2[lo:hi], plan2d, slices=slice(lo, hi))

    def sweep_2d_type1():
        for lo in range(0, plan2d.nslices, chunk):
            hi = min(lo + chunk, plan2d.nslices)
            U.usfft2d_type1(F2[lo:hi], plan2d, slices=slice(lo, hi))

    out = {}
    for name, fn in [
        ("usfft1d_type2_sweep", sweep_1d_type2),
        ("usfft1d_type1_sweep", sweep_1d_type1),
        ("usfft2d_type2_sweep", sweep_2d_type2),
        ("usfft2d_type1_sweep", sweep_2d_type1),
    ]:
        opt = time_fn(fn, repeat=repeat)
        with U.reference_kernels():
            ref = time_fn(fn, repeat=repeat)
        out[name] = pair_entry(ref, opt, dtype="complex64")
    return out
