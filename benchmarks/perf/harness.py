"""Timing scaffolding shared by the perf microbenchmarks.

Every benchmark times a (baseline, optimized) pair on identical inputs and
reports best-of-N wall time plus the speedup.  The baseline is the honest
pre-vectorization code path, which the source keeps runnable —
:func:`repro.lamino.usfft.reference_kernels` for the kernels, scalar
queries on a serialized-value database for the memo service — so the
numbers are measured, never estimated.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass

__all__ = ["Timing", "time_fn", "pair_entry", "write_json", "RESULTS_DIR", "ROOT_JSON"]

_HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(_HERE, "..", "results")
ROOT_JSON = os.path.join(_HERE, "..", "..", "BENCH_perf.json")


@dataclass
class Timing:
    best_s: float
    mean_s: float
    repeats: int
    p50_s: float | None = None
    p95_s: float | None = None
    p99_s: float | None = None

    def as_dict(self) -> dict:
        out = {"best_s": self.best_s, "mean_s": self.mean_s, "repeats": self.repeats}
        if self.p50_s is not None:
            out.update({"p50_s": self.p50_s, "p95_s": self.p95_s, "p99_s": self.p99_s})
        return out


def _percentile(sorted_times: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if len(sorted_times) == 1:
        return sorted_times[0]
    pos = q * (len(sorted_times) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_times) - 1)
    return sorted_times[lo] + (sorted_times[hi] - sorted_times[lo]) * (pos - lo)


def time_fn(fn, repeat: int = 5, warmup: int = 1) -> Timing:
    """Best-of-``repeat`` wall time of ``fn()`` after ``warmup`` calls."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    ordered = sorted(times)
    return Timing(
        best_s=ordered[0],
        mean_s=sum(times) / len(times),
        repeats=repeat,
        p50_s=_percentile(ordered, 0.50),
        p95_s=_percentile(ordered, 0.95),
        p99_s=_percentile(ordered, 0.99),
    )


def pair_entry(baseline: Timing, optimized: Timing, **meta) -> dict:
    """One benchmark record: both timings plus the best-of speedup."""
    entry = {
        "baseline": baseline.as_dict(),
        "optimized": optimized.as_dict(),
        "speedup": baseline.best_s / optimized.best_s if optimized.best_s > 0 else None,
    }
    entry.update(meta)
    return entry


def machine_info() -> dict:
    import numpy
    import scipy

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "cpus": os.cpu_count(),
    }


def write_json(payload: dict, paths=(ROOT_JSON,)) -> list[str]:
    written = []
    for path in paths:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        written.append(os.path.abspath(path))
    return written
