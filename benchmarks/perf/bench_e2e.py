"""Quick-scale end-to-end ``MLRSolver`` run: optimized vs reference hot path.

Both runs reconstruct the same projections with the same configuration; the
baseline flips the source tree's preserved pre-vectorization switches —
:func:`repro.lamino.usfft.reference_kernels` (numpy FFT, per-slice
interpolation loops, per-call casts) and the serialized
``db_value_mode="bytes"`` — while the optimized run uses the defaults.
The reconstructions are checked to agree before the timings count.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MemoConfig, MLRConfig
from repro.core.mlr_solver import MLRSolver
from repro.lamino import usfft as U
from repro.lamino.geometry import LaminoGeometry
from repro.lamino.operators import LaminoOperators
from repro.lamino.phantoms import make_phantom
from repro.solvers.admm import ADMMConfig

from .harness import pair_entry, time_fn


def _problem(quick: bool):
    if quick:
        geom = LaminoGeometry(vol_shape=(64, 16, 64), n_angles=32, det_shape=(16, 64))
        n_outer = 4
    else:
        geom = LaminoGeometry(vol_shape=(96, 32, 96), n_angles=48, det_shape=(32, 96))
        n_outer = 6
    u = make_phantom("pcb", geom.vol_shape).astype(np.complex64)
    ops = LaminoOperators(geom)
    d = ops.forward(u).astype(np.complex64)
    return geom, ops, d, n_outer


def _solve(geom, ops, d, n_outer, value_mode: str):
    # the operator plans are shared across runs (plan-and-execute: plan
    # construction is per-geometry setup, not per-reconstruction work)
    solver = MLRSolver(
        geom,
        MLRConfig(chunk_size=4, memo=MemoConfig(db_value_mode=value_mode)),
        ADMMConfig(n_outer=n_outer, n_inner=2),
        ops=ops,
    )
    return solver.reconstruct(d)


def run(quick: bool = True, repeat: int = 3) -> dict:
    geom, ops, d, n_outer = _problem(quick)

    def optimized():
        return _solve(geom, ops, d, n_outer, "array")

    def baseline():
        with U.reference_kernels():
            return _solve(geom, ops, d, n_outer, "bytes")

    # the two paths must agree on the reconstruction before timing counts
    # (these calls also warm the shared plans for both paths)
    u_opt, u_ref = optimized().u, baseline().u
    rel = float(np.linalg.norm(u_opt - u_ref) / max(np.linalg.norm(u_ref), 1e-30))
    assert rel < 1e-3, f"optimized/reference reconstructions diverged: rel={rel}"

    entry = pair_entry(
        time_fn(baseline, repeat=repeat, warmup=0),
        time_fn(optimized, repeat=repeat, warmup=0),
        vol_shape=list(geom.vol_shape),
        n_angles=geom.n_angles,
        det_shape=list(geom.det_shape),
        n_outer=n_outer,
        relative_difference=rel,
    )
    return {"mlr_solver_run": entry}
