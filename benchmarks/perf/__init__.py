"""Hot-path microbenchmarks: op sweeps, memo service throughput, end-to-end.

Run ``python benchmarks/perf/run_all.py [--quick]`` (with ``PYTHONPATH=src``)
to produce ``BENCH_perf.json`` — the machine-readable perf trajectory future
PRs regress against.
"""
