"""Remote-transport overhead: loopback TCP vs the in-process shard router.

The baseline is the in-process ``MemoShardRouter`` servicing one coalesced
key batch; the "optimized" side is the same batch through
``RemoteMemoClient`` -> loopback ``MemoServerDaemon`` — so the reported
"speedup" is really the *transport overhead factor* (expected < 1): what
one framed, checksummed, round-tripped message costs on top of the raw
service.  A second entry measures the pipelined insert path, where the
client does not wait for acknowledgements and the gap narrows.  A third
pair prices the replicated tier: one ``ReplicatedMemoClient`` over two
loopback daemons vs the single-daemon client, i.e. what insert fan-out
and primary-replica query routing cost on top of plain TCP.
"""

from __future__ import annotations

import numpy as np

from repro.core import MemoConfig
from repro.core.memo_engine import make_db_factory
from repro.core.memo_shard import MemoShardRouter, ShardInsert, ShardQuery
from repro.net import MemoServerDaemon, RemoteMemoClient
from repro.net.replicated import ReplicatedMemoClient

from .harness import pair_entry, time_fn

N_SHARDS = 2


def _workload(quick: bool):
    rng = np.random.default_rng(3)
    dim = 64
    n_locations = 16
    per_loc = 8 if quick else 32
    batch = 32 if quick else 128
    value_shape = (8, 16, 16) if quick else (16, 32, 32)
    value = (
        rng.standard_normal(value_shape) + 1j * rng.standard_normal(value_shape)
    ).astype(np.complex64)
    inserts = [
        ShardInsert(
            "Fu1D", loc,
            rng.standard_normal(dim).astype(np.float32), value,
            meta=(1.0, 0j),
        )
        for loc in range(n_locations)
        for _ in range(per_loc)
    ]
    probes = [
        ShardQuery(
            "Fu1D",
            int(rng.integers(0, n_locations)),
            inserts[int(rng.integers(0, len(inserts)))].key
            + 1e-4 * rng.standard_normal(dim).astype(np.float32),
        )
        for _ in range(batch)
    ]
    return inserts, probes


def _memo() -> MemoConfig:
    return MemoConfig(tau=0.9, index_train_min=32)


def run(quick: bool = True, repeat: int = 5) -> dict:
    inserts, probes = _workload(quick)
    local = MemoShardRouter(N_SHARDS, make_db_factory(_memo()))
    local.insert_batch(inserts)

    out: dict = {}
    with MemoServerDaemon(n_shards=N_SHARDS, memo=_memo()) as daemon:
        client = RemoteMemoClient(daemon.address, expect_tau=_memo().tau)
        client.insert_batch(inserts)
        client.flush()

        # sanity: the wire answers bit-identically before we time it
        for a, b in zip(local.query_batch(probes), client.query_batch(probes)):
            assert a.hit == b.hit and a.similarity == b.similarity

        inproc = time_fn(lambda: local.query_batch(probes), repeat=repeat)
        tcp = time_fn(lambda: client.query_batch(probes), repeat=repeat)
        per_query_us = (tcp.best_s - inproc.best_s) / len(probes) * 1e6
        out["net_query_batch_roundtrip"] = pair_entry(
            inproc, tcp,
            note="baseline=inproc router, optimized=loopback tcp; "
                 "'speedup'<1 is the transport overhead factor",
            batch=len(probes),
            overhead_x=tcp.best_s / inproc.best_s if inproc.best_s else None,
            overhead_us_per_query=per_query_us,
        )

        insert_sample = inserts[: len(probes)]
        inproc_ins = time_fn(lambda: local.insert_batch(insert_sample),
                             repeat=repeat)
        tcp_ins = time_fn(lambda: client.insert_batch(insert_sample),
                          repeat=repeat)
        client.flush()
        out["net_insert_batch_pipelined"] = pair_entry(
            inproc_ins, tcp_ins,
            note="pipelined insert: the client returns without awaiting the "
                 "ack, so the wire cost is encode+send only",
            batch=len(insert_sample),
            overhead_x=(
                tcp_ins.best_s / inproc_ins.best_s if inproc_ins.best_s else None
            ),
        )

        with MemoServerDaemon(
            n_shards=N_SHARDS, memo=_memo(), name="memo-server-r0"
        ) as r0, MemoServerDaemon(
            n_shards=N_SHARDS, memo=_memo(), name="memo-server-r1"
        ) as r1:
            replicated = ReplicatedMemoClient(
                [r0.address, r1.address],
                expect_tau=_memo().tau,
                client_name="bench-replicated",
            )
            replicated.insert_batch(inserts)
            replicated.flush()
            # sanity against a pristine router (`local` has since absorbed
            # the insert-timing loops above)
            pristine = MemoShardRouter(N_SHARDS, make_db_factory(_memo()))
            pristine.insert_batch(inserts)
            for a, b in zip(
                pristine.query_batch(probes), replicated.query_batch(probes)
            ):
                assert a.hit == b.hit and a.similarity == b.similarity

            single_q = time_fn(lambda: client.query_batch(probes), repeat=repeat)
            repl_q = time_fn(
                lambda: replicated.query_batch(probes), repeat=repeat
            )
            out["net_query_batch_replicated"] = pair_entry(
                single_q, repl_q,
                note="baseline=single tcp client, optimized=2-replica client; "
                     "'speedup'<1 is the replication overhead factor",
                batch=len(probes),
                overhead_x=(
                    repl_q.best_s / single_q.best_s if single_q.best_s else None
                ),
            )

            single_ins = time_fn(
                lambda: client.insert_batch(insert_sample), repeat=repeat
            )
            repl_ins = time_fn(
                lambda: replicated.insert_batch(insert_sample), repeat=repeat
            )
            replicated.flush()
            client.flush()
            out["net_insert_batch_replicated_fanout"] = pair_entry(
                single_ins, repl_ins,
                note="insert fan-out: every batch is pipelined to both "
                     "replicas, so the wire cost roughly doubles",
                batch=len(insert_sample),
                overhead_x=(
                    repl_ins.best_s / single_ins.best_s
                    if single_ins.best_s else None
                ),
            )
            replicated.close()
        client.close()
    return out
