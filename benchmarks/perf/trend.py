"""Perf-trend gating over the benchmark history.

Every ``run_all.py`` invocation appends one compact record per benchmark
(the optimized ``best_s``) to ``benchmarks/results/history.jsonl`` — an
append-only, committable trail of the perf trajectory.  This module is
the gate::

    PYTHONPATH=src python -m benchmarks.perf.trend [--threshold 0.25]

compares the latest entry against the previous *comparable* one (same
``--quick`` flag) and exits nonzero when any benchmark's ``best_s``
regressed by more than the threshold (default 25%).

Machine identity matters: CI runners are heterogeneous VMs, so a
cross-machine comparison would gate on hardware, not code.  When the two
entries disagree on machine fingerprint the gate warns and passes
(``--strict-machine`` turns that into a failure for pinned-hardware
setups).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
if __package__ in (None, ""):  # `python benchmarks/perf/trend.py` direct run
    sys.path.insert(0, os.path.join(_HERE, "..", ".."))

from benchmarks.perf.harness import RESULTS_DIR  # noqa: E402

__all__ = [
    "HISTORY_PATH",
    "HISTORY_SCHEMA",
    "history_entry",
    "append_history",
    "load_history",
    "compare",
    "main",
]

HISTORY_PATH = os.path.join(RESULTS_DIR, "history.jsonl")
HISTORY_SCHEMA = "mlr-bench-history/1"


def history_entry(payload: dict, now: float | None = None) -> dict:
    """Compress one ``BENCH_perf.json`` payload into a history record:
    the optimized ``best_s`` per benchmark plus the acceptance speedups —
    enough to gate on, small enough to commit forever."""
    best_s = {}
    for name, entry in (payload.get("benchmarks") or {}).items():
        try:
            best_s[name] = float(entry["optimized"]["best_s"])
        except (KeyError, TypeError, ValueError):
            continue
    return {
        "schema": HISTORY_SCHEMA,
        "t": int(payload.get("generated_unix") or (now if now is not None else time.time())),
        "quick": bool(payload.get("quick")),
        "machine": payload.get("machine") or {},
        "best_s": best_s,
        "acceptance": payload.get("acceptance") or {},
    }


def append_history(payload: dict, path: str | None = None) -> dict:
    """Append the payload's history record to ``history.jsonl``."""
    path = path or HISTORY_PATH
    record = history_entry(payload)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str | None = None) -> list[dict]:
    path = path or HISTORY_PATH
    if not os.path.isfile(path):
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            rec = json.loads(raw)
            if isinstance(rec, dict) and rec.get("schema") == HISTORY_SCHEMA:
                entries.append(rec)
    return entries


def same_machine(a: dict, b: dict) -> bool:
    """Fingerprint equality on the fields that change timings."""
    ka, kb = a.get("machine") or {}, b.get("machine") or {}
    fields = ("platform", "python", "numpy", "scipy", "cpus")
    return all(ka.get(f) == kb.get(f) for f in fields)


def compare(prev: dict, cur: dict, threshold: float = 0.25) -> list[dict]:
    """Per-benchmark regression check: ``best_s`` growing by more than
    ``threshold`` (relative) is a regression.  Benchmarks present in only
    one entry are skipped — adding or retiring a benchmark is not a
    regression."""
    regressions = []
    prev_best = prev.get("best_s") or {}
    cur_best = cur.get("best_s") or {}
    for name in sorted(set(prev_best) & set(cur_best)):
        old, new = float(prev_best[name]), float(cur_best[name])
        if old <= 0.0:
            continue
        ratio = new / old
        if ratio > 1.0 + threshold:
            regressions.append(
                {"benchmark": name, "prev_s": old, "cur_s": new, "ratio": ratio}
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", default=None, metavar="FILE",
        help=f"history file (default: {os.path.relpath(HISTORY_PATH)})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative best_s growth that fails the gate (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--strict-machine", action="store_true",
        help="fail (instead of warn-and-pass) when the compared entries ran "
             "on different machines",
    )
    args = parser.parse_args(argv)

    entries = load_history(args.history)
    if len(entries) < 2:
        print(f"[trend] {len(entries)} history entries — nothing to compare, passing")
        return 0
    cur = entries[-1]
    prev = next(
        (e for e in reversed(entries[:-1]) if e.get("quick") == cur.get("quick")),
        None,
    )
    if prev is None:
        print("[trend] no previous entry with a matching --quick flag, passing")
        return 0
    if not same_machine(prev, cur):
        msg = "[trend] compared entries ran on different machines"
        if args.strict_machine:
            print(msg + " (--strict-machine: failing)")
            return 1
        print(msg + " — hardware, not code; passing")
        return 0
    regressions = compare(prev, cur, threshold=args.threshold)
    for reg in regressions:
        print(
            f"[trend] REGRESSION {reg['benchmark']}: "
            f"{reg['prev_s']*1e3:.2f} ms -> {reg['cur_s']*1e3:.2f} ms "
            f"({(reg['ratio'] - 1.0) * 100:.0f}% slower)"
        )
    if regressions:
        print(
            f"[trend] {len(regressions)} benchmark(s) regressed past "
            f"{args.threshold * 100:.0f}% — failing the gate"
        )
        return 1
    checked = sorted(set(cur.get("best_s") or {}) & set(prev.get("best_s") or {}))
    print(f"[trend] {len(checked)} benchmarks within {args.threshold * 100:.0f}% — ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
