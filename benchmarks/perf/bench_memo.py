"""Memoization-service throughput: batched zero-copy vs scalar serialized.

The baseline is the pre-batching service shape: one scalar ``query`` per
key (a Python loop with a full serialize/deserialize round-trip on every
hit) against a ``value_mode="bytes"`` database.  The optimized path is one
``query_batch`` message against the zero-copy ``value_mode="array"``
database — the exact service path the sharded/distributed executors drive.
"""

from __future__ import annotations

import numpy as np

from repro.core import MemoDatabase

from .harness import pair_entry, time_fn


def _workload(quick: bool):
    rng = np.random.default_rng(1)
    dim = 64
    n_entries = 256 if quick else 1024
    batch = 64 if quick else 256
    value_shape = (16, 32, 32)  # ~128 KB complex64 chunk output
    keys = rng.standard_normal((n_entries, dim)).astype(np.float32)
    value = (
        rng.standard_normal(value_shape) + 1j * rng.standard_normal(value_shape)
    ).astype(np.complex64)
    # queries: half near-duplicates of stored keys (hits), half fresh (misses)
    probes = np.concatenate(
        [
            keys[rng.integers(0, n_entries, size=batch // 2)]
            + 1e-4 * rng.standard_normal((batch // 2, dim)).astype(np.float32),
            rng.standard_normal((batch - batch // 2, dim)).astype(np.float32),
        ]
    ).astype(np.float32)
    return dim, keys, value, probes


def _build(dim, keys, value, value_mode):
    db = MemoDatabase(dim=dim, tau=0.9, train_min=32, value_mode=value_mode)
    db.insert_batch([(k, value, None) for k in keys])
    return db

def run(quick: bool = True, repeat: int = 5) -> dict:
    dim, keys, value, probes = _workload(quick)
    db_bytes = _build(dim, keys, value, "bytes")
    db_array = _build(dim, keys, value, "array")
    probe_list = list(probes)

    def scalar_query_loop():
        for k in probe_list:
            db_bytes.query(k)

    def batched_query():
        db_array.query_batch(probe_list)

    # sanity: both paths agree on hit/miss before we time them
    scalar_out = [db_bytes.query(k) for k in probe_list]
    batch_out = db_array.query_batch(probe_list)
    assert [o.hit for o in scalar_out] == [o.hit for o in batch_out]
    assert any(o.hit for o in batch_out)

    query = pair_entry(
        time_fn(scalar_query_loop, repeat=repeat),
        time_fn(batched_query, repeat=repeat),
        batch=len(probe_list),
        value_nbytes=int(value.nbytes),
    )

    ins_items = [(k, value, None) for k in probes]

    def scalar_insert_loop():
        db = MemoDatabase(dim=dim, tau=0.9, train_min=32, value_mode="bytes")
        for k, v, m in ins_items:
            db.insert(k, v, meta=m)

    def batched_insert():
        db = MemoDatabase(dim=dim, tau=0.9, train_min=32, value_mode="array")
        db.insert_batch(ins_items)

    insert = pair_entry(
        time_fn(scalar_insert_loop, repeat=repeat),
        time_fn(batched_insert, repeat=repeat),
        batch=len(ins_items),
        value_nbytes=int(value.nbytes),
    )
    return {"memo_query_batch": query, "memo_insert_batch": insert}
