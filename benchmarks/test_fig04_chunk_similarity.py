"""Figure 4: tau-similar prior chunks accumulate across ADMM iterations."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig04_chunk_similarity(benchmark):
    result = benchmark.pedantic(
        E.fig04_chunk_similarity, kwargs=dict(n_outer=40, quick=False),
        iterations=1, rounds=1,
    )
    emit("fig04_chunk_similarity", result.report())
    for label, counts in result.counts.items():
        assert counts[0] == 0  # nothing to match at the first iteration
        # similarity appears and grows as the solver converges
        assert max(counts) >= 4, label
        early = sum(counts[:5]) / 5
        late = sum(counts[-5:]) / 5
        assert late > early, label
