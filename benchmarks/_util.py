"""Benchmark-suite helpers: every experiment's report is printed and saved
under benchmarks/results/ so the regenerated tables/series survive the run."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, report: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(report + "\n")
    print(f"\n{report}\n[saved to {path}]")
