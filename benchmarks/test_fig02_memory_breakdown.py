"""Figure 2: CPU memory consumption by variable and LSP time dominance."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig02_memory_breakdown(benchmark):
    result = benchmark.pedantic(E.fig02_memory_breakdown, iterations=1, rounds=1)
    emit("fig02_memory_breakdown", result.report())
    # LSP must dominate the iteration ("more than 67% of the total time")
    assert result.lsp_fraction > 0.6
    # psi and lam are the big auxiliary variables
    assert result.variable_bytes["psi"] == result.variable_bytes["lam"]
