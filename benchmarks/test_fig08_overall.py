"""Figure 8: overall mLR performance on the three datasets."""

from benchmarks._util import emit
from repro.harness import experiments as E


def test_fig08_overall(benchmark):
    result = benchmark.pedantic(
        E.fig08_overall, kwargs=dict(n_outer=60, sim_outer=12, quick=False),
        iterations=1, rounds=1,
    )
    emit("fig08_overall", result.report())
    norms = {row[0]: row[3] for row in result.rows}
    # mLR wins on every dataset
    assert all(v < 1.0 for v in norms.values())
    # larger datasets benefit more (paper: 0.654 / 0.414 / 0.363)
    assert norms["2K"] < norms["1K"]
    # headline: tens of percent average improvement
    assert result.mean_improvement > 0.2
