"""Figure 18: streaming pipelined reconstruction — overlap study."""

import pytest

from benchmarks._util import emit
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def overlap():
    return E.fig18_pipeline_overlap(
        queue_depths=(1, 2, 4),
        worker_counts=(1, 2, 4),
        sim_outer=8,
        quick=False,
    )


def test_fig18_pipeline_overlap(benchmark, overlap):
    result = benchmark.pedantic(lambda: overlap, iterations=1, rounds=1)
    emit("fig18_pipeline_overlap", result.report())

    # the functional pipelined run is bit-identical to the monolithic path,
    # and the streaming-ingest run matches the batch reconstruction
    assert result.bitwise_identical
    assert result.streaming_identical
    assert result.pipeline_items > 0

    # memoization still served chunk-ops through the pipeline
    served = result.case_counts.get("db_hit", 0) + result.case_counts.get("cache_hit", 0)
    assert served > 0


def test_fig18_overlap_model(overlap):
    # modeled I/O is nonzero, so pipelining must beat the serial makespan...
    assert overlap.io_time > 0
    for perf in overlap.perfs.values():
        assert perf.pipelined_time < perf.serial_time
        # ...but never beyond what hiding all-but-the-bottleneck permits
        assert perf.speedup <= perf.speedup_bound * (1 + 1e-9)
        assert perf.pipelined_time >= perf.bottleneck_time * (1 - 1e-9)

    # deeper queues never hurt at fixed worker count
    for w in overlap.worker_counts:
        times = [overlap.perfs[(q, w)].pipelined_time for q in overlap.queue_depths]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(times, times[1:]))
