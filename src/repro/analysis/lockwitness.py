"""Runtime lock-order witness: catch deadlock cycles as they *form*.

A deadlock needs an unlucky interleaving; the lock-ordering violation
behind it does not.  This sanitizer wraps ``threading.Lock`` /
``threading.RLock`` (``Condition`` picks the wrapped ``RLock`` up
automatically) and maintains, per thread, the stack of currently held
locks plus a global graph of *lock creation sites*: an edge ``A -> B``
is recorded the first time a lock created at site B is acquired while
one created at site A is held.  The moment an acquisition would close a
cycle in that graph, :class:`LockOrderError` is raised — before the
acquire blocks — so the test fails with both orders in hand instead of
hanging.  A plain ``Lock`` re-acquired by its owning thread (guaranteed
self-deadlock) is reported the same way.

Site-level identity means two instances from the same creation site
(e.g. every ``JobHandle._lock``) are one node; edges between them are
ignored rather than reported as one-node cycles.  That forgives the
common lock-two-shards pattern and costs sensitivity only to
two-instance inversions within a single site.

Opt-in: set ``REPRO_LOCKWITNESS=1`` and the test suite's ``conftest``
installs the witness for the whole session, or use :func:`install` /
:func:`uninstall` / the :func:`witness` context manager directly.
Locks created *before* :func:`install` are not wrapped.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading

__all__ = [
    "LockOrderError",
    "install",
    "uninstall",
    "installed",
    "reset",
    "witness",
    "enabled_from_env",
]

ENV_VAR = "REPRO_LOCKWITNESS"

_real_lock = threading.Lock
_real_rlock = threading.RLock


class LockOrderError(RuntimeError):
    """An acquisition would close a lock-ordering cycle (or self-deadlock)."""

    def __init__(self, message: str, cycle: list[str] | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle or []


class _Witness:
    """The global acquisition-order graph and per-thread held stacks."""

    def __init__(self) -> None:
        self._graph_lock = _real_lock()
        self._edges: dict[str, set[str]] = {}
        self._tls = threading.local()

    # -- per-thread held stack -------------------------------------------------------

    def _held(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def holds(self, lock) -> int:
        return sum(1 for entry in self._held() if entry is lock)

    def push(self, lock) -> None:
        self._held().append(lock)

    def pop(self, lock) -> None:
        stack = self._held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    def pop_all(self, lock) -> int:
        stack = self._held()
        n = sum(1 for entry in stack if entry is lock)
        self._tls.stack = [entry for entry in stack if entry is not lock]
        return n

    # -- the order graph -------------------------------------------------------------

    def check_acquire(self, lock) -> None:
        """Record held-site -> lock.site edges; raise if one closes a cycle.

        Runs *before* the real acquire, so a would-be deadlock surfaces as
        an exception instead of a hang.
        """
        held_sites = []
        seen = set()
        for entry in self._held():
            if entry is lock or entry.site == lock.site:
                continue
            if entry.site not in seen:
                seen.add(entry.site)
                held_sites.append(entry.site)
        if not held_sites:
            return
        with self._graph_lock:
            for src in held_sites:
                path = self._path(lock.site, src)
                if path is not None:
                    # path runs acquired -> ... -> src; src closes the loop
                    cycle = [src, *path[:-1]]
                    raise LockOrderError(
                        f"lock ordering cycle: acquiring {lock.site} while "
                        f"holding {src}, but the opposite order was already "
                        f"witnessed — cycle: {' -> '.join(cycle)} -> {cycle[0]} "
                        f"(thread {threading.current_thread().name})",
                        cycle=cycle,
                    )
            for src in held_sites:
                self._edges.setdefault(src, set()).add(lock.site)

    def record_acquire(self, lock) -> None:
        """Edges without the cycle check — for Condition wait re-acquires,
        where raising would leave the condition's lock protocol broken."""
        with self._graph_lock:
            for entry in self._held():
                if entry is not lock and entry.site != lock.site:
                    self._edges.setdefault(entry.site, set()).add(lock.site)

    def _path(self, src: str, dst: str) -> list[str] | None:
        """A path src -> ... -> dst in the current edge set (BFS), if any."""
        if src == dst:
            return [src]
        prev: dict[str, str] = {src: src}
        frontier = [src]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for succ in self._edges.get(node, ()):
                    if succ in prev:
                        continue
                    prev[succ] = node
                    if succ == dst:
                        path = [succ]
                        while path[-1] != src:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    nxt.append(succ)
            frontier = nxt
        return None

    def edges(self) -> dict[str, set[str]]:
        with self._graph_lock:
            return {src: set(dsts) for src, dsts in self._edges.items()}

    def reset(self) -> None:
        with self._graph_lock:
            self._edges.clear()


_witness = _Witness()


def _creation_site() -> str:
    """``path:lineno`` of the frame that created the lock, skipping this
    module and :mod:`threading` (a Condition's implicit RLock belongs to
    the ``Condition()`` caller)."""
    frame = sys._getframe(1)
    this_file = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != this_file and not filename.endswith("threading.py"):
            parts = filename.replace(os.sep, "/").split("/")
            return f"{'/'.join(parts[-3:])}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _WitnessLockBase:
    def __init__(self, inner) -> None:
        self._inner = inner
        self.site = _creation_site()

    def release(self) -> None:
        self._inner.release()
        _witness.pop(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        # stdlib (concurrent.futures, logging) reinitializes its module
        # locks in the forked child through this hook
        self._inner._at_fork_reinit()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} site={self.site}>"


class _WitnessLock(_WitnessLockBase):
    """Witnessed non-reentrant lock (wraps ``threading.Lock``)."""

    def __init__(self) -> None:
        super().__init__(_real_lock())
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if (
            blocking
            and timeout == -1
            and self._owner == threading.get_ident()
        ):
            raise LockOrderError(
                f"self-deadlock: thread {threading.current_thread().name} "
                f"re-acquiring non-reentrant Lock from {self.site} that it "
                "already holds"
            )
        _witness.check_acquire(self)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            _witness.push(self)
        return got

    def release(self) -> None:
        self._owner = None
        super().release()

    def _at_fork_reinit(self) -> None:
        self._owner = None
        super()._at_fork_reinit()

    # Condition-over-Lock protocol
    def _release_save(self):
        self.release()
        return None

    def _acquire_restore(self, _state) -> None:
        self._inner.acquire()
        self._owner = threading.get_ident()
        _witness.record_acquire(self)
        _witness.push(self)

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()


class _WitnessRLock(_WitnessLockBase):
    """Witnessed reentrant lock (wraps ``threading.RLock``)."""

    def __init__(self) -> None:
        super().__init__(_real_rlock())

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if _witness.holds(self) == 0:
            _witness.check_acquire(self)  # reentrant re-acquire adds no edge
        got = self._inner.acquire(blocking, timeout)
        if got:
            _witness.push(self)
        return got

    # Condition-over-RLock protocol: wait() fully releases the lock, so the
    # held stack must drop every recursion level and restore them after
    def _release_save(self):
        inner_state = self._inner._release_save()
        depth = _witness.pop_all(self)
        return (inner_state, depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)
        _witness.record_acquire(self)
        for _ in range(max(1, depth)):
            _witness.push(self)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def locked(self) -> bool:  # RLocks have no free/locked query pre-3.12
        method = getattr(self._inner, "locked", None)
        return bool(method()) if method is not None else False


def _lock_factory():
    return _WitnessLock()


def _rlock_factory():
    return _WitnessRLock()


def install() -> None:
    """Patch the ``threading`` lock factories (idempotent).  Locks created
    from here on are witnessed; ``threading.Condition()`` inherits the
    patched RLock automatically."""
    threading.Lock = _lock_factory
    threading.RLock = _rlock_factory


def uninstall() -> None:
    """Restore the real factories and clear the recorded order graph."""
    threading.Lock = _real_lock
    threading.RLock = _real_rlock
    _witness.reset()


def installed() -> bool:
    return threading.Lock is _lock_factory


def reset() -> None:
    """Forget every recorded edge (between tests)."""
    _witness.reset()


def graph_edges() -> dict[str, set[str]]:
    """The current site-level acquisition-order graph (for assertions)."""
    return _witness.edges()


def enabled_from_env() -> bool:
    return os.environ.get(ENV_VAR, "").strip() in ("1", "true", "yes", "on")


@contextlib.contextmanager
def witness():
    """Context manager: install on entry, uninstall on exit."""
    was = installed()
    install()
    try:
        yield
    finally:
        if not was:
            uninstall()
