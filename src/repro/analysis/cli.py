"""``python -m repro.analysis``: run the invariant checks, gate CI.

Exit status is the contract: 0 when the tree is clean (suppressed
findings do not fail the build — they are intentional, annotated
exceptions), 1 when any finding survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import DEFAULT_SECTIONS, rule_catalog, run_analysis

__all__ = ["main"]


def _find_root(start: Path) -> Path:
    """The repo root: the nearest ancestor holding a ``src/repro`` tree."""
    for cand in (start, *start.parents):
        if (cand / "src" / "repro").is_dir():
            return cand
    return start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis of repo-specific invariants: concurrency "
            "discipline (lock ordering, guarded writes, broad excepts), "
            "dtype/backend flow (FFT routing, complex128 widening, seeded "
            "RNG), and cross-module exhaustiveness (wire protocol, sweep "
            "kernel dispatch)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files/directories to scan (default: {'/'.join(DEFAULT_SECTIONS)})",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root (default: autodetect from the working directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="human diff-style blocks, or the full machine-readable report",
    )
    parser.add_argument(
        "--output", default=None, help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, doc in rule_catalog():
            print(f"{rule_id:24s} {doc}")
        return 0

    root = Path(args.root).resolve() if args.root else _find_root(Path.cwd())
    known = {rule_id for rule_id, _ in rule_catalog()}

    def parse_ids(raw: str | None, flag: str) -> set[str] | None:
        if raw is None:
            return None
        ids = {part.strip() for part in raw.split(",") if part.strip()}
        unknown = ids - known
        if unknown:
            parser.error(f"{flag}: unknown rule id(s) {sorted(unknown)}")
        return ids

    report = run_analysis(
        root,
        paths=args.paths or None,
        select=parse_ids(args.select, "--select"),
        ignore=parse_ids(args.ignore, "--ignore"),
    )

    if args.format == "json":
        rendered = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    else:
        rendered = report.render_text()
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        if args.format == "text":
            # keep the terminal summary even when the report goes to a file
            print(rendered.rsplit("\n", 1)[-1])
    else:
        print(rendered)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
