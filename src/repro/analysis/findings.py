"""Typed findings: the machine-readable currency of the analysis pass.

Every rule reports :class:`Finding` objects — never strings — so the CLI
can render them as human diff-style text *and* as a JSON report with the
same information, and so the test suite can assert on rule ids and
locations instead of scraping output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Report"]


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed would-be violation).

    rule:
        The rule id (kebab-case, e.g. ``guarded-write``) — the same token
        a ``# analysis: ignore[rule]`` comment names.
    path:
        Repo-relative posix path of the offending file.
    line / col:
        1-based line and 0-based column of the violation.
    message:
        Human explanation, specific enough to act on.
    snippet:
        The offending source line (stripped), for diff-style output.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """One diff-style block: location, message, offending line."""
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        out = f"{loc}: {self.rule}  {self.message}"
        if self.snippet:
            out += f"\n    {self.snippet}"
        return out


@dataclass
class Report:
    """The complete result of one analysis run."""

    root: str
    files_scanned: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self, items: list[Finding]) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in items:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "files_scanned": self.files_scanned,
            "clean": self.clean,
            "counts": self.counts(self.findings),
            "suppressed_counts": self.counts(self.suppressed),
            "findings": [f.as_dict() for f in sorted_findings(self.findings)],
            "suppressed": [f.as_dict() for f in sorted_findings(self.suppressed)],
        }

    def render_text(self) -> str:
        """Human output: every finding as a diff-style block + a summary."""
        blocks = [f.render() for f in sorted_findings(self.findings)]
        summary = (
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed, {self.files_scanned} file(s) scanned"
        )
        if self.findings:
            per_rule = ", ".join(
                f"{rule}: {n}" for rule, n in sorted(self.counts(self.findings).items())
            )
            summary += f"  [{per_rule}]"
        return "\n".join([*blocks, summary])


def sorted_findings(items: list[Finding]) -> list[Finding]:
    return sorted(items, key=lambda f: (f.path, f.line, f.col, f.rule))
