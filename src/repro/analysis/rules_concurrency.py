"""Concurrency-discipline rules: lock ordering, guarded writes, broad excepts.

``lock-order``
    Builds the global lock-acquisition graph (:mod:`.lockgraph`) and
    reports every acquisition edge that participates in an ordering
    cycle — two locks ever taken in both orders can deadlock two threads.

``guarded-write``
    Enforces the ``# guarded-by: self._lock`` annotation convention: an
    attribute annotated at its initialization site may only be written
    inside a ``with self._lock:`` block (or a ``Condition`` wrapping the
    same lock).  ``__init__`` / ``__post_init__`` are exempt (no
    concurrent observer exists yet), as are methods whose name ends in
    ``_locked`` (the repo's called-with-the-lock-held convention).

``broad-except-in-thread``
    Worker loops must not swallow errors blind: a bare ``except:``, or
    an ``except Exception/BaseException`` whose handler neither raises
    nor calls anything (no logging, no event record — a pure swallow),
    hides failures exactly where they are hardest to observe.
"""

from __future__ import annotations

import ast
import re

from .findings import Finding
from .lockgraph import build_lock_graph, collect_lock_attrs, find_cycles

__all__ = ["LockOrderRule", "GuardedWriteRule", "BroadExceptInThreadRule"]

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([^\s#]+)")

#: container mutators that count as writes to the receiver attribute
_MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "reverse", "setdefault", "sort",
    "update",
}

_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}


class LockOrderRule:
    """Detect lock-acquisition ordering cycles (potential deadlocks)."""

    id = "lock-order"

    def run(self, modules):
        graph = build_lock_graph(modules)
        for group in find_cycles(graph):
            nodes = sorted({e.src for e in group} | {e.dst for e in group})
            cycle = " <-> ".join(nodes)
            for edge in group:
                via = f" via {edge.via}()" if edge.via else ""
                yield Finding(
                    rule=self.id,
                    path=edge.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"acquires {edge.dst} while holding {edge.src}{via}, "
                        f"but the opposite order also exists — ordering cycle "
                        f"[{cycle}] can deadlock"
                    ),
                )


class _WriteVisitor(ast.NodeVisitor):
    """Walk one method tracking held ``with self.X:`` contexts, reporting
    writes to guarded attributes made without their guard held."""

    def __init__(self, guards: dict[str, str], alias_ok: dict[str, set[str]], mod):
        self.guards = guards            # attr -> guard attr (e.g. "_lock")
        self.alias_ok = alias_ok        # guard attr -> acceptable held attrs
        self.mod = mod
        self.findings: list[Finding] = []
        self._held: list[str] = []      # attr names of held self.X contexts

    # -- context tracking ------------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None:
                self._held.append(attr)
                pushed += 1
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self._held.pop()

    # a nested function does not run under the enclosing with-block's lock
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        held, self._held = self._held, []
        for stmt in node.body:
            self.visit(stmt)
        self._held = held

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- write detection -------------------------------------------------------------

    def _check_write(self, attr: str, lineno: int, col: int) -> None:
        guard = self.guards.get(attr)
        if guard is None:
            return
        if any(h in self.alias_ok[guard] for h in self._held):
            return
        self.findings.append(
            Finding(
                rule="guarded-write",
                path=self.mod.rel,
                line=lineno,
                col=col,
                message=(
                    f"write to self.{attr} outside 'with self.{guard}:' "
                    f"(declared guarded-by self.{guard})"
                ),
            )
        )

    def _write_target_attr(self, target: ast.expr) -> ast.Attribute | None:
        """The ``self.X`` attribute a store target writes through, if any:
        ``self.X``, ``self.X.field``, or ``self.X[...]``."""
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and not (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ):
            # one nesting level: self.stats.hits += 1 writes through self.stats
            inner = node.value
            if isinstance(inner, ast.Attribute) and isinstance(inner.value, ast.Name) \
                    and inner.value.id == "self":
                return inner
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node
        return None

    def _handle_store(self, target: ast.expr) -> None:
        attr_node = self._write_target_attr(target)
        if attr_node is not None:
            self._check_write(attr_node.attr, target.lineno, target.col_offset)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for el in target.elts:
                    self._handle_store(el)
            else:
                self._handle_store(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_store(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_store(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            recv = func.value
            if isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name) \
                    and recv.value.id == "self":
                self._check_write(recv.attr, node.lineno, node.col_offset)
        self.generic_visit(node)


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class GuardedWriteRule:
    """Enforce ``# guarded-by: <lock>`` annotations at attribute writes."""

    id = "guarded-write"

    def run(self, modules):
        for mod in modules:
            for cls in [n for n in ast.walk(mod.tree) if isinstance(n, ast.ClassDef)]:
                yield from self._check_class(mod, cls)

    def _check_class(self, mod, cls: ast.ClassDef):
        end = getattr(cls, "end_lineno", None) or cls.lineno
        annotations: dict[int, str] = {}
        for line in range(cls.lineno, end + 1):
            comment = mod.comments.get(line)
            if not comment:
                continue
            m = _GUARDED_BY_RE.search(comment)
            if m:
                annotations[line] = m.group(1)
        if not annotations:
            return

        # associate each annotation with the attribute assigned on its line
        guards: dict[str, str] = {}
        matched: set[int] = set()
        for node in ast.walk(cls):
            line = getattr(node, "lineno", None)
            if line not in annotations:
                continue
            attr: str | None = None
            if isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    attr = node.target.id
                else:
                    attr = _self_attr(node.target)
            elif isinstance(node, ast.Assign) and node.targets:
                attr = _self_attr(node.targets[0])
            if attr is not None:
                guard_expr = annotations[line]
                guard = guard_expr[5:] if guard_expr.startswith("self.") else guard_expr
                guards[attr] = guard
                matched.add(line)
        for line in sorted(set(annotations) - matched):
            yield Finding(
                rule=self.id,
                path=mod.rel,
                line=line,
                col=0,
                message=(
                    "guarded-by annotation is not attached to an attribute "
                    "assignment (expected 'self.attr = ...' or a dataclass "
                    "field on this line)"
                ),
            )
        if not guards:
            return

        # a Condition wrapping a lock guards the same state as the lock
        lock_aliases = collect_lock_attrs(cls)
        alias_ok: dict[str, set[str]] = {}
        for guard in set(guards.values()):
            canonical = lock_aliases.get(guard, guard)
            alias_ok[guard] = {
                a for a, c in lock_aliases.items() if c == canonical
            } | {guard}

        for method in [s for s in cls.body if isinstance(s, ast.FunctionDef)]:
            if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                continue
            visitor = _WriteVisitor(guards, alias_ok, mod)
            for stmt in method.body:
                visitor.visit(stmt)
            yield from visitor.findings


class BroadExceptInThreadRule:
    """Flag bare/broad exception handlers that silently swallow errors."""

    id = "broad-except-in-thread"

    def run(self, modules):
        for mod in modules:
            if mod.section != "src":
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "bare 'except:' also traps KeyboardInterrupt/"
                            "SystemExit — name the exceptions this code can "
                            "actually handle"
                        ),
                    )
                    continue
                if self._is_broad(node.type) and self._swallows(node):
                    yield Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "broad except silently swallows errors — worker-"
                            "thread failures become invisible; catch the "
                            "specific exceptions or log/re-raise"
                        ),
                    )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names: list[str] = []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for n in nodes:
            if isinstance(n, ast.Name):
                names.append(n.id)
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        """A handler swallows the error unless it re-raises, calls anything
        (logging, event recording), or stores the caught exception object
        (the capture-and-rethrow-at-join pattern)."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Call)):
                    return False
                if (
                    handler.name is not None
                    and isinstance(node, ast.Name)
                    and node.id == handler.name
                    and isinstance(node.ctx, ast.Load)
                ):
                    return False
        return True
