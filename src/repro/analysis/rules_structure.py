"""Cross-module exhaustiveness rules: wire protocol and dispatch tables.

``wire-exhaustive``
    Every request message type declared in a ``wire.py`` (an ``MSG_X``
    with a matching ``MSG_X_OK`` reply) must be handled by the sibling
    ``server.py`` (both the request and its reply type referenced) and
    encodable by the sibling ``client.py`` (the request type referenced).
    Every declared ``MSG_*`` must also be registered in
    ``MESSAGE_NAMES``.  A message type added to the protocol but wired
    into only one side fails here instead of at runtime on a live
    connection.

``sweep-kernel``
    The ``SWEEP_KERNELS`` dispatch table maps sweep-scheduled ops to
    single-chunk kernel method names.  Every class implementing one of
    those kernels is an executor on the streaming path and must provide
    the ``sweep_stream`` seam — defined locally, inherited from a
    scanned base, or delegated via ``__getattr__``.  Every kernel name
    in the table must be implemented by at least one scanned class, and
    every table key must have a partition axis in ``SWEEP_AXIS``.
"""

from __future__ import annotations

import ast
import posixpath
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["WireExhaustiveRule", "SweepKernelRule"]


def _referenced_names(tree: ast.Module) -> set[str]:
    return {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}


class WireExhaustiveRule:
    """Every wire message type must have a server handler + client encoder."""

    id = "wire-exhaustive"

    def run(self, modules):
        by_rel = {mod.rel: mod for mod in modules}
        for mod in modules:
            if posixpath.basename(mod.rel) != "wire.py":
                continue
            msgs = self._message_constants(mod.tree)
            if len(msgs) < 2:
                continue
            yield from self._check_protocol(mod, msgs, by_rel)

    @staticmethod
    def _message_constants(tree: ast.Module) -> dict[str, int]:
        msgs: dict[str, int] = {}
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.startswith("MSG_")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                msgs[node.targets[0].id] = node.lineno
        return msgs

    def _check_protocol(self, mod, msgs: dict[str, int], by_rel):
        dirname = posixpath.dirname(mod.rel)
        server = by_rel.get(posixpath.join(dirname, "server.py"))
        client = by_rel.get(posixpath.join(dirname, "client.py"))
        server_names = _referenced_names(server.tree) if server else set()
        client_names = _referenced_names(client.tree) if client else set()
        registered = self._message_names_keys(mod.tree)

        for name, line in sorted(msgs.items(), key=lambda kv: kv[1]):
            if registered is not None and name not in registered:
                yield Finding(
                    rule=self.id, path=mod.rel, line=line, col=0,
                    message=f"{name} is not registered in MESSAGE_NAMES",
                )
            if name.endswith("_OK") or f"{name}_OK" not in msgs:
                continue  # replies/notifications are checked via their request
            reply = f"{name}_OK"
            if server is not None and (
                name not in server_names or reply not in server_names
            ):
                missing = name if name not in server_names else reply
                yield Finding(
                    rule=self.id, path=mod.rel, line=line, col=0,
                    message=(
                        f"request {name} has no server handler — {missing} is "
                        f"never referenced in {server.rel}"
                    ),
                )
            if client is not None and name not in client_names:
                yield Finding(
                    rule=self.id, path=mod.rel, line=line, col=0,
                    message=(
                        f"request {name} has no client encoder — never "
                        f"referenced in {client.rel}"
                    ),
                )

    @staticmethod
    def _message_names_keys(tree: ast.Module) -> set[str] | None:
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "MESSAGE_NAMES"
                and isinstance(node.value, ast.Dict)
            ):
                return {
                    k.id for k in node.value.keys if isinstance(k, ast.Name)
                }
        return None


@dataclass
class _ClassInfo:
    name: str
    rel: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)


class SweepKernelRule:
    """Every SWEEP_KERNELS executor must implement the sweep_stream seam."""

    id = "sweep-kernel"

    SEAM = "sweep_stream"

    def run(self, modules):
        classes: list[_ClassInfo] = []
        by_name: dict[str, list[_ClassInfo]] = {}
        tables: list[tuple[object, int, dict[str, str], set[str] | None]] = []
        for mod in modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef):
                    info = _ClassInfo(
                        name=node.name,
                        rel=mod.rel,
                        line=node.lineno,
                        bases=[self._base_name(b) for b in node.bases],
                        methods={
                            s.name
                            for s in node.body
                            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                        },
                    )
                    classes.append(info)
                    by_name.setdefault(info.name, []).append(info)
            table = self._dispatch_table(mod.tree, "SWEEP_KERNELS")
            if table is not None:
                axis = self._dispatch_table(mod.tree, "SWEEP_AXIS")
                tables.append(
                    (mod, table[1], table[0], set(axis[0]) if axis else None)
                )

        for mod, line, kernels, axis_ops in tables:
            implemented: set[str] = set()
            for info in classes:
                hit = set(kernels.values()) & info.methods
                if not hit:
                    continue
                implemented |= hit
                if not self._has_seam(info, by_name):
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=info.line,
                        col=0,
                        message=(
                            f"class {info.name} implements SWEEP_KERNELS "
                            f"kernel(s) {sorted(hit)} but neither defines nor "
                            f"inherits the '{self.SEAM}' seam (and has no "
                            "__getattr__ delegation) — it cannot serve the "
                            "streaming sweep path"
                        ),
                    )
            for op, kernel in sorted(kernels.items()):
                if kernel not in implemented:
                    yield Finding(
                        rule=self.id, path=mod.rel, line=line, col=0,
                        message=(
                            f"SWEEP_KERNELS[{op!r}] names kernel method "
                            f"{kernel!r}, which no scanned class implements"
                        ),
                    )
                if axis_ops is not None and op not in axis_ops:
                    yield Finding(
                        rule=self.id, path=mod.rel, line=line, col=0,
                        message=(
                            f"op {op!r} is in SWEEP_KERNELS but has no "
                            "partition axis in SWEEP_AXIS"
                        ),
                    )

    @staticmethod
    def _base_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    @staticmethod
    def _dispatch_table(
        tree: ast.Module, name: str
    ) -> tuple[dict[str, str], int] | None:
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Dict)
            ):
                table: dict[str, str] = {}
                for k, v in zip(node.value.keys, node.value.values):
                    if isinstance(k, ast.Constant) and isinstance(v, ast.Constant):
                        table[str(k.value)] = str(v.value)
                return table, node.lineno
        return None

    def _has_seam(self, info: _ClassInfo, by_name) -> bool:
        seen: set[str] = set()
        stack = [info]
        while stack:
            cls = stack.pop()
            if cls.name in seen:
                continue
            seen.add(cls.name)
            if self.SEAM in cls.methods or "__getattr__" in cls.methods:
                return True
            for base in cls.bases:
                for candidate in by_name.get(base, []):
                    stack.append(candidate)
        return False
