"""Dtype/backend flow rules: FFT routing, precision widening, seeded RNG.

``direct-fft``
    ``np.fft.*`` may only be used inside ``lamino/usfft.py`` — everything
    else must route through ``configure_fft`` / ``fft_backend`` so that a
    single switch controls the backend (scipy pocketfft vs numpy) and the
    complex64 discipline.  Calling ``np.fft`` directly silently forces
    numpy's complex128 path and escapes the backend configuration.

``dtype-widen``
    Flags explicit widening to ``complex128`` in library code
    (``astype(...)`` with a complex128 operand, or ``dtype=np.complex128``
    arguments).  The hot path is complex64 end-to-end; a widened slab
    doubles memory traffic and breaks bit-identity between execution
    layouts.  ``np.dtype(np.complex128)`` descriptor construction is not
    a data allocation and is exempt.

``unseeded-random``
    Tests and benchmarks must be reproducible: any ``np.random.*`` call
    that draws from unseeded global state (legacy functions, or
    ``default_rng()`` with no seed) is flagged.
"""

from __future__ import annotations

import ast

from .findings import Finding

__all__ = ["DirectFFTRule", "DtypeWidenRule", "UnseededRandomRule"]


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.fft.fftn`` -> ``["np", "fft", "fftn"]`` (empty if not a pure
    name/attribute chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _mentions_complex128(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "complex128":
            return True
        if isinstance(sub, ast.Name) and sub.id == "complex128":
            return True
        if isinstance(sub, ast.Constant) and sub.value == "complex128":
            return True
    return False


class DirectFFTRule:
    """Forbid direct ``np.fft`` use outside the FFT backend module."""

    id = "direct-fft"

    #: the one module that owns the backend seam
    EXEMPT_SUFFIX = "lamino/usfft.py"

    def run(self, modules):
        for mod in modules:
            if mod.rel.endswith(self.EXEMPT_SUFFIX):
                continue
            # report each np.fft.<fn> chain once, at its outermost attribute
            inner_nodes = {
                id(a.value)
                for a in ast.walk(mod.tree)
                if isinstance(a, ast.Attribute)
            }
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Attribute) or id(node) in inner_nodes:
                    continue
                chain = _attr_chain(node)
                if len(chain) >= 2 and chain[0] in ("np", "numpy") \
                        and chain[1] == "fft":
                    yield Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"direct {'.'.join(chain)} call bypasses "
                            "configure_fft/fft_backend — route FFTs through "
                            "repro.lamino.usfft so one switch controls the "
                            "backend and the complex64 discipline"
                        ),
                    )


class DtypeWidenRule:
    """Flag explicit complex128 widening in library (hot-path) code."""

    id = "dtype-widen"

    #: constructors whose second positional argument is a dtype
    _DTYPE_POSITIONAL = {"zeros", "empty", "ones", "full", "array", "asarray"}

    def run(self, modules):
        for mod in modules:
            if mod.section != "src":
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._check_call(mod, node)
                if finding is not None:
                    yield finding

    def _check_call(self, mod, node: ast.Call) -> Finding | None:
        func = node.func
        chain = _attr_chain(func)
        # np.dtype(np.complex128) builds a descriptor, not an array
        if chain[-1:] == ["dtype"]:
            return None
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if any(_mentions_complex128(a) for a in node.args) or any(
                _mentions_complex128(kw.value) for kw in node.keywords
            ):
                return self._finding(mod, node, "astype(...) widens to complex128")
            return None
        for kw in node.keywords:
            if kw.arg == "dtype" and _mentions_complex128(kw.value):
                return self._finding(
                    mod, node, f"{'.'.join(chain) or 'call'} allocates complex128"
                )
        if (
            len(chain) >= 1
            and chain[-1] in self._DTYPE_POSITIONAL
            and len(node.args) >= 2
            and _mentions_complex128(node.args[1])
        ):
            return self._finding(
                mod, node, f"{'.'.join(chain)} allocates complex128"
            )
        return None

    def _finding(self, mod, node: ast.Call, what: str) -> Finding:
        return Finding(
            rule=self.id,
            path=mod.rel,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what} — the hot path is complex64 end-to-end; widening "
                "doubles memory traffic and breaks layout bit-identity"
            ),
        )


class UnseededRandomRule:
    """Forbid unseeded numpy randomness in tests and benchmarks."""

    id = "unseeded-random"

    SECTIONS = ("tests", "benchmarks")

    #: generator/bit-generator constructors: fine when given a seed
    _CTORS = {
        "default_rng", "Generator", "SeedSequence", "RandomState",
        "PCG64", "Philox", "MT19937", "SFC64",
    }

    def run(self, modules):
        for mod in modules:
            if mod.section not in self.SECTIONS:
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if len(chain) < 3 or chain[0] not in ("np", "numpy") \
                        or chain[1] != "random":
                    continue
                fn = chain[2]
                if fn in self._CTORS:
                    if node.args or node.keywords:
                        continue
                    message = (
                        f"np.random.{fn}() without a seed — pass an explicit "
                        "seed (or use the shared seeded `rng` fixture) so the "
                        "run is reproducible"
                    )
                else:
                    message = (
                        f"np.random.{fn} draws from process-global state — "
                        "use a seeded np.random.default_rng(seed) Generator "
                        "so tests/benchmarks are reproducible"
                    )
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
