"""repro.analysis: repo-specific static analysis + runtime lock sanitizer.

The static pass (:func:`run_analysis`, ``python -m repro.analysis``)
AST-walks the tree and enforces invariants no generic linter knows:
lock-ordering consistency, ``# guarded-by:`` write discipline, FFT
backend routing, complex64 hot-path dtype flow, seeded test randomness,
and wire-protocol / dispatch-table exhaustiveness.  See ``RULES.md`` in
this package for the rule catalog and rationale.

The runtime side (:mod:`repro.analysis.lockwitness`) is an opt-in
lock-acquisition witness: it observes real acquisition order per thread
and raises at the moment an ordering cycle forms, instead of letting the
deadlock happen on some later unlucky interleaving.
"""

from .engine import ModuleInfo, run_analysis
from .findings import Finding, Report

__all__ = ["Finding", "Report", "ModuleInfo", "run_analysis"]
