"""The analysis engine: file collection, parsing, suppression, rule dispatch.

The engine walks the repo's python trees (``src``, ``tests``,
``benchmarks``, ``examples``), parses every file once, and hands the
resulting :class:`ModuleInfo` set to each registered rule.  Rules are
whole-project by construction — a rule sees *all* modules, which is what
lets the lock-order graph and the exhaustiveness checks reason across
module boundaries — and per-module rules simply iterate.

Suppression
-----------
A finding is suppressed by a ``# analysis: ignore[rule-id]`` comment on
the offending line, or on a standalone comment line directly above it.
``# analysis: ignore`` (no bracket) suppresses every rule on that line.
Suppressed findings are not dropped: they are counted and reported in
their own section, so an ignore comment is always visible in the report.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, Report

__all__ = ["ModuleInfo", "run_analysis", "collect_modules", "DEFAULT_SECTIONS"]

#: Top-level directories scanned by default (relative to the repo root).
DEFAULT_SECTIONS = ("src", "tests", "benchmarks", "examples")

_SUPPRESS_RE = re.compile(r"#\s*analysis:\s*ignore(?:\[([\w\-, ]*)\])?")


@dataclass
class ModuleInfo:
    """One parsed python file plus the lexical context rules need."""

    path: Path                      # absolute
    rel: str                        # posix path relative to the scan root
    section: str                    # "src" | "tests" | "benchmarks" | ...
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line -> full comment text (from tokenize, string-literal safe)
    comments: dict[int, str] = field(default_factory=dict)
    #: line -> set of suppressed rule ids ("*" = all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: lines that contain only a comment (suppressions there bind downward)
    standalone_comment_lines: set[int] = field(default_factory=set)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        """Is ``rule`` suppressed at ``lineno``? (same line, or a standalone
        suppression comment on the line directly above)"""
        for cand in (lineno, lineno - 1):
            ids = self.suppressions.get(cand)
            if ids is None:
                continue
            if cand != lineno and cand not in self.standalone_comment_lines:
                continue
            if "*" in ids or rule in ids:
                return True
        return False


def _comment_map(source: str) -> tuple[dict[int, str], set[int]]:
    comments: dict[int, str] = {}
    standalone: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        prev_row_has_code: dict[int, bool] = {}
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
                if tok.line.strip().startswith("#"):
                    standalone.add(tok.start[0])
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                prev_row_has_code[tok.start[0]] = True
    except tokenize.TokenError:
        pass
    return comments, standalone


def _suppression_map(comments: dict[int, str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for line, text in comments.items():
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        if m.group(1) is None:
            out[line] = {"*"}
        else:
            out[line] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return out


def iter_python_files(root: Path, paths: list[str] | None = None) -> list[Path]:
    """Every ``.py`` file under the requested trees, sorted."""
    roots: list[Path]
    if paths:
        roots = [root / p if not os.path.isabs(p) else Path(p) for p in paths]
    else:
        roots = [root / s for s in DEFAULT_SECTIONS]
    files: list[Path] = []
    for r in roots:
        if r.is_file() and r.suffix == ".py":
            files.append(r)
        elif r.is_dir():
            files.extend(p for p in r.rglob("*.py") if "__pycache__" not in p.parts)
    return sorted(set(files))


def collect_modules(
    root: Path, paths: list[str] | None = None
) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse every scanned file; unparseable files become findings."""
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in iter_python_files(root, paths):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        section = rel.split("/", 1)[0] if "/" in rel else ""
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=rel,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"cannot analyze file: {exc}",
                )
            )
            continue
        comments, standalone = _comment_map(source)
        modules.append(
            ModuleInfo(
                path=path,
                rel=rel,
                section=section,
                source=source,
                tree=tree,
                lines=source.splitlines(),
                comments=comments,
                suppressions=_suppression_map(comments),
                standalone_comment_lines=standalone,
            )
        )
    return modules, errors


def _all_rules():
    # deferred import: the rule modules import engine types
    from .rules_concurrency import BroadExceptInThreadRule, GuardedWriteRule, LockOrderRule
    from .rules_dtype import DirectFFTRule, DtypeWidenRule, UnseededRandomRule
    from .rules_structure import SweepKernelRule, WireExhaustiveRule

    return [
        LockOrderRule(),
        GuardedWriteRule(),
        BroadExceptInThreadRule(),
        DirectFFTRule(),
        DtypeWidenRule(),
        UnseededRandomRule(),
        WireExhaustiveRule(),
        SweepKernelRule(),
    ]


def rule_catalog() -> list:
    """The registered rules (id + one-line doc), for ``--list-rules``."""
    return [(r.id, r.__doc__.strip().splitlines()[0]) for r in _all_rules()]


def run_analysis(
    root: str | os.PathLike,
    paths: list[str] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> Report:
    """Run every rule over the tree at ``root``; returns the full report.

    ``select`` / ``ignore`` filter by rule id.  Suppression comments are
    honored per finding and reported separately (never silently dropped).
    """
    root = Path(root).resolve()
    modules, parse_errors = collect_modules(root, paths)
    report = Report(root=str(root), files_scanned=len(modules))
    report.findings.extend(parse_errors)
    by_rel = {m.rel: m for m in modules}
    for rule in _all_rules():
        if select is not None and rule.id not in select:
            continue
        if ignore is not None and rule.id in ignore:
            continue
        for finding in rule.run(modules):
            mod = by_rel.get(finding.path)
            if mod is not None and not finding.snippet:
                finding = Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    snippet=mod.line_text(finding.line),
                )
            if mod is not None and mod.suppressed(finding.line, rule.id):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    return report
