"""Entry point: ``python -m repro.analysis``."""

import sys

from .cli import main

sys.exit(main())
