"""Lock-acquisition-graph construction for the deadlock-cycle rule.

The graph's nodes are *lock creation sites*, identified as
``ClassName.attr`` for every ``self.attr = threading.Lock()`` /
``RLock()`` / ``Condition()`` assignment (dataclass
``field(default_factory=threading.Lock)`` declarations included).  A
directed edge ``A -> B`` means "somewhere, B is acquired while A is
held" — either lexically (a ``with self.b:`` nested inside
``with self.a:``) or interprocedurally (a method called under ``A``
transitively acquires ``B``).  Two locks acquired in both orders form a
cycle: two threads taking the opposite paths can deadlock.

Call resolution is deliberately conservative: ``self.m()`` resolves
within the class, ``SomeClass(...)`` resolves to its constructor, and a
plain ``obj.m()`` resolves only when ``m`` names a method of exactly one
scanned class *and* is not a ubiquitous container/stdlib name (``get``,
``put``, ``append``, ...) — a phantom edge from resolving ``dict.get``
to some class's ``get`` would poison the graph with false cycles.
``Condition(self.other)`` aliases: acquiring the condition *is*
acquiring the wrapped lock, so both names map to one node.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["LockEdge", "LockGraph", "build_lock_graph", "find_cycles"]

#: threading factory callables whose result is an acquirable lock
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: method names too common to resolve by uniqueness — resolving ``d.get``
#: or ``sock.close`` to whichever single class happens to define the name
#: would invent edges that do not exist
_SKIP_METHOD_NAMES = {
    "acquire", "add", "append", "appendleft", "cancel", "clear", "close",
    "copy", "count", "debug", "decode", "discard", "done", "encode",
    "error", "exception", "extend", "flush", "get", "get_nowait", "index",
    "info", "insert", "items", "join", "keys", "load", "merge", "notify",
    "notify_all", "open", "pop", "popleft", "put", "put_nowait", "read",
    "recv", "release", "remove", "result", "run", "save", "seed", "send",
    "set", "setdefault", "shutdown", "sort", "start", "state", "stats",
    "submit", "update", "values", "wait", "warning", "write",
}


@dataclass(frozen=True)
class LockEdge:
    """One observation of ``dst`` being acquired while ``src`` is held."""

    src: str              # lock node, "ClassName.attr"
    dst: str
    path: str             # file of the acquiring site
    line: int
    via: str = ""         # callee chain when the edge is interprocedural


@dataclass
class LockGraph:
    nodes: set[str] = field(default_factory=set)
    edges: list[LockEdge] = field(default_factory=list)

    def successors(self) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {n: set() for n in self.nodes}
        for e in self.edges:
            out.setdefault(e.src, set()).add(e.dst)
            out.setdefault(e.dst, set())
        return out


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_factory_call(node: ast.expr) -> ast.Call | None:
    """A ``threading.Lock()``-style call (or bare ``Lock()``), else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return node
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return node
    return None


def collect_lock_attrs(cls: ast.ClassDef) -> dict[str, str]:
    """attr name -> canonical attr name for every lock attribute of ``cls``
    (aliases like ``self._idle = threading.Condition(self._lock)`` map to
    the wrapped lock's name)."""
    locks: dict[str, str] = {}
    aliases: dict[str, str] = {}
    for stmt in cls.body:
        # dataclass field: _lock: threading.Lock = field(default_factory=threading.Lock)
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = stmt.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                    and value.func.id == "field":
                for kw in value.keywords:
                    if kw.arg == "default_factory" and (
                        (isinstance(kw.value, ast.Attribute)
                         and kw.value.attr in _LOCK_FACTORIES)
                        or (isinstance(kw.value, ast.Name)
                            and kw.value.id in _LOCK_FACTORIES)
                    ):
                        locks[stmt.target.id] = stmt.target.id
            elif _lock_factory_call(value) is not None:
                locks[stmt.target.id] = stmt.target.id
    for method in [s for s in cls.body if isinstance(s, ast.FunctionDef)]:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            attr = _self_attr(node.targets[0])
            if attr is None:
                continue
            call = _lock_factory_call(node.value)
            if call is None:
                continue
            wrapped = call.args[0] if call.args else None
            wrapped_attr = _self_attr(wrapped) if wrapped is not None else None
            if wrapped_attr is not None:
                aliases[attr] = wrapped_attr  # Condition(self._lock) et al.
            else:
                locks[attr] = attr
    for alias, target in aliases.items():
        locks[alias] = locks.get(target, target)
    return locks


@dataclass
class _MethodSummary:
    key: str                                   # "Class.method"
    path: str
    direct: set[str] = field(default_factory=set)   # locks acquired directly
    nest_edges: list[LockEdge] = field(default_factory=list)
    # (held locks, raw callee descriptor, line); resolved at link time
    calls: list[tuple[tuple[str, ...], tuple, int]] = field(default_factory=list)


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method, tracking the lexical stack of held class locks."""

    def __init__(self, cls_name: str, locks: dict[str, str], path: str, key: str):
        self.cls = cls_name
        self.locks = locks
        self.path = path
        self.summary = _MethodSummary(key=key, path=path)
        self._held: list[str] = []

    def _node_for(self, attr: str) -> str:
        return f"{self.cls}.{self.locks[attr]}"

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks:
                lock_node = self._node_for(attr)
                self.summary.direct.add(lock_node)
                for held in self._held:
                    if held != lock_node:
                        self.summary.nest_edges.append(
                            LockEdge(held, lock_node, self.path, item.context_expr.lineno)
                        )
                self._held.append(lock_node)
                acquired.append(lock_node)
            else:
                # non-lock context managers may still make calls
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self._held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        callee = self._describe_callee(node.func)
        if callee is not None and self._held:
            self.summary.calls.append((tuple(self._held), callee, node.lineno))
        elif callee is not None:
            # calls made lock-free still matter: they extend the caller's
            # transitive acquire set (the caller may itself be called
            # under a lock)
            self.summary.calls.append(((), callee, node.lineno))
        self.generic_visit(node)

    # nested defs run later/elsewhere; their lock behavior must not be
    # attributed to this method's held stack
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def _describe_callee(self, func: ast.expr) -> tuple | None:
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return ("self", func.attr)
            return ("attr", func.attr)
        if isinstance(func, ast.Name):
            return ("name", func.id)
        return None


def build_lock_graph(modules) -> LockGraph:
    """Build the global acquisition graph over every scanned module."""
    # pass 1: classes, their lock attrs, their methods
    class_locks: dict[str, dict[str, str]] = {}
    class_methods: dict[str, set[str]] = {}
    methods_by_name: dict[str, set[str]] = {}       # method name -> {class}
    summaries: dict[str, _MethodSummary] = {}
    classes: list[tuple[str, ast.ClassDef, str]] = []
    for mod in modules:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                classes.append((mod.rel, node, node.name))
    for rel, cls, name in classes:
        locks = collect_lock_attrs(cls)
        if name not in class_locks:
            class_locks[name] = locks
        else:
            class_locks[name].update(locks)
        for method in [s for s in cls.body if isinstance(s, ast.FunctionDef)]:
            key = f"{name}.{method.name}"
            class_methods.setdefault(name, set()).add(method.name)
            methods_by_name.setdefault(method.name, set()).add(name)
            visitor = _MethodVisitor(name, class_locks[name], rel, key)
            for stmt in method.body:
                visitor.visit(stmt)
            if key in summaries:                     # same-named class elsewhere
                summaries[key].direct |= visitor.summary.direct
                summaries[key].nest_edges += visitor.summary.nest_edges
                summaries[key].calls += visitor.summary.calls
            else:
                summaries[key] = visitor.summary

    def resolve(callee: tuple, own_class: str) -> str | None:
        kind, name = callee
        if kind == "self":
            if name in class_methods.get(own_class, ()):
                return f"{own_class}.{name}"
            return None
        if kind == "name":
            if name in class_methods and "__init__" in class_methods[name]:
                return f"{name}.__init__"
            return None
        # kind == "attr": unique, non-ubiquitous method names only
        if name in _SKIP_METHOD_NAMES:
            return None
        owners = methods_by_name.get(name, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}.{name}"
        return None

    # pass 2: transitive acquire sets, to a fixpoint
    acquires: dict[str, set[str]] = {k: set(s.direct) for k, s in summaries.items()}
    resolved_calls: dict[str, list[tuple[tuple[str, ...], str, int]]] = {}
    for key, summary in summaries.items():
        own_class = key.rsplit(".", 1)[0]
        resolved_calls[key] = [
            (held, target, line)
            for held, callee, line in summary.calls
            if (target := resolve(callee, own_class)) is not None
        ]
    changed = True
    while changed:
        changed = False
        for key, calls in resolved_calls.items():
            for _held, target, _line in calls:
                extra = acquires.get(target, set()) - acquires[key]
                if extra:
                    acquires[key] |= extra
                    changed = True

    # pass 3: edges
    graph = LockGraph()
    for key, summary in summaries.items():
        graph.nodes |= summary.direct
        graph.edges.extend(summary.nest_edges)
        for held, target, line in resolved_calls[key]:
            for dst in acquires.get(target, ()):
                for src in held:
                    if src != dst:
                        graph.edges.append(
                            LockEdge(src, dst, summary.path, line, via=target)
                        )
    for e in graph.edges:
        graph.nodes.add(e.src)
        graph.nodes.add(e.dst)
    return graph


def find_cycles(graph: LockGraph) -> list[list[LockEdge]]:
    """Every edge participating in an ordering cycle, grouped by strongly
    connected component (one group per cyclic SCC)."""
    succ = graph.successors()
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # iterative Tarjan (analysis must not depend on recursion depth)
        work = [(v, iter(sorted(succ.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(succ.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)

    for node in sorted(graph.nodes):
        if node not in index:
            strongconnect(node)

    groups: list[list[LockEdge]] = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        edges = [e for e in graph.edges if e.src in scc and e.dst in scc]
        dedup: dict[tuple, LockEdge] = {}
        for e in edges:
            dedup.setdefault((e.src, e.dst, e.path, e.line), e)
        groups.append(sorted(dedup.values(), key=lambda e: (e.path, e.line, e.src)))
    return groups
