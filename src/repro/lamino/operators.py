"""The laminography operator stack: ``F_u1D``, ``F_u2D``, ``F_2D`` and adjoints.

These are the six FFT operations of the paper's Algorithm 1.  The forward
laminography operator factors as::

    L u = F*_2D ( F_u2D ( F_u1D u ) )            (Algorithm 1, line 4)

and its adjoint as ``L* d = F*_u1D ( F*_u2D ( F_2D d ) )``.  After operation
cancellation (Algorithm 2) the detector-plane pair ``F*_2D``/``F_2D`` is
elided and the solver works directly on ``d_hat = F_2D d`` in the frequency
domain; :class:`LaminoOperators` exposes both compositions.

All operators are exact numerical adjoint pairs (dot-product test to rounding
error), and ``F_2D`` is unitary (``norm='ortho'``) so that the cancellation
``F_2D F*_2D = I`` of Section 4.2 holds exactly.

Shapes follow the paper::

    u      (n1, n0, n2)            real or complex volume
    u1     (n1, h,  n2)            after F_u1D   (z -> eta*sin(phi))
    u2     (n_angles, h, w)        after F_u2D   (in-plane NUFFT)
    d      (n_angles, h, w)        detector-space projections
"""

from __future__ import annotations

import numpy as np

from .geometry import LaminoGeometry
from .usfft import (
    USFFT1DPlan,
    USFFT2DPlan,
    centered_fft2,
    centered_ifft2,
    usfft1d_type1,
    usfft1d_type2,
    usfft2d_type1,
    usfft2d_type2,
)

__all__ = ["LaminoOperators", "OP_NAMES", "MEMOIZABLE_OPS"]

#: The six FFT operations of Algorithm 1, in forward-then-adjoint order.
OP_NAMES = ("Fu1D", "Fu2D", "F2D*", "F2D", "Fu2D*", "Fu1D*")

#: The four operations that survive cancellation (Algorithm 2) and that the
#: memoization engine replaces.
MEMOIZABLE_OPS = ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*")


class LaminoOperators:
    """Plan-carrying implementation of the laminography FFT operations.

    Building an instance precomputes the USFFT gridding plans for the given
    geometry; individual operator applications then run entirely from the
    plans.  Chunked application (the unit the memoization engine works on) is
    supported through the ``rows`` arguments, which select a slab of the
    relevant partition axis:

    - ``fu1d`` / ``fu1d_adj`` chunk along the volume x-axis (``n1``),
    - ``fu2d`` / ``fu2d_adj`` chunk along the detector row-frequency axis
      (``h``),
    - ``f2d`` / ``f2d_adj`` chunk along the projection-angle axis.
    """

    def __init__(
        self,
        geometry: LaminoGeometry,
        half_width: int = 7,
        oversample: int = 2,
    ) -> None:
        self.geometry = geometry
        n1, n0, n2 = geometry.vol_shape
        self.plan1d = USFFT1DPlan(
            n0, geometry.z_freqs(), half_width=half_width, oversample=oversample
        )
        self.plan2d = USFFT2DPlan(
            (n1, n2),
            geometry.inplane_points(),
            half_width=half_width,
            oversample=oversample,
        )

    # -- the six FFT operations ---------------------------------------------------

    def fu1d(self, u: np.ndarray) -> np.ndarray:
        """``F_u1D``: ``(m1, n0, n2) -> (m1, h, n2)`` (chunkable over axis 0)."""
        return usfft1d_type2(u, self.plan1d, axis=1)

    def fu1d_adj(self, u1: np.ndarray) -> np.ndarray:
        """``F*_u1D``: ``(m1, h, n2) -> (m1, n0, n2)``."""
        return usfft1d_type1(u1, self.plan1d, axis=1)

    def fu2d(self, u1: np.ndarray, rows: slice | None = None) -> np.ndarray:
        """``F_u2D``: ``(n1, h_c, n2) -> (n_angles, h_c, w)``.

        ``rows`` selects the detector-row-frequency slab ``u1`` covers (its
        axis 1); by default the full ``h`` range.
        """
        g = self.geometry
        sl = rows if rows is not None else slice(0, g.det_shape[0])
        slabs = np.ascontiguousarray(np.moveaxis(u1, 1, 0))  # (h_c, n1, n2)
        flat = usfft2d_type2(slabs, self.plan2d, slices=sl)  # (h_c, ntheta*w)
        out = flat.reshape(slabs.shape[0], g.n_angles, g.det_shape[1])
        return np.ascontiguousarray(np.moveaxis(out, 0, 1))  # (ntheta, h_c, w)

    def fu2d_adj(self, u2: np.ndarray, rows: slice | None = None) -> np.ndarray:
        """``F*_u2D``: ``(n_angles, h_c, w) -> (n1, h_c, n2)``."""
        g = self.geometry
        sl = rows if rows is not None else slice(0, g.det_shape[0])
        h_c = u2.shape[1]
        flat = np.ascontiguousarray(np.moveaxis(u2, 1, 0)).reshape(h_c, -1)
        slabs = usfft2d_type1(flat, self.plan2d, slices=sl)  # (h_c, n1, n2)
        return np.ascontiguousarray(np.moveaxis(slabs, 0, 1))

    @staticmethod
    def f2d(d: np.ndarray) -> np.ndarray:
        """``F_2D``: unitary centered detector FFT, per angle (chunkable axis 0).

        Runs through the module FFT backend (:func:`repro.lamino.usfft.
        configure_fft`): dtype-preserving, threaded pocketfft by default.
        """
        return centered_fft2(d, norm="ortho")

    @staticmethod
    def f2d_adj(dhat: np.ndarray) -> np.ndarray:
        """``F*_2D`` = inverse of ``f2d`` (unitary, so adjoint == inverse)."""
        return centered_ifft2(dhat, norm="ortho")

    # -- compositions ---------------------------------------------------------------

    def forward(self, u: np.ndarray) -> np.ndarray:
        """Full forward model ``L u`` (Algorithm 1): volume -> projections."""
        return self.f2d_adj(self.fu2d(self.fu1d(u)))

    def adjoint(self, d: np.ndarray) -> np.ndarray:
        """Adjoint ``L* d``: projections -> volume."""
        return self.fu1d_adj(self.fu2d_adj(self.f2d(d)))

    def forward_freq(self, u: np.ndarray) -> np.ndarray:
        """Cancelled forward model (Algorithm 2): volume -> detector spectrum."""
        return self.fu2d(self.fu1d(u))

    def adjoint_freq(self, dhat: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`forward_freq`: detector spectrum -> volume."""
        return self.fu1d_adj(self.fu2d_adj(dhat))
