"""Chunk partitioning of volumes and intermediates.

The existing laminography pipeline (and mLR on top of it) never materializes
a whole operator application on the GPU: the partition axis of each operand
is split into fixed-size *chunks* that are streamed device-to-device.  A
chunk location (the ``(op, index)`` pair) is also the key granularity of the
paper's memoization cache — each location owns a private single-entry cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Chunk", "check_tiling", "chunk_ranges", "iter_chunks", "num_chunks", "reassemble"]


@dataclass(frozen=True)
class Chunk:
    """A slab of an array along one axis.

    ``index`` is the chunk location (0-based), ``lo:hi`` the slab range on
    ``axis``.
    """

    index: int
    axis: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def slice(self) -> slice:
        return slice(self.lo, self.hi)

    def take(self, a: np.ndarray) -> np.ndarray:
        """View of the chunk's slab of ``a``."""
        sl = [slice(None)] * a.ndim
        sl[self.axis] = self.slice
        return a[tuple(sl)]

    def put(self, a: np.ndarray, value: np.ndarray) -> None:
        """Write ``value`` into the chunk's slab of ``a`` in place."""
        sl = [slice(None)] * a.ndim
        sl[self.axis] = self.slice
        a[tuple(sl)] = value


def chunk_ranges(n: int, size: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into consecutive ranges of width ``size`` (last may
    be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    if n < 1:
        raise ValueError(f"axis length must be >= 1, got {n}")
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def num_chunks(n: int, size: int) -> int:
    return len(chunk_ranges(n, size))


def iter_chunks(n: int, size: int, axis: int = 0) -> Iterator[Chunk]:
    """Yield :class:`Chunk` descriptors covering an axis of length ``n``."""
    for i, (lo, hi) in enumerate(chunk_ranges(n, size)):
        yield Chunk(index=i, axis=axis, lo=lo, hi=hi)


def check_tiling(spans, length: int) -> None:
    """Validate that ``(lo, hi)`` spans tile ``[0, length)`` exactly.

    Gaps, overlaps and duplicates all raise — a duplicate-plus-gap
    combination can match the total covered length while leaving
    uninitialized memory, so a plain covered-length check is not enough.
    """
    pos = 0
    for lo, hi in sorted(spans):
        if lo != pos:
            raise ValueError(
                "chunks do not tile the partition axis exactly "
                f"(gap or overlap at {lo}, expected {pos})"
            )
        pos = hi
    if pos != length:
        raise ValueError(f"chunks cover [0, {pos}) of a length-{length} axis")


def reassemble(chunks: list[tuple[Chunk, np.ndarray]], shape: tuple[int, ...], dtype) -> np.ndarray:
    """Rebuild a full array from ``(chunk, value)`` pairs.

    Pairs may arrive in any order (a pipelined writer may see worker blocks
    early), but together they must tile the partition axis exactly
    (:func:`check_tiling`).
    """
    if not chunks:
        raise ValueError("reassemble needs at least one (chunk, value) pair")
    axis = chunks[0][0].axis
    out = np.empty(shape, dtype=dtype)
    for chunk, value in chunks:
        if chunk.axis != axis:
            raise ValueError(
                f"mixed partition axes: got {chunk.axis}, expected {axis}"
            )
        chunk.put(out, value)
    check_tiling(((c.lo, c.hi) for c, _ in chunks), shape[axis])
    return out
