"""Chunk partitioning of volumes and intermediates.

The existing laminography pipeline (and mLR on top of it) never materializes
a whole operator application on the GPU: the partition axis of each operand
is split into fixed-size *chunks* that are streamed device-to-device.  A
chunk location (the ``(op, index)`` pair) is also the key granularity of the
paper's memoization cache — each location owns a private single-entry cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Chunk", "chunk_ranges", "iter_chunks", "num_chunks", "reassemble"]


@dataclass(frozen=True)
class Chunk:
    """A slab of an array along one axis.

    ``index`` is the chunk location (0-based), ``lo:hi`` the slab range on
    ``axis``.
    """

    index: int
    axis: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def slice(self) -> slice:
        return slice(self.lo, self.hi)

    def take(self, a: np.ndarray) -> np.ndarray:
        """View of the chunk's slab of ``a``."""
        sl = [slice(None)] * a.ndim
        sl[self.axis] = self.slice
        return a[tuple(sl)]

    def put(self, a: np.ndarray, value: np.ndarray) -> None:
        """Write ``value`` into the chunk's slab of ``a`` in place."""
        sl = [slice(None)] * a.ndim
        sl[self.axis] = self.slice
        a[tuple(sl)] = value


def chunk_ranges(n: int, size: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into consecutive ranges of width ``size`` (last may
    be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    if n < 1:
        raise ValueError(f"axis length must be >= 1, got {n}")
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def num_chunks(n: int, size: int) -> int:
    return len(chunk_ranges(n, size))


def iter_chunks(n: int, size: int, axis: int = 0) -> Iterator[Chunk]:
    """Yield :class:`Chunk` descriptors covering an axis of length ``n``."""
    for i, (lo, hi) in enumerate(chunk_ranges(n, size)):
        yield Chunk(index=i, axis=axis, lo=lo, hi=hi)


def reassemble(chunks: list[tuple[Chunk, np.ndarray]], shape: tuple[int, ...], dtype) -> np.ndarray:
    """Rebuild a full array from ``(chunk, value)`` pairs."""
    out = np.empty(shape, dtype=dtype)
    covered = 0
    for chunk, value in chunks:
        chunk.put(out, value)
        covered += chunk.size
    if covered != shape[chunks[0][0].axis]:
        raise ValueError("chunks do not cover the partition axis exactly")
    return out
