"""Synthetic laminography specimens.

The paper evaluates on flat, laterally extended samples — a downsampled mouse
brain, integrated circuits, and printed circuit boards.  Those datasets are
beamline property, so this module provides synthetic stand-ins that exercise
the same code paths: every phantom is a thin slab (laminography's natural
target) with either fine high-contrast structure (``ic_layers``), smooth
blobby tissue with filaments (``brain_like``), or coarse planar features
(``pcb``).  All generators are deterministic given a seed and return float32
volumes in ``[0, 1]`` with the paper's ``(n1, n0, n2) = (x, z, y)`` axis
order.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["ic_layers", "brain_like", "pcb", "slab_envelope", "make_phantom"]


def slab_envelope(shape: tuple[int, int, int], thickness: float = 0.5) -> np.ndarray:
    """Soft-edged flat-slab support mask centered on the z axis.

    ``thickness`` is the occupied fraction of the vertical extent; a smooth
    roll-off avoids ringing in the Fourier-domain forward model.
    """
    n1, n0, n2 = shape
    z = (np.arange(n0) - n0 / 2 + 0.5) / (n0 / 2)
    half = max(thickness / 2.0, 1e-3)
    edge = 4.0 / n0
    prof = 0.5 * (1.0 + np.tanh((half - np.abs(z)) / edge))
    return np.broadcast_to(
        prof[None, :, None].astype(np.float32), (n1, n0, n2)
    ).copy()


def ic_layers(
    shape: tuple[int, int, int],
    n_layers: int = 4,
    traces_per_layer: int = 6,
    seed: int = 0,
) -> np.ndarray:
    """Integrated-circuit phantom: thin metal layers with Manhattan traces.

    Each layer is a horizontal plane populated with randomly routed
    axis-aligned traces and square vias, mimicking the sub-10-nm IC imaging
    use case from the paper's introduction.
    """
    rng = np.random.default_rng(seed)
    n1, n0, n2 = shape
    vol = np.zeros(shape, dtype=np.float32)
    usable = np.linspace(0.3 * n0, 0.7 * n0, n_layers).astype(int)
    for li, z in enumerate(usable):
        layer = np.zeros((n1, n2), dtype=np.float32)
        for _ in range(traces_per_layer):
            x = int(rng.integers(0, n1))
            y = int(rng.integers(0, n2))
            width = max(1, n1 // 32)
            intensity = float(rng.uniform(0.6, 1.0))
            for _ in range(int(rng.integers(3, 7))):  # Manhattan random walk
                length = int(rng.integers(n1 // 8, n1 // 3))
                if rng.random() < 0.5:
                    x2 = int(np.clip(x + rng.choice([-1, 1]) * length, 0, n1 - 1))
                    lo, hi = sorted((x, x2))
                    layer[lo : hi + 1, max(0, y - width) : y + width] = intensity
                    x = x2
                else:
                    y2 = int(np.clip(y + rng.choice([-1, 1]) * length, 0, n2 - 1))
                    lo, hi = sorted((y, y2))
                    layer[max(0, x - width) : x + width, lo : hi + 1] = intensity
                    y = y2
        thick = max(1, n0 // 64)
        vol[:, z : z + thick, :] = np.maximum(vol[:, z : z + thick, :], layer[:, None, :])
        # vias connecting to the next layer
        if li + 1 < n_layers:
            z_next = usable[li + 1]
            for _ in range(traces_per_layer // 2):
                vx = int(rng.integers(n1 // 8, 7 * n1 // 8))
                vy = int(rng.integers(n2 // 8, 7 * n2 // 8))
                s = max(1, n1 // 48)
                vol[vx : vx + s, z:z_next, vy : vy + s] = 0.9
    return np.clip(vol, 0.0, 1.0)


def brain_like(
    shape: tuple[int, int, int],
    n_blobs: int = 24,
    n_filaments: int = 12,
    seed: int = 0,
) -> np.ndarray:
    """Soft-tissue phantom: smooth blobs plus thin curvy filaments in a slab.

    Stands in for the paper's downsampled mouse-brain dataset: mostly smooth
    low-contrast structure (where TV regularization matters) with sparse
    fine detail that the reconstruction must preserve.
    """
    rng = np.random.default_rng(seed)
    n1, n0, n2 = shape
    vol = np.zeros(shape, dtype=np.float32)
    xx = np.arange(n1)[:, None, None]
    zz = np.arange(n0)[None, :, None]
    yy = np.arange(n2)[None, None, :]
    for _ in range(n_blobs):
        cx, cz, cy = (
            rng.uniform(0.15 * n1, 0.85 * n1),
            rng.uniform(0.35 * n0, 0.65 * n0),
            rng.uniform(0.15 * n2, 0.85 * n2),
        )
        rx = rng.uniform(0.04, 0.16) * n1
        rz = rng.uniform(0.03, 0.08) * n0
        ry = rng.uniform(0.04, 0.16) * n2
        r2 = ((xx - cx) / rx) ** 2 + ((zz - cz) / rz) ** 2 + ((yy - cy) / ry) ** 2
        vol += rng.uniform(0.2, 0.6) * np.exp(-0.5 * r2).astype(np.float32)
    # Filaments: random-walk curves rasterized then slightly blurred.
    fil = np.zeros(shape, dtype=np.float32)
    for _ in range(n_filaments):
        p = np.array(
            [rng.uniform(0, n1), rng.uniform(0.4 * n0, 0.6 * n0), rng.uniform(0, n2)]
        )
        v = rng.normal(size=3)
        v[1] *= 0.2  # keep filaments mostly in-plane
        v /= np.linalg.norm(v)
        for _ in range(2 * n1):
            ip = np.round(p).astype(int)
            if (0 <= ip[0] < n1) and (0 <= ip[1] < n0) and (0 <= ip[2] < n2):
                fil[ip[0], ip[1], ip[2]] = 1.0
            v += 0.25 * rng.normal(size=3) * np.array([1.0, 0.2, 1.0])
            v /= np.linalg.norm(v)
            p += v
    fil = ndimage.gaussian_filter(fil, sigma=0.8)
    vol += 0.8 * fil / max(fil.max(), 1e-6)
    vol *= slab_envelope(shape, thickness=0.45)
    return np.clip(vol / max(vol.max(), 1e-6), 0.0, 1.0).astype(np.float32)


def pcb(
    shape: tuple[int, int, int],
    n_pads: int = 16,
    n_traces: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Printed-circuit-board phantom: large pads and straight traces.

    Coarse 0.15--0.3 mm class features for which the paper recommends the
    looser similarity threshold ``tau = 0.9``.
    """
    rng = np.random.default_rng(seed)
    n1, n0, n2 = shape
    vol = np.zeros(shape, dtype=np.float32)
    board_lo, board_hi = int(0.45 * n0), int(0.55 * n0)
    vol[:, board_lo:board_hi, :] = 0.25  # substrate
    top = np.zeros((n1, n2), dtype=np.float32)
    for _ in range(n_pads):
        cx = int(rng.integers(n1 // 10, 9 * n1 // 10))
        cy = int(rng.integers(n2 // 10, 9 * n2 // 10))
        r = int(rng.integers(max(2, n1 // 24), max(3, n1 // 12)))
        top[max(0, cx - r) : cx + r, max(0, cy - r) : cy + r] = 1.0
    for _ in range(n_traces):
        if rng.random() < 0.5:
            row = int(rng.integers(0, n1))
            top[row : row + max(1, n1 // 40), :] = 0.85
        else:
            col = int(rng.integers(0, n2))
            top[:, col : col + max(1, n2 // 40)] = 0.85
    thick = max(1, n0 // 40)
    vol[:, board_hi : board_hi + thick, :] = np.maximum(
        vol[:, board_hi : board_hi + thick, :], top[:, None, :]
    )
    return np.clip(vol, 0.0, 1.0)


_REGISTRY = {"ic": ic_layers, "brain": brain_like, "pcb": pcb}


def make_phantom(kind: str, shape: tuple[int, int, int], seed: int = 0) -> np.ndarray:
    """Dispatch by name (``'ic'``, ``'brain'``, ``'pcb'``)."""
    try:
        fn = _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown phantom {kind!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return fn(shape, seed=seed)
