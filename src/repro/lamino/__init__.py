"""Laminography substrate: geometry, USFFT operators, phantoms, chunking."""

from .chunking import Chunk, check_tiling, chunk_ranges, iter_chunks, num_chunks, reassemble
from .geometry import LaminoGeometry
from .operators import MEMOIZABLE_OPS, OP_NAMES, LaminoOperators
from .phantoms import brain_like, ic_layers, make_phantom, pcb, slab_envelope
from .projector import LaminoProjector, project_direct, simulate_data
from .usfft import (
    USFFT1DPlan,
    USFFT2DPlan,
    dtft1d_direct,
    dtft2d_direct,
    usfft1d_type1,
    usfft1d_type2,
    usfft2d_type1,
    usfft2d_type2,
)

__all__ = [
    "Chunk",
    "check_tiling",
    "chunk_ranges",
    "iter_chunks",
    "num_chunks",
    "reassemble",
    "LaminoGeometry",
    "LaminoOperators",
    "OP_NAMES",
    "MEMOIZABLE_OPS",
    "brain_like",
    "ic_layers",
    "make_phantom",
    "pcb",
    "slab_envelope",
    "LaminoProjector",
    "project_direct",
    "simulate_data",
    "USFFT1DPlan",
    "USFFT2DPlan",
    "dtft1d_direct",
    "dtft2d_direct",
    "usfft1d_type1",
    "usfft1d_type2",
    "usfft2d_type1",
    "usfft2d_type2",
]
