"""Unequally spaced fast Fourier transforms (USFFT / NUFFT).

This module implements the Dutt--Rokhlin / Greengard--Lee Gaussian-gridding
USFFT used by Fourier-based laminography (the ``F_u1D`` and ``F_u2D``
operators of the mLR paper).  Two transform types are provided, in one and
two dimensions:

``type 2``
    uniform samples -> spectrum at *non-uniform* frequencies (the forward
    direction used by the laminography forward model),

``type 1``
    the exact numerical adjoint of the type-2 transform (non-uniform
    spectrum samples -> uniform grid).  Because it applies the transpose of
    the same interpolation operator (same taps, same weights, conjugate
    phases), the pair passes the dot-product test ``<A x, y> == <x, A* y>``
    to rounding error — the property the conjugate-gradient iterations
    inside ADMM require.

Conventions
-----------
Grids are *centered*: a length-``n`` axis has coordinates ``x_j = j - n//2``.
The 1-D type-2 transform of ``f`` at frequency ``s`` (in cycles per ``n``
samples, i.e. integer ``s`` coincides with the centered DFT) is::

    F(s) = n**-0.5 * sum_j f[j] * exp(-2j*pi * s * x_j / n)

The ``n**-0.5`` factor makes the transform unitary when the frequencies
coincide with the integer grid, which keeps the laminography operator norm
O(1) and the CG iteration counts small.

Algorithm (three steps, type 2):

1. divide the input by the inverse transform of the Gaussian window
   (deconvolution in the space domain),
2. zero-pad to an oversampled grid (factor ``oversample``, default 2) and
   take a centered FFT,
3. apply a precomputed *interpolation operator* mapping the fine spectrum to
   the target frequencies: each target gathers its ``2*half_width + 1``
   nearest fine-grid neighbors (per dimension) with Gaussian weights.

Step 3 is materialized at plan-construction time — as a small dense matrix
in 1-D and as one CSR sparse matrix per slice in 2-D — so repeated operator
applications (hundreds per ADMM solve) are pure BLAS/sparse matvecs; this is
the same plan-and-execute structure CuFFT/FINUFFT use.

With oversampling ``m`` and window half-width ``K`` the Gaussian shape
parameter is chosen so truncation and aliasing errors balance, giving a
relative accuracy of roughly ``exp(-K**2 / (4*tau))``: ~2e-6 for ``K = 6``,
~1.5e-5 for the default ``K = 5`` — at or below COMPLEX64 resolution, the
precision the paper's pipeline operates in.  Pass ``half_width=7`` for
double-precision-grade accuracy (~1e-8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

__all__ = [
    "USFFT1DPlan",
    "USFFT2DPlan",
    "usfft1d_type2",
    "usfft1d_type1",
    "usfft2d_type2",
    "usfft2d_type1",
    "dtft1d_direct",
    "dtft2d_direct",
]


def _kernel_tau(half_width: int, oversample: int) -> float:
    """Gaussian shape parameter balancing truncation and aliasing error.

    Solves ``K**2 / (4*tau) == 4*pi**2*tau*(1 - 1/m)`` for ``tau``.
    """
    if half_width < 1:
        raise ValueError(f"half_width must be >= 1, got {half_width}")
    if oversample < 2:
        raise ValueError(f"oversample must be >= 2, got {oversample}")
    return half_width / (4.0 * math.pi * math.sqrt(1.0 - 1.0 / oversample))


def _space_correction(n: int, fine_n: int, tau: float) -> np.ndarray:
    """Reciprocal window transform ``1 / psi_hat(x_j / fine_n)`` on the grid.

    ``psi_hat(nu) = sqrt(4*pi*tau) * exp(-4*pi**2*tau*nu**2)`` is the
    continuous Fourier transform of the frequency-domain Gaussian tap window
    ``psi(t) = exp(-t**2 / (4*tau))``.
    """
    x = np.arange(n, dtype=np.float64) - n // 2
    nu = x / fine_n
    psi_hat = math.sqrt(4.0 * math.pi * tau) * np.exp(-4.0 * math.pi**2 * tau * nu**2)
    return 1.0 / psi_hat


def _centered_fft(a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    return np.fft.fftshift(
        np.fft.fftn(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes
    )


def _centered_adjoint_fft(a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    # The adjoint of the (unnormalized) DFT matrix is M * IDFT; numpy's ifftn
    # already includes the 1/M factor, so multiply it back.
    scale = float(np.prod([a.shape[ax] for ax in axes]))
    return (
        np.fft.fftshift(
            np.fft.ifftn(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes
        )
        * scale
    )


def _tap_geometry(coords: np.ndarray, oversample: int, half_width: int, tau: float, fine_n: int):
    """Per-target tap indices (wrapped onto the fine grid) and Gaussian weights."""
    centers = oversample * np.asarray(coords, dtype=np.float64)
    nearest = np.rint(centers).astype(np.int64)
    offsets = np.arange(-half_width, half_width + 1)
    idx = nearest[..., None] + offsets
    t = centers[..., None] - idx
    w = np.exp(-(t**2) / (4.0 * tau))
    return np.mod(idx + fine_n // 2, fine_n), w


@dataclass
class USFFT1DPlan:
    """Precomputed geometry for a 1-D USFFT at fixed frequencies.

    Parameters
    ----------
    n:
        Length of the uniform axis (even).
    freqs:
        Target frequencies, shape ``(ns,)``, in cycles per ``n`` samples
        (integer values coincide with centered-DFT bins).  Values outside
        ``[-n/2, n/2)`` are evaluated on the periodic extension.
    half_width, oversample:
        Gridding kernel controls; see the module docstring for the
        accuracy/cost trade-off.

    The interpolation step is stored as the dense matrix ``interp`` of shape
    ``(ns, fine_n)`` (small: taps are the only nonzeros but dense matmul
    wins at these sizes), so both transform directions are single GEMMs
    around an FFT.
    """

    n: int
    freqs: np.ndarray
    half_width: int = 5
    oversample: int = 2

    fine_n: int = field(init=False)
    tau: float = field(init=False)
    corr: np.ndarray = field(init=False)
    interp: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.freqs = np.asarray(self.freqs, dtype=np.float64).ravel()
        if self.n < 2 or self.n % 2:
            raise ValueError(f"n must be even and >= 2, got {self.n}")
        self.fine_n = self.oversample * self.n
        self.tau = _kernel_tau(self.half_width, self.oversample)
        self.corr = _space_correction(self.n, self.fine_n, self.tau)
        idx, w = _tap_geometry(
            self.freqs, self.oversample, self.half_width, self.tau, self.fine_n
        )
        interp = np.zeros((self.ns, self.fine_n), dtype=np.float64)
        np.add.at(interp, (np.arange(self.ns)[:, None], idx), w)
        self.interp = interp

    @property
    def ns(self) -> int:
        return int(self.freqs.shape[0])


def usfft1d_type2(f: np.ndarray, plan: USFFT1DPlan, axis: int = -1) -> np.ndarray:
    """Uniform -> non-uniform 1-D transform along ``axis``.

    The same frequency set (from ``plan``) is applied to every 1-D slice of
    ``f`` along ``axis``; the output replaces that axis with ``plan.ns``.
    """
    f = np.asarray(f)
    if f.shape[axis] != plan.n:
        raise ValueError(f"axis length {f.shape[axis]} != plan.n {plan.n}")
    moved = np.moveaxis(f, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    work = moved * plan.corr.astype(rdtype)
    pad_lo = (plan.fine_n - plan.n) // 2
    padded = np.zeros(moved.shape[:-1] + (plan.fine_n,), dtype=_complex_dtype(moved.dtype))
    padded[..., pad_lo : pad_lo + plan.n] = work
    spec = _centered_fft(padded, axes=(-1,))
    out = spec @ plan.interp.T.astype(rdtype)
    out *= 1.0 / math.sqrt(plan.n)
    return np.moveaxis(out, -1, axis)


def usfft1d_type1(F: np.ndarray, plan: USFFT1DPlan, axis: int = -1) -> np.ndarray:
    """Exact adjoint of :func:`usfft1d_type2` (non-uniform -> uniform)."""
    F = np.asarray(F)
    if F.shape[axis] != plan.ns:
        raise ValueError(f"axis length {F.shape[axis]} != plan.ns {plan.ns}")
    moved = np.moveaxis(F, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    spec = moved @ plan.interp.astype(rdtype)  # adjoint of the gather GEMM
    grid = _centered_adjoint_fft(spec, axes=(-1,))
    pad_lo = (plan.fine_n - plan.n) // 2
    out = grid[..., pad_lo : pad_lo + plan.n] * plan.corr.astype(rdtype)
    out *= 1.0 / math.sqrt(plan.n)
    return np.moveaxis(out, -1, axis)


@dataclass
class USFFT2DPlan:
    """Precomputed geometry for per-slice 2-D USFFTs.

    Each of the ``nslices`` slices has its own set of ``npts`` target
    frequency points (shape ``(nslices, npts, 2)``); this matches the
    laminography ``F_u2D`` operator where the in-plane frequency samples
    depend on the detector row frequency.

    The separable Gaussian interpolation of slice ``i`` is materialized as a
    CSR matrix ``interp[i]`` of shape ``(npts, fine0*fine1)`` with
    ``(2*half_width + 1)**2`` nonzeros per row; the type-1 direction applies
    its (lazy, no-copy) transpose.
    """

    shape: tuple[int, int]
    points: np.ndarray
    half_width: int = 5
    oversample: int = 2

    fine_shape: tuple[int, int] = field(init=False)
    tau: float = field(init=False)
    corr: np.ndarray = field(init=False)
    interp: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n0, n1 = self.shape
        if n0 % 2 or n1 % 2 or n0 < 2 or n1 < 2:
            raise ValueError(f"shape must be even and >= 2, got {self.shape}")
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 3 or pts.shape[-1] != 2:
            raise ValueError(f"points must have shape (nslices, npts, 2), got {pts.shape}")
        self.points = pts
        self.fine_shape = (self.oversample * n0, self.oversample * n1)
        self.tau = _kernel_tau(self.half_width, self.oversample)
        c0 = _space_correction(n0, self.fine_shape[0], self.tau)
        c1 = _space_correction(n1, self.fine_shape[1], self.tau)
        self.corr = np.outer(c0, c1)
        f0, f1 = self.fine_shape
        nfine = f0 * f1
        taps = 2 * self.half_width + 1
        npts = pts.shape[1]
        self.interp = []
        row_ptr = np.arange(npts + 1, dtype=np.int32) * (taps * taps)
        for i in range(pts.shape[0]):
            idx0, w0 = _tap_geometry(
                pts[i, :, 0], self.oversample, self.half_width, self.tau, f0
            )
            idx1, w1 = _tap_geometry(
                pts[i, :, 1], self.oversample, self.half_width, self.tau, f1
            )
            cols = (idx0[:, :, None] * f1 + idx1[:, None, :]).ravel().astype(np.int32)
            data = (w0[:, :, None] * w1[:, None, :]).ravel()
            mat = sparse.csr_matrix(
                (data, cols, row_ptr), shape=(npts, nfine), copy=False
            )
            self.interp.append(mat)

    @property
    def nslices(self) -> int:
        return int(self.points.shape[0])

    @property
    def npts(self) -> int:
        return int(self.points.shape[1])


def _slice_range(plan: USFFT2DPlan, slices: slice | None) -> range:
    if slices is None:
        return range(plan.nslices)
    start, stop, step = slices.indices(plan.nslices)
    if step != 1:
        raise ValueError("only contiguous slice selections are supported")
    return range(start, stop)


def usfft2d_type2(
    f: np.ndarray, plan: USFFT2DPlan, slices: slice | None = None
) -> np.ndarray:
    """Per-slice uniform -> non-uniform 2-D transform.

    Parameters
    ----------
    f:
        Array of shape ``(nslices, n0, n1)`` (or a subset of slices when
        ``slices`` is given); each slice is transformed at its own points.
    slices:
        Optional contiguous range selecting which rows of the plan ``f``
        corresponds to (used by chunked execution).

    Returns
    -------
    Array of shape ``(len(slices), npts)``.
    """
    f = np.asarray(f)
    rows = _slice_range(plan, slices)
    nsl = len(rows)
    if f.shape != (nsl, *plan.shape):
        raise ValueError(f"expected f shape {(nsl, *plan.shape)}, got {f.shape}")
    cdtype = _complex_dtype(f.dtype)
    corr = plan.corr.astype(_real_dtype(f.dtype))
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    lo0, lo1 = (f0 - n0) // 2, (f1 - n1) // 2
    padded = np.zeros((nsl, f0, f1), dtype=cdtype)
    padded[:, lo0 : lo0 + n0, lo1 : lo1 + n1] = f * corr
    spec = _centered_fft(padded, axes=(-2, -1)).reshape(nsl, f0 * f1)
    out = np.empty((nsl, plan.npts), dtype=spec.dtype)
    for j, i in enumerate(rows):
        out[j] = plan.interp[i] @ spec[j]
    out *= 1.0 / math.sqrt(n0 * n1)
    return out.astype(cdtype, copy=False)


def usfft2d_type1(
    F: np.ndarray, plan: USFFT2DPlan, slices: slice | None = None
) -> np.ndarray:
    """Exact adjoint of :func:`usfft2d_type2` (non-uniform -> uniform)."""
    F = np.asarray(F)
    rows = _slice_range(plan, slices)
    nsl = len(rows)
    if F.shape != (nsl, plan.npts):
        raise ValueError(f"expected F shape {(nsl, plan.npts)}, got {F.shape}")
    cdtype = _complex_dtype(F.dtype)
    corr = plan.corr.astype(_real_dtype(F.dtype))
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    lo0, lo1 = (f0 - n0) // 2, (f1 - n1) // 2
    spec = np.empty((nsl, f0 * f1), dtype=np.result_type(F.dtype, np.complex64))
    for j, i in enumerate(rows):
        # .T of a CSR matrix is a lazy CSC view: this is the exact transpose
        # of the gather, i.e. the Gaussian scatter, at matvec speed.
        spec[j] = plan.interp[i].T @ F[j]
    grid = _centered_adjoint_fft(spec.reshape(nsl, f0, f1), axes=(-2, -1))
    out = grid[:, lo0 : lo0 + n0, lo1 : lo1 + n1] * corr
    out *= 1.0 / math.sqrt(n0 * n1)
    return out.astype(cdtype, copy=False)


def dtft1d_direct(f: np.ndarray, freqs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Brute-force reference for :func:`usfft1d_type2` (O(n * ns))."""
    f = np.asarray(f)
    freqs = np.asarray(freqs, dtype=np.float64).ravel()
    n = f.shape[axis]
    x = np.arange(n) - n // 2
    kernel = np.exp(-2j * np.pi * np.outer(freqs, x) / n) / math.sqrt(n)
    moved = np.moveaxis(f, axis, -1)
    out = moved @ kernel.T.astype(np.result_type(moved.dtype, np.complex128))
    return np.moveaxis(out, -1, axis)


def dtft2d_direct(f: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Brute-force reference for :func:`usfft2d_type2`.

    ``f`` has shape ``(nslices, n0, n1)``, ``points`` shape
    ``(nslices, npts, 2)``.
    """
    f = np.asarray(f)
    points = np.asarray(points, dtype=np.float64)
    nsl, n0, n1 = f.shape
    x0 = np.arange(n0) - n0 // 2
    x1 = np.arange(n1) - n1 // 2
    out = np.empty((nsl, points.shape[1]), dtype=np.complex128)
    for i in range(nsl):
        ph0 = np.exp(-2j * np.pi * np.outer(points[i, :, 0], x0) / n0)
        ph1 = np.exp(-2j * np.pi * np.outer(points[i, :, 1], x1) / n1)
        out[i] = np.einsum("pa,ab,pb->p", ph0, f[i], ph1)
    return out / math.sqrt(n0 * n1)


def _complex_dtype(dtype: np.dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt in (np.complex64, np.float32):
        return np.dtype(np.complex64)
    return np.dtype(np.complex128)


def _real_dtype(dtype: np.dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt in (np.complex64, np.float32):
        return np.dtype(np.float32)
    return np.dtype(np.float64)
