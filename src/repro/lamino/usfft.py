"""Unequally spaced fast Fourier transforms (USFFT / NUFFT).

This module implements the Dutt--Rokhlin / Greengard--Lee Gaussian-gridding
USFFT used by Fourier-based laminography (the ``F_u1D`` and ``F_u2D``
operators of the mLR paper).  Two transform types are provided, in one and
two dimensions:

``type 2``
    uniform samples -> spectrum at *non-uniform* frequencies (the forward
    direction used by the laminography forward model),

``type 1``
    the exact numerical adjoint of the type-2 transform (non-uniform
    spectrum samples -> uniform grid).  Because it applies the transpose of
    the same interpolation operator (same taps, same weights, conjugate
    phases), the pair passes the dot-product test ``<A x, y> == <x, A* y>``
    to rounding error — the property the conjugate-gradient iterations
    inside ADMM require.

Conventions
-----------
Grids are *centered*: a length-``n`` axis has coordinates ``x_j = j - n//2``.
The 1-D type-2 transform of ``f`` at frequency ``s`` (in cycles per ``n``
samples, i.e. integer ``s`` coincides with the centered DFT) is::

    F(s) = n**-0.5 * sum_j f[j] * exp(-2j*pi * s * x_j / n)

The ``n**-0.5`` factor makes the transform unitary when the frequencies
coincide with the integer grid, which keeps the laminography operator norm
O(1) and the CG iteration counts small.

Algorithm (three steps, type 2):

1. divide the input by the inverse transform of the Gaussian window
   (deconvolution in the space domain),
2. zero-pad to an oversampled grid (factor ``oversample``, default 2) and
   take a centered FFT,
3. apply a precomputed *interpolation operator* mapping the fine spectrum to
   the target frequencies: each target gathers its ``2*half_width + 1``
   nearest fine-grid neighbors (per dimension) with Gaussian weights.

Step 3 is materialized at plan-construction time — as a small dense matrix
in 1-D and as one *block-diagonal* CSR sparse matrix per contiguous slice
range in 2-D — so repeated operator applications (hundreds per ADMM solve)
are pure BLAS/sparse matvecs; this is the same plan-and-execute structure
CuFFT/FINUFFT use.

Execution discipline (the hot-path contract every executor relies on):

- FFTs run through ``scipy.fft`` (pocketfft) by default, which preserves
  ``complex64`` end to end and accepts a ``workers`` thread count; see
  :func:`configure_fft` / :func:`fft_backend`.
- dtype-specific casts of the interpolation operator and the space-domain
  correction are cached *on the plan*, so steady-state sweeps never re-cast
  a full matrix.
- the padded/oversampled workspace is preallocated per plan (and per
  thread), so steady-state sweeps perform no large allocations before the
  FFT.
- a chunk's per-slice 2-D interpolations are applied as **one** SpMV with a
  cached block-diagonal CSR (and its pre-transposed scatter for type 1)
  instead of a Python loop of ``nslices`` matvecs.

:func:`reference_kernels` switches the module to the pre-vectorization
kernels (``numpy.fft``, per-slice interpolation loops, per-call dtype
casts).  It exists so ``benchmarks/perf`` can measure the optimized path
against an honest baseline, and so tests can assert the two agree.

With oversampling ``m`` and window half-width ``K`` the Gaussian shape
parameter is chosen so truncation and aliasing errors balance, giving a
relative accuracy of roughly ``exp(-K**2 / (4*tau))``: ~2e-6 for ``K = 6``,
~1.5e-5 for the default ``K = 5`` — at or below COMPLEX64 resolution, the
precision the paper's pipeline operates in.  Pass ``half_width=7`` for
double-precision-grade accuracy (~1e-8).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np
from scipy import fft as _sfft
from scipy import sparse

from ..obs import runtime as _obs

__all__ = [
    "USFFT1DPlan",
    "USFFT2DPlan",
    "usfft1d_type2",
    "usfft1d_type1",
    "usfft2d_type2",
    "usfft2d_type1",
    "dtft1d_direct",
    "dtft2d_direct",
    "configure_fft",
    "fft_backend",
    "fft_config",
    "reference_kernels",
    "centered_fft2",
    "centered_ifft2",
]


# -- FFT execution configuration -------------------------------------------------------

#: Module-wide FFT execution knobs.  ``backend`` selects the FFT library
#: ("scipy" = pocketfft, complex64-native, threaded; "numpy" = np.fft),
#: ``workers`` is scipy's thread count (-1 = all cores), and ``reference``
#: routes the USFFT entry points to the pre-vectorization kernels.
_FFT = {"backend": "scipy", "workers": -1, "reference": False}

_BACKENDS = ("scipy", "numpy")


def fft_config() -> dict:
    """A snapshot of the current FFT execution configuration."""
    return dict(_FFT)


def configure_fft(
    backend: str | None = None,
    workers: int | None = None,
    reference: bool | None = None,
) -> dict:
    """Set module-wide FFT execution knobs; returns the previous state.

    Parameters
    ----------
    backend:
        ``"scipy"`` (default — pocketfft: preserves ``complex64``, supports
        threading) or ``"numpy"``.
    workers:
        Thread count for the scipy backend (``-1`` = all cores).
    reference:
        Route the USFFT entry points to the pre-vectorization kernels
        (numpy FFT, per-slice loops, per-call casts).  Benchmark baseline.
    """
    prev = dict(_FFT)
    if backend is not None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        _FFT["backend"] = backend
    if workers is not None:
        _FFT["workers"] = int(workers)
    if reference is not None:
        _FFT["reference"] = bool(reference)
    return prev


@contextmanager
def fft_backend(
    backend: str | None = None,
    workers: int | None = None,
    reference: bool | None = None,
):
    """Temporarily override the FFT execution configuration."""
    prev = configure_fft(backend=backend, workers=workers, reference=reference)
    try:
        yield
    finally:
        _FFT.update(prev)


@contextmanager
def reference_kernels():
    """Run under the pre-vectorization kernels (the measured baseline of
    ``benchmarks/perf``): ``numpy.fft``, per-slice 2-D interpolation loops,
    and per-call dtype casts of the interpolation operators."""
    with fft_backend(backend="numpy", reference=True):
        yield


def _kernel_tau(half_width: int, oversample: int) -> float:
    """Gaussian shape parameter balancing truncation and aliasing error.

    Solves ``K**2 / (4*tau) == 4*pi**2*tau*(1 - 1/m)`` for ``tau``.
    """
    if half_width < 1:
        raise ValueError(f"half_width must be >= 1, got {half_width}")
    if oversample < 2:
        raise ValueError(f"oversample must be >= 2, got {oversample}")
    return half_width / (4.0 * math.pi * math.sqrt(1.0 - 1.0 / oversample))


def _space_correction(n: int, fine_n: int, tau: float) -> np.ndarray:
    """Reciprocal window transform ``1 / psi_hat(x_j / fine_n)`` on the grid.

    ``psi_hat(nu) = sqrt(4*pi*tau) * exp(-4*pi**2*tau*nu**2)`` is the
    continuous Fourier transform of the frequency-domain Gaussian tap window
    ``psi(t) = exp(-t**2 / (4*tau))``.
    """
    x = np.arange(n, dtype=np.float64) - n // 2
    nu = x / fine_n
    psi_hat = math.sqrt(4.0 * math.pi * tau) * np.exp(-4.0 * math.pi**2 * tau * nu**2)
    return 1.0 / psi_hat


def _fftn_raw(a: np.ndarray, axes: tuple[int, ...], overwrite: bool = False) -> np.ndarray:
    """Unshifted forward FFT on the configured backend.

    The fast USFFT paths absorb the centering shifts into the plan (input
    samples land in ifftshifted positions; the interpolation operator is
    built against the raw output layout), so no ``fftshift`` roll ever runs
    on the hot path.
    """
    if _FFT["backend"] == "scipy":
        return _sfft.fftn(a, axes=axes, workers=_FFT["workers"], overwrite_x=overwrite)
    return np.fft.fftn(a, axes=axes)


def _ifftn_raw(a: np.ndarray, axes: tuple[int, ...], overwrite: bool = False) -> np.ndarray:
    """Unshifted inverse FFT on the configured backend.

    The adjoint's ``M * IDFT`` rescaling is *not* applied here — the fast
    paths fold it into the plan's cached correction array, saving a full
    pass over the fine grid.
    """
    if _FFT["backend"] == "scipy":
        return _sfft.ifftn(a, axes=axes, workers=_FFT["workers"], overwrite_x=overwrite)
    return np.fft.ifftn(a, axes=axes)


def centered_fft2(a: np.ndarray, norm: str = "ortho") -> np.ndarray:
    """Centered 2-D FFT over the last two axes (the detector ``F_2D`` op),
    honoring the module FFT backend/threading configuration."""
    shifted = np.fft.ifftshift(a, axes=(-2, -1))
    if _FFT["backend"] == "scipy":
        spec = _sfft.fft2(
            shifted, axes=(-2, -1), norm=norm, workers=_FFT["workers"], overwrite_x=True
        )
    else:
        spec = np.fft.fft2(shifted, axes=(-2, -1), norm=norm)
    return np.fft.fftshift(spec, axes=(-2, -1))


def centered_ifft2(a: np.ndarray, norm: str = "ortho") -> np.ndarray:
    """Inverse of :func:`centered_fft2` (its adjoint when ``norm='ortho'``)."""
    shifted = np.fft.ifftshift(a, axes=(-2, -1))
    if _FFT["backend"] == "scipy":
        img = _sfft.ifft2(
            shifted, axes=(-2, -1), norm=norm, workers=_FFT["workers"], overwrite_x=True
        )
    else:
        img = np.fft.ifft2(shifted, axes=(-2, -1), norm=norm)
    return np.fft.fftshift(img, axes=(-2, -1))


def _tap_geometry(coords: np.ndarray, oversample: int, half_width: int, tau: float, fine_n: int):
    """Per-target tap indices (wrapped onto the fine grid) and Gaussian weights."""
    centers = oversample * np.asarray(coords, dtype=np.float64)
    nearest = np.rint(centers).astype(np.int64)
    offsets = np.arange(-half_width, half_width + 1)
    idx = nearest[..., None] + offsets
    t = centers[..., None] - idx
    w = np.exp(-(t**2) / (4.0 * tau))
    return np.mod(idx + fine_n // 2, fine_n), w


@dataclass
class USFFT1DPlan:
    """Precomputed geometry for a 1-D USFFT at fixed frequencies.

    Parameters
    ----------
    n:
        Length of the uniform axis (even).
    freqs:
        Target frequencies, shape ``(ns,)``, in cycles per ``n`` samples
        (integer values coincide with centered-DFT bins).  Values outside
        ``[-n/2, n/2)`` are evaluated on the periodic extension.
    half_width, oversample:
        Gridding kernel controls; see the module docstring for the
        accuracy/cost trade-off.

    The interpolation step is stored as the dense matrix ``interp`` of shape
    ``(ns, fine_n)`` (small: taps are the only nonzeros but dense matmul
    wins at these sizes), so both transform directions are single GEMMs
    around an FFT.  Compute-dtype casts of ``interp``/``corr`` are cached on
    the plan (:meth:`interp_for` / :meth:`corr_for`) and the padded
    oversampled workspace is preallocated per thread, so steady-state calls
    re-cast and re-allocate nothing.
    """

    n: int
    freqs: np.ndarray
    half_width: int = 5
    oversample: int = 2

    fine_n: int = field(init=False)
    tau: float = field(init=False)
    corr: np.ndarray = field(init=False)
    interp: np.ndarray = field(init=False)
    _casts: dict = field(init=False, default_factory=dict, repr=False)
    _scratch: threading.local = field(init=False, default_factory=threading.local, repr=False)

    def __post_init__(self) -> None:
        self.freqs = np.asarray(self.freqs, dtype=np.float64).ravel()
        if self.n < 2 or self.n % 2:
            raise ValueError(f"n must be even and >= 2, got {self.n}")
        self.fine_n = self.oversample * self.n
        self.tau = _kernel_tau(self.half_width, self.oversample)
        self.corr = _space_correction(self.n, self.fine_n, self.tau)
        idx, w = _tap_geometry(
            self.freqs, self.oversample, self.half_width, self.tau, self.fine_n
        )
        interp = np.zeros((self.ns, self.fine_n), dtype=np.float64)
        np.add.at(interp, (np.arange(self.ns)[:, None], idx), w)
        self.interp = interp

    @property
    def ns(self) -> int:
        return int(self.freqs.shape[0])

    # -- cached compute-dtype variants -------------------------------------------------

    def corr_for(self, dtype, direction: str = "plain") -> np.ndarray:
        """``corr`` cast to the compute dtype, cached on the plan.

        ``direction="type2"`` folds the transform's ``1/sqrt(n)`` into the
        input correction; ``"type1"`` additionally folds the adjoint's
        ``fine_n`` IDFT rescaling into the output correction — so neither
        transform spends a separate scaling pass over the fine grid.
        """
        key = ("corr", np.dtype(dtype).char, direction)
        out = self._casts.get(key)
        if out is None:
            base = self.corr
            if direction == "type2":
                base = base / math.sqrt(self.n)
            elif direction == "type1":
                base = base * (self.fine_n / math.sqrt(self.n))
            out = base.astype(dtype)
            out.setflags(write=False)
            self._casts[key] = out
        return out

    def interp_for(self, dtype, transpose: bool = False, raw: bool = False) -> np.ndarray:
        """``interp`` (or its transpose) cast to the compute dtype, cached.

        The cast is done to the *complex* compute dtype so the GEMM runs
        natively instead of silently promoting the operand on every call.
        ``raw=True`` returns the variant whose columns are permuted to the
        *unshifted* FFT layout (the fftshift is absorbed into the operator,
        so the hot path never rolls the fine grid).
        """
        key = ("interp", np.dtype(dtype).char, transpose, raw)
        out = self._casts.get(key)
        if out is None:
            base = self.interp
            if raw:
                base = np.roll(base, self.fine_n // 2, axis=1)
            if transpose:
                base = base.T
            out = np.ascontiguousarray(base.astype(dtype))
            out.setflags(write=False)
            self._casts[key] = out
        return out

    def _workspace(self, lead_shape: tuple[int, ...], cdtype) -> np.ndarray:
        """Preallocated zero-padded fine-grid buffer (per thread).

        Only the two half-bands the ifftshifted interior occupies are ever
        written, so the zeroed middle survives across reuses.
        """
        cache = getattr(self._scratch, "bufs", None)
        if cache is None:
            cache = self._scratch.bufs = {}
        key = (lead_shape, np.dtype(cdtype).char)
        buf = cache.get(key)
        if buf is None:
            buf = np.zeros(lead_shape + (self.fine_n,), dtype=cdtype)
            cache[key] = buf
        return buf


def usfft1d_type2(f: np.ndarray, plan: USFFT1DPlan, axis: int = -1) -> np.ndarray:
    """Uniform -> non-uniform 1-D transform along ``axis``.

    The same frequency set (from ``plan``) is applied to every 1-D slice of
    ``f`` along ``axis``; the output replaces that axis with ``plan.ns``.
    """
    f = np.asarray(f)
    if f.shape[axis] != plan.n:
        raise ValueError(f"axis length {f.shape[axis]} != plan.n {plan.n}")
    if _FFT["reference"]:
        return _ref_usfft1d_type2(f, plan, axis)
    moved = np.moveaxis(f, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    cdtype = _complex_dtype(moved.dtype)
    half = plan.n // 2
    corr = plan.corr_for(rdtype, "type2")
    padded = plan._workspace(moved.shape[:-1], cdtype)
    # write the corrected interior directly into its ifftshifted position
    np.multiply(moved[..., :half], corr[:half], out=padded[..., plan.fine_n - half :])
    np.multiply(moved[..., half:], corr[half:], out=padded[..., :half])
    with _obs.span("usfft.fft", xform="1d_type2"):
        spec = _fftn_raw(padded, axes=(-1,))
    with _obs.span("usfft.interp", xform="1d_type2"):
        out = spec @ plan.interp_for(cdtype, transpose=True, raw=True)
    return np.moveaxis(out, -1, axis)


def usfft1d_type1(F: np.ndarray, plan: USFFT1DPlan, axis: int = -1) -> np.ndarray:
    """Exact adjoint of :func:`usfft1d_type2` (non-uniform -> uniform)."""
    F = np.asarray(F)
    if F.shape[axis] != plan.ns:
        raise ValueError(f"axis length {F.shape[axis]} != plan.ns {plan.ns}")
    if _FFT["reference"]:
        return _ref_usfft1d_type1(F, plan, axis)
    moved = np.moveaxis(F, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    cdtype = _complex_dtype(moved.dtype)
    with _obs.span("usfft.interp", xform="1d_type1"):
        spec = moved @ plan.interp_for(cdtype, raw=True)  # adjoint of the gather GEMM
    with _obs.span("usfft.fft", xform="1d_type1"):
        grid = _ifftn_raw(spec, axes=(-1,), overwrite=True)
    half = plan.n // 2
    corr = plan.corr_for(rdtype, "type1")
    out = np.empty(moved.shape[:-1] + (plan.n,), dtype=cdtype)
    # read the interior back out of its ifftshifted position
    np.multiply(grid[..., plan.fine_n - half :], corr[:half], out=out[..., :half])
    np.multiply(grid[..., :half], corr[half:], out=out[..., half:])
    return np.moveaxis(out, -1, axis)


@dataclass
class USFFT2DPlan:
    """Precomputed geometry for per-slice 2-D USFFTs.

    Each of the ``nslices`` slices has its own set of ``npts`` target
    frequency points (shape ``(nslices, npts, 2)``); this matches the
    laminography ``F_u2D`` operator where the in-plane frequency samples
    depend on the detector row frequency.

    The separable Gaussian interpolation of slice ``i`` is materialized as a
    CSR matrix ``interp[i]`` of shape ``(npts, fine0*fine1)`` with
    ``(2*half_width + 1)**2`` nonzeros per row.  The hot path never applies
    these one at a time: :meth:`block_gather` / :meth:`block_scatter`
    assemble (and cache, per contiguous slice range and compute dtype) a
    block-diagonal CSR over the flattened ``(nslices * fine0 * fine1)``
    spectrum, so a whole chunk's interpolation — both the type-2 gather and
    the type-1 scatter — is a single SpMV.
    """

    shape: tuple[int, int]
    points: np.ndarray
    half_width: int = 5
    oversample: int = 2

    fine_shape: tuple[int, int] = field(init=False)
    tau: float = field(init=False)
    corr: np.ndarray = field(init=False)
    interp: list = field(init=False, repr=False)
    _tap_cols: np.ndarray = field(init=False, repr=False)
    _tap_data: np.ndarray = field(init=False, repr=False)
    _casts: dict = field(init=False, default_factory=dict, repr=False)
    _blocks: dict = field(init=False, default_factory=dict, repr=False)
    _scratch: threading.local = field(init=False, default_factory=threading.local, repr=False)

    def __post_init__(self) -> None:
        n0, n1 = self.shape
        if n0 % 2 or n1 % 2 or n0 < 2 or n1 < 2:
            raise ValueError(f"shape must be even and >= 2, got {self.shape}")
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 3 or pts.shape[-1] != 2:
            raise ValueError(f"points must have shape (nslices, npts, 2), got {pts.shape}")
        self.points = pts
        self.fine_shape = (self.oversample * n0, self.oversample * n1)
        self.tau = _kernel_tau(self.half_width, self.oversample)
        c0 = _space_correction(n0, self.fine_shape[0], self.tau)
        c1 = _space_correction(n1, self.fine_shape[1], self.tau)
        self.corr = np.outer(c0, c1)
        f0, f1 = self.fine_shape
        nfine = f0 * f1
        taps = 2 * self.half_width + 1
        nsl, npts = pts.shape[0], pts.shape[1]
        # tap geometry for every slice at once (no per-slice Python loop)
        idx0, w0 = _tap_geometry(pts[..., 0], self.oversample, self.half_width, self.tau, f0)
        idx1, w1 = _tap_geometry(pts[..., 1], self.oversample, self.half_width, self.tau, f1)
        cols = (idx0[..., :, None] * f1 + idx1[..., None, :]).reshape(nsl, -1)
        self._tap_cols = cols.astype(np.int32)
        self._tap_data = (w0[..., :, None] * w1[..., None, :]).reshape(nsl, -1)
        # per-slice CSR views over the shared tap arrays (zero-copy)
        row_ptr = np.arange(npts + 1, dtype=np.int32) * (taps * taps)
        self.interp = [
            sparse.csr_matrix(
                (self._tap_data[i], self._tap_cols[i], row_ptr),
                shape=(npts, nfine),
                copy=False,
            )
            for i in range(nsl)
        ]

    @property
    def nslices(self) -> int:
        return int(self.points.shape[0])

    @property
    def npts(self) -> int:
        return int(self.points.shape[1])

    # -- cached compute-dtype variants -------------------------------------------------

    #: relative tap-weight cutoff for complex64 block operators: a Gaussian
    #: tap this far below the central weight is at single-precision epsilon
    #: (1.2e-7) — its contribution is unrepresentable against the central
    #: tap in complex64 arithmetic — so the c64 operator drops it (~25-30%
    #: of the square stencil's corners).  complex128 blocks keep the full
    #: stencil.
    TAP_PRUNE_REL = 1e-7

    def corr_for(self, dtype, direction: str = "plain") -> np.ndarray:
        """``corr`` cast to the compute dtype, cached on the plan.

        ``direction="type2"`` folds the transform's ``1/sqrt(n0*n1)`` into
        the input correction; ``"type1"`` additionally folds the adjoint's
        ``fine0*fine1`` IDFT rescaling into the output correction.
        """
        key = ("corr", np.dtype(dtype).char, direction)
        out = self._casts.get(key)
        if out is None:
            n0, n1 = self.shape
            base = self.corr
            if direction == "type2":
                base = base / math.sqrt(n0 * n1)
            elif direction == "type1":
                f0, f1 = self.fine_shape
                base = base * (f0 * f1 / math.sqrt(n0 * n1))
            out = base.astype(dtype)
            out.setflags(write=False)
            self._casts[key] = out
        return out

    def block_gather(self, start: int, stop: int, dtype) -> sparse.csr_matrix:
        """Block-diagonal gather CSR for plan rows ``[start, stop)``.

        Shape ``((stop-start) * npts, (stop-start) * fine0 * fine1)``; one
        SpMV of the flattened fine spectrum applies every slice's type-2
        interpolation.  Column indices address the *raw* (unshifted) FFT
        layout — the fftshift is part of the operator.  Cached per (range,
        compute dtype) — chunk grids are fixed for a run, so steady-state
        sweeps build nothing.
        """
        return self._block(start, stop, dtype, scatter=False)

    def block_scatter(self, start: int, stop: int, dtype) -> sparse.csr_matrix:
        """Pre-transposed (CSR, not lazy CSC) adjoint of :meth:`block_gather`."""
        return self._block(start, stop, dtype, scatter=True)

    def _block(self, start: int, stop: int, dtype, scatter: bool) -> sparse.csr_matrix:
        if not (0 <= start <= stop <= self.nslices):
            raise ValueError(f"invalid slice range [{start}, {stop})")
        dt = np.dtype(dtype)
        key = (start, stop, dt.char, scatter)
        mat = self._blocks.get(key)
        if mat is None:
            nsl = stop - start
            f0, f1 = self.fine_shape
            nfine = f0 * f1
            taps2 = (2 * self.half_width + 1) ** 2
            # indptr carries values up to nnz, which dwarfs the column count
            nnz_max = nsl * self.npts * taps2
            idx_dtype = np.int32 if max(nsl * nfine, nnz_max) < 2**31 else np.int64
            # shifted -> raw layout: r = (c + f//2) mod f per axis (the
            # permutation is self-inverse for even sizes)
            c = self._tap_cols[start:stop].astype(idx_dtype, copy=False)
            c0, c1 = c // f1, c % f1
            raw = ((c0 + f0 // 2) % f0) * f1 + (c1 + f1 // 2) % f1
            offs = (np.arange(nsl, dtype=idx_dtype) * nfine)[:, None]
            indices = (raw + offs).reshape(-1)
            data = self._tap_data[start:stop].reshape(-1)
            if dt == np.dtype(np.complex64):
                # prune taps beneath single-precision resolution
                keep = data >= self.TAP_PRUNE_REL * data.max()
                counts = keep.reshape(-1, taps2).sum(axis=1)
                indptr = np.zeros(nsl * self.npts + 1, dtype=idx_dtype)
                np.cumsum(counts, out=indptr[1:])
                indices = indices[keep]
                data = data[keep]
            else:
                indptr = np.arange(nsl * self.npts + 1, dtype=idx_dtype) * taps2
            gather = sparse.csr_matrix(
                (data.astype(dt), indices, indptr),
                shape=(nsl * self.npts, nsl * nfine),
                copy=False,
            )
            gather.sort_indices()
            mat = gather.T.tocsr() if scatter else gather
            self._blocks[key] = mat
        return mat

    def _workspace(self, nsl: int, cdtype) -> np.ndarray:
        """Preallocated zero-padded fine-grid buffer (per thread); only the
        interior ``[lo, lo+n)`` window is ever written."""
        cache = getattr(self._scratch, "bufs", None)
        if cache is None:
            cache = self._scratch.bufs = {}
        key = (nsl, np.dtype(cdtype).char)
        buf = cache.get(key)
        if buf is None:
            buf = np.zeros((nsl, *self.fine_shape), dtype=cdtype)
            cache[key] = buf
        return buf


def _slice_range(plan: USFFT2DPlan, slices: slice | None) -> range:
    if slices is None:
        return range(plan.nslices)
    start, stop, step = slices.indices(plan.nslices)
    if step != 1:
        raise ValueError("only contiguous slice selections are supported")
    return range(start, stop)


def usfft2d_type2(
    f: np.ndarray, plan: USFFT2DPlan, slices: slice | None = None
) -> np.ndarray:
    """Per-slice uniform -> non-uniform 2-D transform.

    Parameters
    ----------
    f:
        Array of shape ``(nslices, n0, n1)`` (or a subset of slices when
        ``slices`` is given); each slice is transformed at its own points.
    slices:
        Optional contiguous range selecting which rows of the plan ``f``
        corresponds to (used by chunked execution).

    Returns
    -------
    Array of shape ``(len(slices), npts)``.
    """
    f = np.asarray(f)
    rows = _slice_range(plan, slices)
    nsl = len(rows)
    if f.shape != (nsl, *plan.shape):
        raise ValueError(f"expected f shape {(nsl, *plan.shape)}, got {f.shape}")
    if _FFT["reference"]:
        return _ref_usfft2d_type2(f, plan, rows)
    cdtype = _complex_dtype(f.dtype)
    corr = plan.corr_for(_real_dtype(f.dtype), "type2")
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    h0, h1 = n0 // 2, n1 // 2
    t0, t1 = f0 - h0, f1 - h1
    padded = plan._workspace(nsl, cdtype)
    # corrected interior written straight into its ifftshifted quadrants
    np.multiply(f[:, :h0, :h1], corr[:h0, :h1], out=padded[:, t0:, t1:])
    np.multiply(f[:, :h0, h1:], corr[:h0, h1:], out=padded[:, t0:, :h1])
    np.multiply(f[:, h0:, :h1], corr[h0:, :h1], out=padded[:, :h0, t1:])
    np.multiply(f[:, h0:, h1:], corr[h0:, h1:], out=padded[:, :h0, :h1])
    with _obs.span("usfft.fft", xform="2d_type2"):
        spec = _fftn_raw(padded, axes=(-2, -1)).reshape(nsl * f0 * f1)
    gather = plan.block_gather(rows.start, rows.stop, cdtype)
    with _obs.span("usfft.interp", xform="2d_type2"):
        out = (gather @ spec).reshape(nsl, plan.npts)
    return out.astype(cdtype, copy=False)


def usfft2d_type1(
    F: np.ndarray, plan: USFFT2DPlan, slices: slice | None = None
) -> np.ndarray:
    """Exact adjoint of :func:`usfft2d_type2` (non-uniform -> uniform)."""
    F = np.asarray(F)
    rows = _slice_range(plan, slices)
    nsl = len(rows)
    if F.shape != (nsl, plan.npts):
        raise ValueError(f"expected F shape {(nsl, plan.npts)}, got {F.shape}")
    if _FFT["reference"]:
        return _ref_usfft2d_type1(F, plan, rows)
    cdtype = _complex_dtype(F.dtype)
    corr = plan.corr_for(_real_dtype(F.dtype), "type1")
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    h0, h1 = n0 // 2, n1 // 2
    t0, t1 = f0 - h0, f1 - h1
    scatter = plan.block_scatter(rows.start, rows.stop, cdtype)
    Fv = np.ascontiguousarray(F, dtype=cdtype).reshape(nsl * plan.npts)
    with _obs.span("usfft.interp", xform="2d_type1"):
        spec = scatter @ Fv  # the whole chunk's Gaussian scatter in one SpMV
    with _obs.span("usfft.fft", xform="2d_type1"):
        grid = _ifftn_raw(spec.reshape(nsl, f0, f1), axes=(-2, -1), overwrite=True)
    out = np.empty((nsl, n0, n1), dtype=cdtype)
    # interior read back out of its ifftshifted quadrants
    np.multiply(grid[:, t0:, t1:], corr[:h0, :h1], out=out[:, :h0, :h1])
    np.multiply(grid[:, t0:, :h1], corr[:h0, h1:], out=out[:, :h0, h1:])
    np.multiply(grid[:, :h0, t1:], corr[h0:, :h1], out=out[:, h0:, :h1])
    np.multiply(grid[:, :h0, :h1], corr[h0:, h1:], out=out[:, h0:, h1:])
    return out


# -- reference (pre-vectorization) kernels ----------------------------------------------
# Verbatim pre-optimization implementations: numpy FFT (with its dtype
# behavior), per-call operator casts, per-slice interpolation loops, fresh
# allocations.  These are the measured baseline of benchmarks/perf and the
# equivalence oracle for the fast path.


def _ref_centered_fft(a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    return np.fft.fftshift(
        np.fft.fftn(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes
    )


def _ref_centered_adjoint_fft(a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    scale = float(np.prod([a.shape[ax] for ax in axes]))
    return (
        np.fft.fftshift(
            np.fft.ifftn(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes
        )
        * scale
    )


def _ref_usfft1d_type2(f: np.ndarray, plan: USFFT1DPlan, axis: int) -> np.ndarray:
    moved = np.moveaxis(f, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    work = moved * plan.corr.astype(rdtype)
    pad_lo = (plan.fine_n - plan.n) // 2
    padded = np.zeros(moved.shape[:-1] + (plan.fine_n,), dtype=_complex_dtype(moved.dtype))
    padded[..., pad_lo : pad_lo + plan.n] = work
    spec = _ref_centered_fft(padded, axes=(-1,))
    out = spec @ plan.interp.T.astype(rdtype)
    out *= 1.0 / math.sqrt(plan.n)
    return np.moveaxis(out, -1, axis)


def _ref_usfft1d_type1(F: np.ndarray, plan: USFFT1DPlan, axis: int) -> np.ndarray:
    moved = np.moveaxis(F, axis, -1)
    rdtype = _real_dtype(moved.dtype)
    spec = moved @ plan.interp.astype(rdtype)
    grid = _ref_centered_adjoint_fft(spec, axes=(-1,))
    pad_lo = (plan.fine_n - plan.n) // 2
    out = grid[..., pad_lo : pad_lo + plan.n] * plan.corr.astype(rdtype)
    out *= 1.0 / math.sqrt(plan.n)
    return np.moveaxis(out, -1, axis)


def _ref_usfft2d_type2(f: np.ndarray, plan: USFFT2DPlan, rows: range) -> np.ndarray:
    nsl = len(rows)
    cdtype = _complex_dtype(f.dtype)
    corr = plan.corr.astype(_real_dtype(f.dtype))
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    lo0, lo1 = (f0 - n0) // 2, (f1 - n1) // 2
    padded = np.zeros((nsl, f0, f1), dtype=cdtype)
    padded[:, lo0 : lo0 + n0, lo1 : lo1 + n1] = f * corr
    spec = _ref_centered_fft(padded, axes=(-2, -1)).reshape(nsl, f0 * f1)
    out = np.empty((nsl, plan.npts), dtype=spec.dtype)
    for j, i in enumerate(rows):
        out[j] = plan.interp[i] @ spec[j]
    out *= 1.0 / math.sqrt(n0 * n1)
    return out.astype(cdtype, copy=False)


def _ref_usfft2d_type1(F: np.ndarray, plan: USFFT2DPlan, rows: range) -> np.ndarray:
    nsl = len(rows)
    cdtype = _complex_dtype(F.dtype)
    corr = plan.corr.astype(_real_dtype(F.dtype))
    n0, n1 = plan.shape
    f0, f1 = plan.fine_shape
    lo0, lo1 = (f0 - n0) // 2, (f1 - n1) // 2
    spec = np.empty((nsl, f0 * f1), dtype=np.result_type(F.dtype, np.complex64))
    for j, i in enumerate(rows):
        # .T of a CSR matrix is a lazy CSC view: the exact transpose of the
        # gather, i.e. the Gaussian scatter, at matvec speed.
        spec[j] = plan.interp[i].T @ F[j]
    grid = _ref_centered_adjoint_fft(spec.reshape(nsl, f0, f1), axes=(-2, -1))
    out = grid[:, lo0 : lo0 + n0, lo1 : lo1 + n1] * corr
    out *= 1.0 / math.sqrt(n0 * n1)
    return out.astype(cdtype, copy=False)


def dtft1d_direct(f: np.ndarray, freqs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Brute-force reference for :func:`usfft1d_type2` (O(n * ns))."""
    f = np.asarray(f)
    freqs = np.asarray(freqs, dtype=np.float64).ravel()
    n = f.shape[axis]
    x = np.arange(n) - n // 2
    kernel = np.exp(-2j * np.pi * np.outer(freqs, x) / n) / math.sqrt(n)
    moved = np.moveaxis(f, axis, -1)
    # the brute-force reference is deliberately full-precision
    # analysis: ignore[dtype-widen]
    out = moved @ kernel.T.astype(np.result_type(moved.dtype, np.complex128))
    return np.moveaxis(out, -1, axis)


def dtft2d_direct(f: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Brute-force reference for :func:`usfft2d_type2`.

    ``f`` has shape ``(nslices, n0, n1)``, ``points`` shape
    ``(nslices, npts, 2)``.
    """
    f = np.asarray(f)
    points = np.asarray(points, dtype=np.float64)
    nsl, n0, n1 = f.shape
    x0 = np.arange(n0) - n0 // 2
    x1 = np.arange(n1) - n1 // 2
    out = np.empty((nsl, points.shape[1]), dtype=np.complex128)  # analysis: ignore[dtype-widen]
    for i in range(nsl):
        ph0 = np.exp(-2j * np.pi * np.outer(points[i, :, 0], x0) / n0)
        ph1 = np.exp(-2j * np.pi * np.outer(points[i, :, 1], x1) / n1)
        out[i] = np.einsum("pa,ab,pb->p", ph0, f[i], ph1)
    return out / math.sqrt(n0 * n1)


def _complex_dtype(dtype: np.dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt in (np.complex64, np.float32):
        return np.dtype(np.complex64)
    return np.dtype(np.complex128)


def _real_dtype(dtype: np.dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt in (np.complex64, np.float32):
        return np.dtype(np.float32)
    return np.dtype(np.float64)
