"""Laminography acquisition geometry.

A laminography scan rotates a flat sample about an axis *tilted* by the
laminography angle ``phi`` relative to the beam; ``phi = 90°`` degenerates to
conventional parallel-beam tomography and ``phi = 0°`` carries no vertical
information (the classic missing-cone problem the paper's TV regularization
addresses).

By the Fourier-slice theorem the 2-D detector spectrum of the projection at
rotation angle ``theta`` samples the 3-D volume spectrum on the plane spanned
by the detector frequency axes

    e1(theta) = ( cos(theta),           sin(theta),          0        )
    e2(theta) = (-cos(phi)*sin(theta),  cos(phi)*cos(theta), sin(phi) )

in ``(x, y, z)`` coordinates, i.e. a detector frequency ``(xi, eta)`` maps to
the 3-D frequency ``k = xi*e1 + eta*e2``.  Crucially ``k_z = eta*sin(phi)``
depends only on ``eta``, which is what lets the 3-D transform factor into the
paper's ``F_u1D`` (1-D along z, frequencies ``eta*sin(phi)``) followed by
``F_u2D`` (2-D in-plane, frequencies depending on ``theta, xi, eta``).

Axis conventions match the paper: a volume ``u`` has shape ``(n1, n0, n2)``
where axis 0 is ``x``, axis 1 is the vertical ``z`` (the axis ``F_u1D``
transforms), and axis 2 is ``y``.  Projections ``d`` have shape
``(n_angles, h, w)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LaminoGeometry"]


@dataclass(frozen=True)
class LaminoGeometry:
    """Immutable description of a laminography scan.

    Parameters
    ----------
    vol_shape:
        Volume shape ``(n1, n0, n2)`` = (x, z, y); all axes must be even.
    n_angles:
        Number of equally spaced rotation angles over ``[0, 2*pi)``.
    det_shape:
        Detector shape ``(h, w)`` (rows, columns); both even.
    tilt_deg:
        Laminography angle ``phi`` in degrees; ``90`` is tomography.
    """

    vol_shape: tuple[int, int, int]
    n_angles: int
    det_shape: tuple[int, int]
    tilt_deg: float = 61.0

    def __post_init__(self) -> None:
        n1, n0, n2 = self.vol_shape
        h, w = self.det_shape
        for name, v in (("n1", n1), ("n0", n0), ("n2", n2), ("h", h), ("w", w)):
            if v < 2 or v % 2:
                raise ValueError(f"{name} must be even and >= 2, got {v}")
        if self.n_angles < 1:
            raise ValueError(f"n_angles must be >= 1, got {self.n_angles}")
        if not (0.0 < self.tilt_deg <= 90.0):
            raise ValueError(f"tilt_deg must be in (0, 90], got {self.tilt_deg}")

    # -- cached derived quantities ------------------------------------------------

    @property
    def phi(self) -> float:
        """Laminography angle in radians."""
        return math.radians(self.tilt_deg)

    @property
    def angles(self) -> np.ndarray:
        """Rotation angles theta, shape ``(n_angles,)``, over ``[0, 2*pi)``."""
        return np.linspace(0.0, 2.0 * math.pi, self.n_angles, endpoint=False)

    @property
    def data_shape(self) -> tuple[int, int, int]:
        """Shape of the projection stack ``(n_angles, h, w)``."""
        return (self.n_angles, *self.det_shape)

    def detector_freqs(self) -> tuple[np.ndarray, np.ndarray]:
        """Centered integer detector frequencies ``(eta, xi)``."""
        h, w = self.det_shape
        eta = np.arange(h, dtype=np.float64) - h // 2
        xi = np.arange(w, dtype=np.float64) - w // 2
        return eta, xi

    def z_freqs(self) -> np.ndarray:
        """``F_u1D`` target frequencies along z: ``eta * sin(phi)``, shape (h,)."""
        eta, _ = self.detector_freqs()
        return eta * math.sin(self.phi)

    def inplane_points(self) -> np.ndarray:
        """``F_u2D`` target points, shape ``(h, n_angles * w, 2)``.

        Row ``i`` (detector frequency ``eta_i``) holds the in-plane frequency
        samples ``(k_x, k_y)`` for every ``(theta, xi)`` pair, flattened with
        theta-major order so the result reshapes to ``(h, n_angles, w, 2)``.
        """
        eta, xi = self.detector_freqs()
        theta = self.angles
        cos_t = np.cos(theta)[:, None]
        sin_t = np.sin(theta)[:, None]
        cphi = math.cos(self.phi)
        # (n_angles, w) in-plane components for each eta via broadcasting.
        kx = xi[None, :] * cos_t  # eta-independent part
        ky = xi[None, :] * sin_t
        h = self.det_shape[0]
        pts = np.empty((h, self.n_angles, len(xi), 2), dtype=np.float64)
        for i, e in enumerate(eta):
            pts[i, ..., 0] = kx - e * cphi * sin_t
            pts[i, ..., 1] = ky + e * cphi * cos_t
        return pts.reshape(h, self.n_angles * len(xi), 2)

    def beam_direction(self, theta: float) -> np.ndarray:
        """Unit beam (integration) direction in ``(x, y, z)`` coordinates."""
        sphi, cphi = math.sin(self.phi), math.cos(self.phi)
        return np.array(
            [sphi * math.sin(theta), -sphi * math.cos(theta), cphi], dtype=np.float64
        )

    def detector_axes(self, theta: float) -> tuple[np.ndarray, np.ndarray]:
        """Detector basis ``(e1, e2)`` in ``(x, y, z)`` coordinates."""
        st, ct = math.sin(theta), math.cos(theta)
        cphi, sphi = math.cos(self.phi), math.sin(self.phi)
        e1 = np.array([ct, st, 0.0])
        e2 = np.array([-cphi * st, cphi * ct, sphi])
        return e1, e2

    def with_scale(self, factor: float) -> "LaminoGeometry":
        """Uniformly rescaled copy (used to map paper-scale configs to
        simulation-scale ones); all dimensions are rounded to even ints."""

        def ev(v: float) -> int:
            r = max(2, int(round(v)))
            return r + (r % 2)

        n1, n0, n2 = self.vol_shape
        h, w = self.det_shape
        return LaminoGeometry(
            vol_shape=(ev(n1 * factor), ev(n0 * factor), ev(n2 * factor)),
            n_angles=max(1, int(round(self.n_angles * factor))),
            det_shape=(ev(h * factor), ev(w * factor)),
            tilt_deg=self.tilt_deg,
        )
