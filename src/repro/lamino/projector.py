"""High-level laminography projector plus a direct ray-traced reference.

:class:`LaminoProjector` is the user-facing forward/adjoint pair built on the
Fourier operator stack (:mod:`repro.lamino.operators`).  ``project_direct``
implements the same physics by brute-force ray integration through the
volume; it is orders of magnitude slower and exists to validate the Fourier
model (the two agree up to a global scale factor and the gridding/
interpolation error — see ``tests/lamino/test_projector.py``).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .geometry import LaminoGeometry
from .operators import LaminoOperators

__all__ = ["LaminoProjector", "project_direct", "simulate_data"]


class LaminoProjector:
    """Forward/adjoint laminography on top of the USFFT operator stack."""

    def __init__(self, geometry: LaminoGeometry, **op_kwargs) -> None:
        self.geometry = geometry
        self.ops = LaminoOperators(geometry, **op_kwargs)

    def forward(self, u: np.ndarray) -> np.ndarray:
        """Project a volume to the (complex) detector stack ``L u``."""
        if u.shape != self.geometry.vol_shape:
            raise ValueError(
                f"volume shape {u.shape} != geometry {self.geometry.vol_shape}"
            )
        return self.ops.forward(u)

    def adjoint(self, d: np.ndarray) -> np.ndarray:
        """Backproject a detector stack: ``L* d``."""
        if d.shape != self.geometry.data_shape:
            raise ValueError(
                f"data shape {d.shape} != geometry {self.geometry.data_shape}"
            )
        return self.ops.adjoint(d)

    def normal(self, u: np.ndarray) -> np.ndarray:
        """``L* L u`` — the Gram operator CG iterates with."""
        return self.adjoint(self.forward(u))


def project_direct(
    u: np.ndarray,
    geometry: LaminoGeometry,
    supersample: int = 1,
) -> np.ndarray:
    """Ray-traced reference projector (slow; for validation and baselines).

    For each angle the volume is sampled along the tilted beam direction with
    trilinear interpolation and summed, which is the discrete counterpart of
    the line-integral forward model the Fourier factorization implements.
    """
    n1, n0, n2 = geometry.vol_shape
    nth, h, w = geometry.data_shape
    out = np.zeros((nth, h, w), dtype=np.float64)
    # Integration span long enough to cross the volume at any tilt.
    nt = supersample * int(np.ceil(np.sqrt(n0**2 + max(n1, n2) ** 2)))
    t = (np.arange(nt) - nt / 2) / supersample
    p = np.arange(w, dtype=np.float64) - w // 2  # column coordinate (along e1)
    q = np.arange(h, dtype=np.float64) - h // 2  # row coordinate (along e2)
    uf = np.asarray(u, dtype=np.float64)
    for k, theta in enumerate(geometry.angles):
        e1, e2 = geometry.detector_axes(theta)
        b = geometry.beam_direction(theta)
        # Physical (x, y, z) position of sample (q, p, t); the voxel with
        # index i sits at coordinate i - n//2, matching the centered grids
        # of the Fourier model.
        X = (
            p[None, :, None] * e1[0]
            + q[:, None, None] * e2[0]
            + t[None, None, :] * b[0]
            + n1 // 2
        )
        Y = (
            p[None, :, None] * e1[1]
            + q[:, None, None] * e2[1]
            + t[None, None, :] * b[1]
            + n2 // 2
        )
        Z = (
            p[None, :, None] * e1[2]
            + q[:, None, None] * e2[2]
            + t[None, None, :] * b[2]
            + n0 // 2
        )
        # volume axis order is (x, z, y)
        samples = ndimage.map_coordinates(
            uf, [X, Z, Y], order=1, mode="constant", cval=0.0
        )
        out[k] = samples.sum(axis=-1) / supersample
    return out


def simulate_data(
    u: np.ndarray,
    geometry: LaminoGeometry,
    noise_level: float = 0.0,
    seed: int = 0,
    projector: LaminoProjector | None = None,
) -> np.ndarray:
    """Generate (real-valued) measured projections from a ground-truth volume.

    The Fourier forward model of a real volume is real up to even/odd grid
    asymmetry; the tiny imaginary residue is dropped, matching how detectors
    record real intensities.  Optional additive white Gaussian noise is
    scaled to ``noise_level`` times the data RMS.
    """
    proj = projector if projector is not None else LaminoProjector(geometry)
    d = proj.forward(np.asarray(u, dtype=np.float32)).real
    if noise_level > 0.0:
        rng = np.random.default_rng(seed)
        d = d + noise_level * float(np.sqrt(np.mean(d**2))) * rng.standard_normal(
            d.shape
        )
    return d.astype(np.float32)
