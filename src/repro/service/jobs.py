"""Job model of the reconstruction service.

One *job* is one complete reconstruction: geometry, a projections source,
the solver configuration, and a priority.  Jobs are submitted to a
:class:`~repro.service.scheduler.ReconstructionScheduler`, which hands back
a :class:`JobHandle` — the caller's window onto the job's lifecycle::

    queued ──▶ running ──▶ done
       │          ├──────▶ failed
       └──────────┴──────▶ cancelled

Handles are thread-safe.  Cancellation is *cooperative*: a queued job is
dropped before it starts, a running job observes the request at its next
outer ADMM iteration (through the solver callback) and unwinds cleanly —
no thread is ever killed mid-chunk.  Every state transition and every
completed iteration is appended to the handle's event log with a
timestamp, and a finished job carries its reconstruction result plus the
:class:`~repro.core.memo_db.MemoDBStats` *delta* — the database traffic
this job alone generated, which is how cross-job warm-start gains are
quantified on a stats-carrying shared database.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from ..core.config import MLRConfig
from ..core.memo_db import MemoDBStats
from ..core.mlr_solver import MLRResult
from ..lamino.geometry import LaminoGeometry
from ..solvers.admm import ADMMConfig

__all__ = ["JobState", "JobCancelled", "JobEvent", "JobSpec", "JobHandle"]


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class JobCancelled(RuntimeError):
    """Raised inside a worker to unwind a cooperatively cancelled job."""


@dataclass(frozen=True)
class JobEvent:
    """One timestamped lifecycle observation.

    ``t`` is ``time.monotonic()`` — the clock every duration (queue wait,
    run time) is derived from, immune to wall-clock adjustment.  ``wall``
    is ``time.time()`` at the same instant, kept strictly for display
    (log correlation, human-readable timelines); never subtract walls.
    """

    t: float
    kind: str
    detail: str = ""
    wall: float = 0.0

    @classmethod
    def now(cls, kind: str, detail: str = "") -> "JobEvent":
        return cls(time.monotonic(), kind, detail, wall=time.time())


@dataclass
class JobSpec:
    """Everything needed to run one reconstruction as a service job.

    projections:
        The scan data — an ndarray, or a zero-argument callable producing
        one (so acquisition / staging I/O happens on the worker, not at
        submit time).
    priority:
        Larger runs earlier; ties break FIFO by submission order.
    max_retries:
        How many times a *failed* attempt is re-run before the job goes
        ``failed`` (0 = the historical run-once behavior).  Retried jobs
        keep one event log across attempts (each retry appends a ``retry``
        event) and re-seed from the shared memo tier, so work the failed
        attempt already inserted is not recomputed.  Cancellation is never
        retried.
    """

    name: str
    geometry: LaminoGeometry
    projections: np.ndarray | Callable[[], np.ndarray]
    config: MLRConfig = field(default_factory=MLRConfig)
    admm: ADMMConfig | None = None
    priority: int = 0
    u0: np.ndarray | None = None
    max_retries: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("name must be a non-empty string")
        if not isinstance(self.geometry, LaminoGeometry):
            raise ValueError(
                f"geometry must be a LaminoGeometry, got {type(self.geometry).__name__}"
            )
        if not (isinstance(self.projections, np.ndarray) or callable(self.projections)):
            raise ValueError(
                "projections must be an ndarray or a zero-argument callable, "
                f"got {type(self.projections).__name__}"
            )
        if not isinstance(self.config, MLRConfig):
            raise ValueError(
                f"config must be an MLRConfig, got {type(self.config).__name__}"
            )
        if self.admm is not None and not isinstance(self.admm, ADMMConfig):
            raise ValueError(
                f"admm must be an ADMMConfig or None, got {type(self.admm).__name__}"
            )
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise ValueError(f"priority must be an int, got {self.priority!r}")
        if (
            isinstance(self.max_retries, bool)
            or not isinstance(self.max_retries, int)
            or self.max_retries < 0
        ):
            raise ValueError(
                f"max_retries must be an int >= 0, got {self.max_retries!r}"
            )

    def materialize(self) -> np.ndarray:
        """Resolve the projections source (runs the callable, if any)."""
        d = self.projections() if callable(self.projections) else self.projections
        if not isinstance(d, np.ndarray):
            raise TypeError(
                f"projections source for job {self.name!r} produced "
                f"{type(d).__name__}, expected an ndarray"
            )
        return d


class JobHandle:
    """Thread-safe view of one submitted job."""

    def __init__(self, spec: JobSpec, job_id: int) -> None:
        self.spec = spec
        self.job_id = job_id
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._state = JobState.QUEUED  # guarded-by: self._lock
        self.events: list[JobEvent] = []  # guarded-by: self._lock
        self.result: MLRResult | None = None
        self.error: BaseException | None = None
        #: database traffic this job generated (stats delta over the run)
        self.memo_delta: MemoDBStats | None = None
        #: database entries visible to this job at start / at completion
        self.db_entries_start = 0
        self.db_entries_end = 0
        self.iterations = 0
        self._add_event("submitted")

    # -- observation ---------------------------------------------------------------------

    @property
    def state(self) -> JobState:
        with self._lock:
            return self._state

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True if it did."""
        return self._done.wait(timeout)

    # -- control -------------------------------------------------------------------------

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        A still-queued job transitions to ``cancelled`` immediately (it will
        never run); a running job is flagged and unwinds at its next outer
        iteration.  Returns False if the job already finished.
        """
        with self._lock:
            if self._state.terminal:
                return False
            self._cancel.set()
            if self._state is JobState.QUEUED:
                self._finish_locked(JobState.CANCELLED, "cancelled while queued")
            else:
                self.events.append(JobEvent.now("cancel_requested"))
        return True

    # -- scheduler-side transitions ------------------------------------------------------

    def _add_event(self, kind: str, detail: str = "") -> None:
        with self._lock:
            self.events.append(JobEvent.now(kind, detail))

    def _claim(self) -> bool:
        """queued -> running, atomically; False if the job was cancelled
        (or otherwise left the queue) before a worker reached it."""
        with self._lock:
            if self._state is not JobState.QUEUED or self._cancel.is_set():
                return False
            self._state = JobState.RUNNING
            self.events.append(JobEvent.now("running"))
            return True

    def _finish_locked(self, state: JobState, detail: str = "") -> None:
        self._state = state
        self.events.append(JobEvent.now(state.value, detail))
        self._done.set()

    def _finish(self, state: JobState, detail: str = "") -> None:
        with self._lock:
            if not self._state.terminal:
                self._finish_locked(state, detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle(id={self.job_id}, name={self.spec.name!r}, "
            f"state={self.state.value})"
        )
