"""Versioned on-disk snapshots of the memoization tier.

The paper memoizes within one reconstruction; the service layer makes the
accumulated state *outlive* the process, because recurrence across jobs
(repeated scans of near-identical samples — IC inspection being the
motivating workload) is even stronger than recurrence across iterations.
This module is the persistence boundary: every stateful component exposes a
``state_dict()`` / ``from_state()`` hook pair (ANN indexes, key-value
stores, the memoization database, shard router, executors, the CNN key
encoder), and the functions here package those state trees into a durable
directory format:

```
<path>/
  manifest.json   format tag, version, kind, per-array dtype/shape metadata
                  and SHA-256 content checksums, and the structural tree
  arrays.npz      every ndarray (and bytes payload) referenced by the tree
```

State trees contain only ndarrays, ``bytes`` and JSON-able scalars /
lists / dicts, so the disk round trip is structure-preserving: a tree read
back from disk is interchangeable with one taken live (the scheduler's
shared memo service passes live trees; ``MLRConfig(memo_snapshot=...)``
accepts either).  Checksums and dtype/shape metadata are verified on load —
a corrupted or truncated snapshot fails loudly, never silently degrades
hit rates.

The contract, asserted by the test suite: a database restored from a
snapshot answers ``query`` / ``query_batch`` **bit-identically** to the
live instance that produced it — values, similarities, matched ids and
statistics alike — for every ANN index state (trained, mid-training, empty)
and both value modes.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import zipfile

import numpy as np

from ..ann.flat import FlatIndex
from ..ann.hnsw import HNSWIndex
from ..ann.ivf import IVFFlatIndex
from ..core.keying import CNNKeyEncoder
from ..core.memo_db import MemoDatabase
from ..faults import runtime as faults

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "quarantine_snapshot",
    "save_memo_snapshot",
    "load_memo_snapshot",
    "install_memo_state",
    "save_database",
    "load_database",
    "save_index",
    "load_index",
    "save_encoder",
    "load_encoder",
]

log = logging.getLogger("repro.service.snapshot")

SNAPSHOT_FORMAT = "mlr-snapshot"
SNAPSHOT_VERSION = 2

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"

_INDEX_TYPES = {"flat": FlatIndex, "ivf": IVFFlatIndex, "hnsw": HNSWIndex}


class SnapshotError(RuntimeError):
    """A snapshot is missing, malformed, corrupted, or of the wrong kind."""


# -- state-tree packing ------------------------------------------------------------------


def _checksum(arr: np.ndarray) -> str:
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(arr.dtype.str.encode("ascii"))
    h.update(str(arr.shape).encode("ascii"))
    h.update(arr.tobytes())
    return h.hexdigest()


def _pack(node, arrays: dict):
    """Replace every ndarray/bytes in a state tree with an npz reference,
    collecting the payloads; everything else must be JSON-able."""
    if isinstance(node, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = node
        return {"__array__": name}
    if isinstance(node, (bytes, bytearray, memoryview)):
        name = f"a{len(arrays)}"
        arrays[name] = np.frombuffer(bytes(node), dtype=np.uint8)
        return {"__bytes__": name}
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise SnapshotError(f"state-tree keys must be str, got {key!r}")
            out[key] = _pack(value, arrays)
        return out
    if isinstance(node, (list, tuple)):
        return [_pack(v, arrays) for v in node]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise SnapshotError(f"state tree holds unserializable {type(node).__name__}")


def _unpack(node, arrays, meta: dict, verify: bool):
    if isinstance(node, dict):
        if "__array__" in node:
            return _load_array(node["__array__"], arrays, meta, verify)
        if "__bytes__" in node:
            return _load_array(node["__bytes__"], arrays, meta, verify).tobytes()
        return {k: _unpack(v, arrays, meta, verify) for k, v in node.items()}
    if isinstance(node, list):
        return [_unpack(v, arrays, meta, verify) for v in node]
    return node


def _load_array(name: str, arrays, meta: dict, verify: bool) -> np.ndarray:
    try:
        arr = arrays[name]
    except KeyError:
        raise SnapshotError(f"manifest references missing array {name!r}") from None
    info = meta.get(name)
    if info is None:
        raise SnapshotError(f"array {name!r} has no manifest metadata")
    if arr.dtype.str != info["dtype"] or list(arr.shape) != list(info["shape"]):
        raise SnapshotError(
            f"array {name!r}: stored {arr.dtype.str}{arr.shape} does not match "
            f"manifest {info['dtype']}{tuple(info['shape'])}"
        )
    if verify and _checksum(arr) != info["sha256"]:
        raise SnapshotError(f"array {name!r} failed its checksum — snapshot corrupted")
    return arr


def _write_durable(target: str, raw: bytes) -> None:
    """Crash-safe file publish: write to a unique temp sibling, fsync the
    data, atomically replace, then fsync the directory so the rename itself
    survives power loss.  A crash at any point leaves either the old file
    or no file — never a torn one."""
    directory = os.path.dirname(target) or "."
    tmp = f"{target}.tmp.{os.getpid()}"
    fh = open(tmp, "wb")
    try:
        fh.write(raw)
        fh.flush()
        os.fsync(fh.fileno())
    finally:
        fh.close()
    try:
        os.replace(tmp, target)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    except OSError:  # some filesystems reject directory fsync; best effort
        pass
    finally:
        os.close(dir_fd)


def write_snapshot(path, tree: dict, kind: str) -> dict:
    """Persist one state tree under ``path`` (a directory, created as
    needed); returns the manifest written alongside the arrays."""
    os.makedirs(path, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    packed = _pack(tree, arrays)
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "arrays": {
            name: {
                "dtype": np.ascontiguousarray(arr).dtype.str,
                "shape": list(arr.shape),
                "nbytes": int(arr.nbytes),
                "sha256": _checksum(arr),
            }
            for name, arr in arrays.items()
        },
        "tree": packed,
    }
    # whole-manifest self-digest: the per-array checksums only cover the
    # npz payload, so a bit flip inside the JSON tree itself (scalar lists,
    # heat metadata, config fields) would otherwise parse cleanly and load
    manifest["manifest_sha256"] = hashlib.sha256(
        json.dumps(manifest, sort_keys=True).encode("utf-8")
    ).hexdigest()
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    # arrays land first: a crash between the two writes leaves the OLD
    # manifest pointing at old arrays (stale-but-consistent) or — on a
    # fresh directory — no manifest at all, which reads as "no snapshot"
    arrays_raw = faults.on_snapshot_write(str(path), buf.getvalue())
    _write_durable(os.path.join(path, _ARRAYS), arrays_raw)
    manifest_raw = json.dumps(manifest, indent=1).encode("utf-8")
    manifest_raw = faults.on_snapshot_write(f"{path}:{_MANIFEST}", manifest_raw)
    _write_durable(os.path.join(path, _MANIFEST), manifest_raw)
    return manifest


def read_snapshot(path, expect_kind: str | None = None, verify: bool = True) -> dict:
    """Load a state tree written by :func:`write_snapshot`, verifying the
    format version, per-array dtype/shape metadata, and content checksums.
    Every way a snapshot can be broken — missing files, undecodable JSON,
    a torn npz, checksum drift — surfaces as :class:`SnapshotError`."""
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.isfile(manifest_path):
        raise SnapshotError(f"no snapshot at {path!r} (missing {_MANIFEST})")
    try:
        with open(manifest_path, "rb") as fh:
            manifest_raw = fh.read()
        manifest_raw = faults.on_snapshot_read(f"{path}:{_MANIFEST}", manifest_raw)
        manifest = json.loads(manifest_raw.decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"unreadable manifest at {path!r}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"manifest at {path!r} is not a JSON object")
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"not an mLR snapshot: format {manifest.get('format')!r}")
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {manifest.get('version')!r} "
            f"(this build reads {SNAPSHOT_VERSION})"
        )
    claimed = manifest.pop("manifest_sha256", None)
    if verify:
        if not isinstance(claimed, str):
            raise SnapshotError(f"manifest at {path!r} carries no self-digest")
        actual = hashlib.sha256(
            json.dumps(manifest, sort_keys=True).encode("utf-8")
        ).hexdigest()
        if actual != claimed:
            raise SnapshotError(
                f"manifest at {path!r} failed its whole-file checksum — "
                "snapshot corrupted"
            )
    if expect_kind is not None and manifest.get("kind") != expect_kind:
        raise SnapshotError(
            f"snapshot kind {manifest.get('kind')!r}, expected {expect_kind!r}"
        )
    arrays_path = os.path.join(path, _ARRAYS)
    try:
        with open(arrays_path, "rb") as fh:
            arrays_raw = fh.read()
        arrays_raw = faults.on_snapshot_read(str(path), arrays_raw)
        with np.load(io.BytesIO(arrays_raw)) as npz:
            arrays = {name: npz[name] for name in npz.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError) as exc:
        raise SnapshotError(f"unreadable arrays at {arrays_path!r}: {exc}") from exc
    try:
        return _unpack(manifest["tree"], arrays, manifest["arrays"], verify)
    except (KeyError, TypeError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot tree at {path!r}: {exc!r}") from exc


def quarantine_snapshot(path) -> str | None:
    """Move a corrupt snapshot directory (or file) aside as ``<path>.corrupt``
    so the next boot cold-starts instead of tripping on it again; the evidence
    stays on disk for inspection.  Returns the quarantine path, or ``None``
    when there was nothing to move.  Never raises — quarantine runs on error
    paths where a second failure must not mask the first."""
    path = str(path)
    if not os.path.exists(path):
        return None
    dest = f"{path}.corrupt"
    n = 1
    while os.path.exists(dest):
        n += 1
        dest = f"{path}.corrupt.{n}"
    try:
        os.replace(path, dest)
    except OSError as exc:
        log.warning("could not quarantine snapshot %s: %s", path, exc)
        return None
    log.warning("quarantined corrupt snapshot %s -> %s", path, dest)
    return dest


# -- memoization-tier snapshots ----------------------------------------------------------


_ENCODER_DIR = "encoder"


def save_memo_snapshot(path, executor) -> dict:
    """Snapshot an executor's whole database tier (single or sharded — the
    sharded executor snapshots per shard through its router).

    A trained CNN key encoder rides along twice: embedded in the state tree
    (``encoder_state``, what warm starts auto-install) and as a standalone
    :func:`save_encoder` snapshot under ``<path>/encoder/`` so the encoder
    stays independently loadable."""
    manifest = write_snapshot(path, executor.memo_state(), kind="memo-state")
    encoder = getattr(executor, "encoder", None)
    if isinstance(encoder, CNNKeyEncoder):
        save_encoder(os.path.join(path, _ENCODER_DIR), encoder)
    return manifest


def load_memo_snapshot(path) -> dict:
    """Read a database-tier state tree back (not yet installed anywhere).
    Snapshots whose tree predates the embedded ``encoder_state`` fall back
    to the standalone ``<path>/encoder/`` snapshot when one exists."""
    tree = read_snapshot(path, expect_kind="memo-state")
    enc_dir = os.path.join(path, _ENCODER_DIR)
    if not tree.get("encoder_state") and os.path.isfile(
        os.path.join(enc_dir, _MANIFEST)
    ):
        tree["encoder_state"] = read_snapshot(enc_dir, expect_kind="key-encoder")
    return tree


def install_memo_state(executor, snapshot) -> None:
    """Warm-start ``executor`` from ``snapshot`` — a snapshot directory or
    an in-memory ``memo_state()`` tree."""
    if not isinstance(snapshot, dict):
        snapshot = load_memo_snapshot(snapshot)
    executor.load_memo_state(snapshot)


# -- single-component snapshots ----------------------------------------------------------


def save_database(path, db: MemoDatabase) -> dict:
    return write_snapshot(path, db.state_dict(), kind="memo-database")


def load_database(path) -> MemoDatabase:
    return MemoDatabase.from_state(read_snapshot(path, expect_kind="memo-database"))


def save_index(path, index) -> dict:
    """Snapshot one ANN index (Flat / IVF — trained or not — / HNSW)."""
    for tag, cls in _INDEX_TYPES.items():
        if type(index) is cls:
            return write_snapshot(
                path, {"index_type": tag, "state": index.state_dict()}, kind="ann-index"
            )
    raise SnapshotError(f"unknown index type {type(index).__name__}")


def load_index(path):
    tree = read_snapshot(path, expect_kind="ann-index")
    cls = _INDEX_TYPES.get(tree["index_type"])
    if cls is None:
        raise SnapshotError(f"unknown index_type {tree['index_type']!r}")
    return cls.from_state(tree["state"])


def save_encoder(path, encoder: CNNKeyEncoder) -> dict:
    """Snapshot the (INT8-quantized) CNN key encoder."""
    if not isinstance(encoder, CNNKeyEncoder):
        raise SnapshotError(
            f"only CNNKeyEncoder snapshots are supported, got {type(encoder).__name__}"
        )
    return write_snapshot(path, encoder.state_dict(), kind="key-encoder")


def load_encoder(path) -> CNNKeyEncoder:
    return CNNKeyEncoder.from_state(read_snapshot(path, expect_kind="key-encoder"))
