"""Multi-job reconstruction scheduler with a shared cross-job memo tier.

:class:`ReconstructionScheduler` is the operational shell around
:class:`~repro.core.mlr_solver.MLRSolver` that beamline-style pipelines
(cf. tomocupy's named-job batch operation) need: submit many named
reconstructions, run them on a bounded worker pool, observe/cancel each
through its :class:`~repro.service.jobs.JobHandle`.

Scheduling policy
-----------------
- **Priority + FIFO fairness**: the ready queue is ordered by
  ``(-priority, submission sequence)`` — higher priority first, ties
  strictly first-come-first-served, so a stream of equal-priority jobs can
  never be starved by later arrivals.
- **Admission control**: beyond ``max_queue_depth`` *waiting* jobs the
  scheduler rejects new submissions with :class:`AdmissionError` (running
  jobs don't count — the knob bounds queue memory, not concurrency).
- **Cooperative cancellation**: queued jobs die in place; running jobs are
  unwound at the next outer ADMM iteration via the solver callback.

Cross-job memoization
---------------------
The scheduler owns a :class:`SharedMemoService`: when a job completes, the
service absorbs the executor's database tier (as a state tree — the same
format the on-disk snapshots use); when the next job starts, its executor
is seeded from it.  Job N+1 therefore begins with job N's accumulated
(key, value) pairs — the cross-run recurrence the paper's within-run
memoization leaves on the table — and each handle's ``memo_delta``
isolates the job's own hit/query counters so warm-start gains are
directly measurable.  The service persists/restores through
:func:`repro.service.snapshot.write_snapshot`, surviving process restarts.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field

from ..core.memo_engine import memo_state_partitions
from ..core.mlr_solver import MLRSolver
from ..obs import runtime as obs
from .jobs import JobCancelled, JobHandle, JobSpec, JobState
from .snapshot import read_snapshot, write_snapshot

__all__ = [
    "AdmissionError",
    "ServiceConfig",
    "SchedulerStats",
    "SharedMemoService",
    "ReconstructionScheduler",
]


class AdmissionError(RuntimeError):
    """Submission rejected: the waiting queue is at its depth limit."""


@dataclass
class ServiceConfig:
    """Operational knobs of the reconstruction service.

    n_workers:
        Concurrent reconstruction jobs (service worker threads; distinct
        from ``MLRConfig.n_workers``, the *simulated GPU* workers inside
        one job).
    max_queue_depth:
        Admission limit on *waiting* jobs (``None`` = unbounded, ``0`` =
        never queue: a submission is admitted only if a worker can take it
        immediately).
    share_memo:
        Seed every job's executor from the scheduler's shared memo service
        and absorb its database tier on success.  A job carrying an
        explicit ``MLRConfig(memo_snapshot=...)`` is *not* seeded — its
        requested snapshot takes precedence — but its results are still
        absorbed into the shared tier afterwards.
    memo_transport / memo_server:
        Where the shared memo tier lives.  ``"inproc"`` (default) holds it
        in this scheduler's memory; ``"tcp"`` backs it with a
        :class:`~repro.net.server.MemoServerDaemon` at ``memo_server``
        (``"host:port"``, ``(host, port)``, a comma-separated replica list
        or a list of addresses) through a
        :class:`~repro.net.snapshot_store.RemoteSnapshotStore`, so
        schedulers on *different hosts* seed from and absorb into one
        tier.  The store is fail-open: a daemon that stays unreachable
        past the store's retry policy means cold seeds and dropped
        absorbs, never failed jobs.
    telemetry_port / telemetry_host:
        With ``telemetry_port`` set, the scheduler serves the live
        telemetry plane (:class:`~repro.obs.http.TelemetryServer`) on
        ``telemetry_host:telemetry_port``: ``/metrics`` (scheduler gauges
        plus, for a remote tier, the replica-labeled daemon counters),
        ``/healthz``, ``/readyz`` (accepting / queue-not-saturated / not
        every replica breaker open) and ``/snapshot``.  Port 0 binds
        ephemerally — read ``scheduler.telemetry.port`` back.
    """

    n_workers: int = 2
    max_queue_depth: int | None = None
    share_memo: bool = True
    memo_transport: str = "inproc"
    memo_server: str | tuple | list | None = None
    telemetry_port: int | None = None
    telemetry_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0 or None, got {self.max_queue_depth}"
            )
        if self.memo_transport not in ("inproc", "tcp"):
            raise ValueError(
                f"memo_transport must be 'inproc' or 'tcp', got "
                f"{self.memo_transport!r}"
            )
        if self.memo_transport == "tcp":
            if self.memo_server is None:
                raise ValueError("memo_transport='tcp' requires a memo_server address")
            from ..net.wire import parse_address_list

            parse_address_list(self.memo_server)  # fail fast, naming bad elements
        if self.telemetry_port is not None:
            from ..net.wire import parse_address

            # same validation (and same rejection message) as the memo
            # daemon's bind address
            parse_address((self.telemetry_host, self.telemetry_port))


@dataclass
class SchedulerStats:
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    peak_queue_depth: int = 0
    peak_running: int = 0

    def publish(self, **labels) -> None:
        """Register these counters as ``scheduler_<field>`` gauges in the
        :mod:`repro.obs` registry (no-op while observability is off).
        Must be called on a copy taken outside the scheduler's condition —
        the registry lock never nests under it."""
        if not obs.enabled():
            return
        obs.gauge("scheduler_submitted", **labels).set(self.submitted)
        obs.gauge("scheduler_rejected", **labels).set(self.rejected)
        obs.gauge("scheduler_completed", **labels).set(self.completed)
        obs.gauge("scheduler_failed", **labels).set(self.failed)
        obs.gauge("scheduler_cancelled", **labels).set(self.cancelled)
        obs.gauge("scheduler_peak_queue_depth", **labels).set(self.peak_queue_depth)
        obs.gauge("scheduler_peak_running", **labels).set(self.peak_running)


@dataclass
class SharedMemoService:
    """The scheduler-owned, persistent cross-job memoization tier.

    Holds a database-tier state tree assembled from completed jobs.  A job
    seeded from the current tier carries every prior partition forward, so
    sequential jobs chain cleanly; when jobs complete *concurrently*,
    :meth:`absorb` merges at partition granularity — partitions only the
    earlier tree holds are kept, and for a partition both trees hold the
    newest completion wins (per-partition entries are never silently
    dropped wholesale, but concurrent updates to the *same* chunk location
    are last-writer-wins).  Thread-safe; snapshot-compatible with
    :mod:`repro.service.snapshot` for durability across processes.

    With ``store`` set (a :class:`~repro.net.snapshot_store.RemoteSnapshotStore`),
    the tier lives on a memo server daemon instead of in this process:
    ``seed`` pulls the daemon's merged tier and ``absorb`` pushes the
    finished job's tier (the daemon merges, partition-level union) — which
    is what lets schedulers on different hosts warm-start from one shared
    tier.  The store is fail-open: an unreachable daemon seeds cold and
    drops absorbs rather than failing jobs.
    """

    _tree: dict | None = None  # guarded-by: self._lock
    generation: int = 0  # guarded-by: self._lock
    store: object | None = None  # RemoteSnapshotStore-shaped: pull()/push()
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def seed(self, executor) -> bool:
        """Install the current tier into ``executor``; False when cold."""
        if self.store is not None:
            tree = self.store.pull()
        else:
            with self._lock:
                tree = self._tree
        if tree is None:
            return False
        executor.load_memo_state(tree)
        return True

    def absorb(self, executor) -> None:
        """Merge ``executor``'s database tier into the shared state."""
        tree = executor.memo_state()
        if self.store is not None:
            if self.store.push(tree):
                with self._lock:
                    self.generation += 1
            return
        with self._lock:
            self._tree = self._merged(self._tree, tree)
            self.generation += 1

    @staticmethod
    def _merged(old: dict | None, new: dict) -> dict:
        """Partition-level union, newest partition first on conflicts.

        When ``new`` subsumes ``old`` (the chained, sequential case), it is
        kept verbatim — layout and per-shard counters included; otherwise
        the union falls back to the canonical single layout.
        """
        if old is None:
            return new
        new_parts = memo_state_partitions(new)
        seen = {(p["op"], int(p["location"])) for p in new_parts}
        old_parts = memo_state_partitions(old)
        missing = [
            p for p in old_parts
            if (p["op"], int(p["location"])) not in seen
        ]
        if not missing:
            # new subsumes old: the chained, sequential case — the job was
            # seeded from this tier, so its partitions already carry the
            # prior heat plus this run's hits
            return new
        # concurrent completions: the newest partition wins wholesale, but
        # per-entry heat is unioned (max last-hit / summed hits) so the
        # losing job's traffic still informs the eviction planner
        from ..kvstore.store import merge_heat_states

        old_by_key = {(p["op"], int(p["location"])): p for p in old_parts}
        for part in new_parts:
            prior = old_by_key.get((part["op"], int(part["location"])))
            if prior is None:
                continue
            new_db, old_db = part.get("db"), prior.get("db")
            if isinstance(new_db, dict) and isinstance(old_db, dict):
                new_vals = new_db.get("values")
                old_vals = old_db.get("values")
                if isinstance(new_vals, dict) and isinstance(old_vals, dict):
                    merge_heat_states(new_vals, old_vals)
        return {
            "layout": "single",
            "encoder": new.get("encoder"),
            "encoder_state": new.get("encoder_state") or old.get("encoder_state"),
            "partitions": new_parts + missing,
        }

    def state(self) -> dict | None:
        if self.store is not None:
            return self.store.pull()
        with self._lock:
            return self._tree

    def save(self, path) -> dict:
        """Persist the tier as a versioned on-disk snapshot."""
        tree = self.state()
        if tree is None:
            raise ValueError("shared memo service is cold — nothing to save")
        return write_snapshot(path, tree, kind="memo-state")

    def load(self, path) -> None:
        """Restore the tier from a snapshot directory (pushed to the daemon
        when the tier is remote)."""
        tree = read_snapshot(path, expect_kind="memo-state")
        if self.store is not None:
            if self.store.push(tree):
                with self._lock:
                    self.generation += 1
            return
        with self._lock:
            self._tree = tree
            self.generation += 1

    def close(self) -> None:
        if self.store is not None:
            self.store.close()


class ReconstructionScheduler:
    """Bounded-worker-pool scheduler over :class:`MLRSolver` jobs."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        memo_service: SharedMemoService | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._owns_memo_service = memo_service is None
        if memo_service is None:
            if self.config.memo_transport == "tcp":
                from ..net.snapshot_store import RemoteSnapshotStore

                memo_service = SharedMemoService(
                    store=RemoteSnapshotStore(self.config.memo_server)
                )
            else:
                memo_service = SharedMemoService()
        self.memo_service = memo_service
        self.stats = SchedulerStats()  # guarded-by: self._cond
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, JobHandle]] = []  # guarded-by: self._cond
        self._seq = itertools.count()
        self._shutdown = False  # guarded-by: self._cond
        self._running = 0  # guarded-by: self._cond
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"recon-worker-{i}",
                             daemon=True)
            for i in range(self.config.n_workers)
        ]
        for t in self._workers:
            t.start()
        # live telemetry plane (ServiceConfig(telemetry_port=...)):
        # /metrics, /healthz, /readyz, /snapshot for this scheduler process
        self.telemetry = None
        if self.config.telemetry_port is not None:
            from ..obs.http import TelemetryServer

            self.telemetry = TelemetryServer(
                (self.config.telemetry_host, self.config.telemetry_port),
                collect=[self._telemetry_collect],
                readiness=self._readiness_probes(),
                name="scheduler",
            )

    # -- telemetry plane -----------------------------------------------------------------

    def _telemetry_collect(self) -> list[dict]:
        """Collect hook for the scrape path: publish the scheduler gauges
        (same seam the worker loop uses) and, when a *replicated* remote
        tier fronts the memo service, append each live replica's metric
        entries — they carry ``replica="host:port"`` labels, so the merged
        scrape stays collision-free.  A single-server tier's entries are
        unlabeled copies of ours and are left to its own daemon's plane."""
        with self._cond:
            stats_now = SchedulerStats(**vars(self.stats))
            depth_now = self._live_waiting_locked()
            running_now = self._running
        stats_now.publish()
        obs.gauge("scheduler_queue_depth").set(depth_now)
        obs.gauge("scheduler_running").set(running_now)
        client = getattr(self.memo_service.store, "_client", None)
        # health() marks the replicated client; a single-server pull would
        # cost a wire round trip per scrape only to be discarded below
        payload = client.metrics() if hasattr(client, "health") else None
        if isinstance(payload, dict) and "replicas" in payload:
            return [e for e in payload.get("metrics") or [] if isinstance(e, dict)]
        return []

    def _readiness_probes(self) -> list:
        def accepting() -> tuple[bool, str]:
            with self._cond:
                ok = not self._shutdown
            return ok, "accepting" if ok else "shut down"

        def queue() -> tuple[bool, str]:
            depth = self.config.max_queue_depth
            with self._cond:
                waiting = self._live_waiting_locked()
                idle = self.config.n_workers - self._running
            if depth is None:
                return True, f"{waiting} waiting (unbounded queue)"
            # mirror of submit()'s admission test: would one more job wait
            # beyond the depth limit?  503 here tells a load balancer to
            # route around us *before* submissions start bouncing
            would_wait = (waiting + 1) - min(max(idle, 0), waiting + 1)
            ok = would_wait <= depth
            detail = f"{waiting} waiting, {self.config.n_workers - max(idle, 0)} running, depth limit {depth}"
            return ok, detail if ok else f"saturated: {detail}"

        def memo_tier() -> tuple[bool, str]:
            # duck-typed: only the replicated client exposes health(); an
            # in-process tier or single-server client is never the reason
            # to pull this scheduler out of rotation (those paths fail open)
            client = getattr(self.memo_service.store, "_client", None)
            health = getattr(client, "health", None)
            if health is None:
                return True, "no replicated tier"
            circuits = {tag: h.get("circuit") for tag, h in health().items()}
            ok = any(state != "open" for state in circuits.values())
            detail = " ".join(f"{tag}:{state}" for tag, state in sorted(circuits.items()))
            return ok, detail if ok else f"all breakers open: {detail}"

        accepting.probe_name = "accepting"
        queue.probe_name = "queue"
        memo_tier.probe_name = "memo_tier"
        return [accepting, queue, memo_tier]

    # -- submission ----------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue one job; returns its handle.

        Raises :class:`AdmissionError` when the waiting queue is at
        ``max_queue_depth`` (the spec is not retained), and
        ``RuntimeError`` after :meth:`shutdown`.
        """
        if not isinstance(spec, JobSpec):
            raise ValueError(f"submit expects a JobSpec, got {type(spec).__name__}")
        with self._cond:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            depth = self.config.max_queue_depth
            waiting = self._live_waiting_locked()
            if depth is not None:
                # a submission an idle worker would grab immediately is
                # admitted even at depth 0 — the knob bounds *waiting* jobs
                idle = self.config.n_workers - self._running
                would_wait = (waiting + 1) - min(max(idle, 0), waiting + 1)
                if would_wait > depth:
                    self.stats.rejected += 1
                    raise AdmissionError(
                        f"queue depth limit {depth} reached "
                        f"({waiting} waiting, {self._running} running)"
                    )
            handle = JobHandle(spec, job_id=self.stats.submitted)
            self.stats.submitted += 1
            heapq.heappush(self._heap, (-spec.priority, next(self._seq), handle))
            depth_now = self._live_waiting_locked()
            self.stats.peak_queue_depth = max(self.stats.peak_queue_depth, depth_now)
            self._cond.notify()
        obs.gauge("scheduler_queue_depth").set(depth_now)
        return handle

    def _live_waiting_locked(self) -> int:
        """Waiting jobs that will actually run — entries whose handle was
        cancelled while queued are dead weight awaiting a worker's pop and
        must not count against the admission limit."""
        return sum(1 for _, _, h in self._heap if not h.state.terminal)

    def queue_depth(self) -> int:
        with self._cond:
            return self._live_waiting_locked()

    def running_count(self) -> int:
        with self._cond:
            return self._running

    # -- lifecycle -----------------------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work and wind the pool down.

        By default the workers drain every already-queued job first;
        ``cancel_pending=True`` cancels the waiting queue instead (running
        jobs still finish — use their handles to cancel those too).
        """
        if self.telemetry is not None:
            try:
                self.telemetry.close()
            except OSError:
                pass
            self.telemetry = None
        with self._cond:
            self._shutdown = True
            if cancel_pending:
                # each dropped job is counted exactly once: here, since the
                # heap is cleared under the lock, a worker can never also
                # pop (and re-count) it
                for _, _, handle in self._heap:
                    handle.cancel()
                    if handle.state is JobState.CANCELLED:
                        self.stats.cancelled += 1
                self._heap.clear()
            self._cond.notify_all()
        if wait:
            for t in self._workers:
                t.join()
        # release the remote tier connection only if this scheduler created
        # it (an injected service may be shared with other schedulers); with
        # wait=False workers may still be absorbing, so it must stay open —
        # the store's client survives a close-under-it anyway (fail-open)
        if wait and self._owns_memo_service:
            self.memo_service.close()

    def __enter__(self) -> "ReconstructionScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    # -- the worker loop -----------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._shutdown:
                    self._cond.wait()
                if not self._heap:
                    return  # shutdown and drained
                _, _, handle = heapq.heappop(self._heap)
                if not handle._claim():
                    # cancelled while queued — already terminal, never ran
                    self.stats.cancelled += 1
                    continue
                self._running += 1
                self.stats.peak_running = max(self.stats.peak_running, self._running)
                depth_now = self._live_waiting_locked()
                running_now = self._running
            obs.gauge("scheduler_queue_depth").set(depth_now)
            obs.gauge("scheduler_running").set(running_now)
            try:
                with obs.span(
                    "job.run", job=handle.spec.name, job_id=handle.job_id
                ):
                    self._execute(handle)
            finally:
                with self._cond:
                    self._running -= 1
                    running_now = self._running
                    stats_now = SchedulerStats(**vars(self.stats))
                    self._cond.notify_all()
                obs.gauge("scheduler_running").set(running_now)
                stats_now.publish()

    def _check_cancel(self, handle: JobHandle) -> None:
        if handle.cancel_requested:
            raise JobCancelled(handle.spec.name)

    def _execute(self, handle: JobHandle) -> None:
        """Run one claimed job, retrying failed attempts up to the spec's
        ``max_retries``.  The handle — and with it the event log — spans
        every attempt, each retry re-seeds from the shared tier (so the
        failed attempt's absorbed-or-inserted work carries forward), and
        cancellation is honored immediately, never retried."""
        spec = handle.spec
        last_exc: BaseException | None = None
        for attempt in range(spec.max_retries + 1):
            if attempt:
                handle._add_event(
                    "retry",
                    f"attempt {attempt + 1}/{spec.max_retries + 1} after "
                    f"{type(last_exc).__name__}",
                )
                obs.counter("job_retries_total", job=spec.name).inc()
            try:
                self._run_attempt(handle)
                return
            except JobCancelled:
                handle._finish(JobState.CANCELLED, "cancelled while running")
                with self._cond:
                    self.stats.cancelled += 1
                return
            except BaseException as exc:  # noqa: BLE001 — job isolation boundary
                last_exc = exc
                handle.error = exc
                if attempt >= spec.max_retries:
                    handle._finish(JobState.FAILED, f"{type(exc).__name__}: {exc}")
                    with self._cond:
                        self.stats.failed += 1
                    # black-box dump: the span rings hold the last thing
                    # every stage was doing when the job gave up (no-op
                    # unless a flight dir is configured)
                    obs.flight_dump(
                        "job-failure",
                        job=spec.name,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt + 1,
                    )
                    return
                handle._add_event(
                    "attempt_failed", f"{type(exc).__name__}: {exc}"
                )

    def _run_attempt(self, handle: JobHandle) -> None:
        """One solver construction + reconstruction + absorb cycle."""
        spec = handle.spec
        solver = None
        try:
            d = spec.materialize()
            self._check_cancel(handle)
            solver = MLRSolver(spec.geometry, spec.config, admm=spec.admm)
            if solver.snapshot_quarantined:
                # the job's requested warm-start snapshot was corrupt; the
                # solver quarantined it and started cold — record it where
                # operators look first (the job's own event log)
                handle._add_event(
                    "snapshot_quarantined", str(spec.config.memo_snapshot)
                )
                obs.flight_dump(
                    "snapshot-quarantine",
                    job=spec.name,
                    snapshot=str(spec.config.memo_snapshot),
                )
            # an explicit per-job snapshot (already loaded by the solver)
            # takes precedence over the shared tier — seeding on top would
            # overwrite the partitions the user asked for
            if self.config.share_memo and spec.config.memo_snapshot is None:
                try:
                    seeded = self.memo_service.seed(solver.executor)
                except Exception as exc:  # noqa: BLE001 — tier seed only
                    # a tier incompatible with this job's memo config (tau /
                    # encoder mismatch) means a cold start, not a dead job —
                    # mirroring the absorb side of the same contract
                    handle._add_event(
                        "seed_failed", f"{type(exc).__name__}: {exc}"
                    )
                    obs.counter("job_seed_failed_total", job=spec.name).inc()
                    seeded = False
                if seeded:
                    handle._add_event(
                        "warm_start",
                        f"generation {self.memo_service.generation}",
                    )
            baseline = solver.executor.db_stats_total()
            handle.db_entries_start = solver.executor.db_entries_total()
            self._check_cancel(handle)

            def on_iteration(it, _u, info):
                handle.iterations = it + 1
                handle._add_event("iteration", f"outer={it} loss={info.get('loss')}")
                self._check_cancel(handle)

            result = solver.reconstruct(d, u0=spec.u0, callback=on_iteration)
            handle.result = result
            handle.memo_delta = solver.executor.db_stats_total().delta(baseline)
            handle.db_entries_end = solver.executor.db_entries_total()
            if self.config.share_memo:
                try:
                    self.memo_service.absorb(solver.executor)
                except Exception as exc:  # noqa: BLE001 — tier update only
                    # the reconstruction succeeded; a rejected/failed tier
                    # merge (e.g. a remote daemon pinned to another encoder)
                    # must not turn a DONE job into a FAILED one
                    handle._add_event(
                        "absorb_failed", f"{type(exc).__name__}: {exc}"
                    )
            handle._finish(JobState.DONE)
            with self._cond:
                self.stats.completed += 1
        finally:
            if solver is not None:
                solver.close()
