"""Reconstruction service: multi-job scheduling + persistent memoization.

The production shell over the mLR solver — named jobs with priorities and
lifecycle states, a bounded-concurrency scheduler, and a memoization tier
that persists across jobs and processes (versioned on-disk snapshots of
databases, ANN indexes, value stores and the key encoder), so repeated
scans of near-identical samples warm-start from each other's accumulated
(key, value) pairs.
"""

from .jobs import JobCancelled, JobEvent, JobHandle, JobSpec, JobState
from .scheduler import (
    AdmissionError,
    ReconstructionScheduler,
    SchedulerStats,
    ServiceConfig,
    SharedMemoService,
)
from .snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    install_memo_state,
    load_database,
    load_encoder,
    load_index,
    load_memo_snapshot,
    quarantine_snapshot,
    read_snapshot,
    save_database,
    save_encoder,
    save_index,
    save_memo_snapshot,
    write_snapshot,
)

__all__ = [
    "JobCancelled",
    "JobEvent",
    "JobHandle",
    "JobSpec",
    "JobState",
    "AdmissionError",
    "ReconstructionScheduler",
    "SchedulerStats",
    "ServiceConfig",
    "SharedMemoService",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "install_memo_state",
    "load_database",
    "load_encoder",
    "load_index",
    "load_memo_snapshot",
    "quarantine_snapshot",
    "read_snapshot",
    "save_database",
    "save_encoder",
    "save_index",
    "save_memo_snapshot",
    "write_snapshot",
]
