"""Multi-GPU / multi-node chunk distribution (paper Section 5.2).

The ADMM-FFT input partitions into independent chunks; mLR distributes them
evenly across GPUs within and across nodes ("the FFT operations work on the
chunks generated along different directions ... without dependency").  The
distribution is static and balanced, which is what the scalability figures
assume.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["distribute_chunks", "GPUAssignment"]


@dataclass(frozen=True)
class GPUAssignment:
    """Chunk indices owned by each GPU."""

    per_gpu: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        # chunk -> gpu map, precomputed once: owner_of is on the per-chunk
        # hot path of both the executor and the DES replay.
        owners = {}
        for gpu, chunks in enumerate(self.per_gpu):
            for chunk in chunks:
                owners[chunk] = gpu
        object.__setattr__(self, "_owners", owners)

    @property
    def n_gpus(self) -> int:
        return len(self.per_gpu)

    def owner_of(self, chunk: int) -> int:
        gpu = self._owners.get(chunk)
        if gpu is None:
            raise KeyError(chunk)
        return gpu

    @property
    def max_load(self) -> int:
        return max(len(c) for c in self.per_gpu)

    @property
    def min_load(self) -> int:
        return min(len(c) for c in self.per_gpu)


def distribute_chunks(n_chunks: int, n_gpus: int) -> GPUAssignment:
    """Even contiguous-block distribution of chunk locations over GPUs.

    Contiguous blocks (rather than round-robin) keep each GPU's chunk slabs
    adjacent, minimizing the halo traffic of the rechunking transposes
    between operations.  Loads differ by at most one chunk.
    """
    if n_chunks < 1 or n_gpus < 1:
        raise ValueError("n_chunks and n_gpus must be >= 1")
    base = n_chunks // n_gpus
    extra = n_chunks % n_gpus
    out = []
    start = 0
    for g in range(n_gpus):
        count = base + (1 if g < extra else 0)
        out.append(tuple(range(start, start + count)))
        start += count
    return GPUAssignment(per_gpu=tuple(out))
