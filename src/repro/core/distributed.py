"""Distributed memoized execution: W simulated GPU workers x N database shards.

The paper's scalable deployment (Sections 4.3 and 5.2, Figure 14) spreads
chunk locations over GPUs and funnels all memoization traffic through the
memory node as *batched* key messages.  :class:`DistributedMemoizedExecutor`
reproduces that execution shape functionally:

- chunk locations are assigned to ``n_workers`` simulated GPU workers with
  :func:`repro.core.scaling.distribute_chunks` (contiguous blocks, the
  rechunking-friendly layout the scalability figures assume),
- each worker owns a **private memoization cache** and a
  :class:`~repro.core.coalescer.KeyCoalescer`; keys that miss the cache are
  buffered and leave the worker as coalesced messages,
- every emitted message is routed shard-wise by a
  :class:`~repro.core.memo_shard.MemoShardRouter` and serviced through the
  batched ``query_batch`` / ``insert_batch`` database API,
- misses are computed and their insertions dispatched as one batched
  message per sweep (insertion is asynchronous in the paper — nothing in
  the sweep depends on it),
- every event carries its ``worker`` and ``shard``, so the trace replays on
  the DES (:func:`repro.core.perfsim.simulate_iteration` with matching
  ``n_gpus`` / ``n_shards``) with the exact worker/shard locality of the
  numeric run.

Each op sweep runs in two phases: (A) per worker, encode keys, resolve
private-cache hits, and stream the remainder through the coalescer to the
shards; (B) in chunk order, serve hits (affine scale-corrected reuse) and
compute misses.  Because memoization reuse is scoped to a single chunk
location (Section 4.1) and a location is owned by exactly one worker and
one shard, deferring queries to message boundaries changes no outcome:
``n_workers=1, n_shards=1`` is numerically identical to
:class:`~repro.core.memo_engine.MemoizedExecutor` — chunk for chunk, case
for case.  (The one caveat is ``cache="global"``: a shared cache is visible
across locations *within* a sweep, so batching can defer same-sweep
cross-location hits; the paper-default private cache is exact.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import runtime as obs
from ..solvers.executor import SWEEP_KERNELS
from .coalescer import CoalesceStats, KeyCoalescer
from .config import MemoConfig
from .memo_cache import GlobalMemoCache, PrivateMemoCache
from .memo_engine import (
    CASE_CACHE,
    CASE_DIRECT,
    CASE_MISS,
    MemoizedExecutor,
    memo_state_partitions,
)
from .memo_shard import MemoShardRouter, ShardInsert, ShardQuery
from .scaling import GPUAssignment, distribute_chunks

__all__ = ["WorkerState", "DistributedMemoizedExecutor"]


@dataclass
class WorkerState:
    """One simulated GPU worker: its private cache per op and its coalescer."""

    worker_id: int
    coalescer: KeyCoalescer
    caches: dict = field(default_factory=dict)  # op -> cache | None
    #: queries buffered behind the coalescer, awaiting the next message
    pending: list = field(default_factory=list)  # [(slot dict, ShardQuery)]


class _Slot:
    """Resolution record of one chunk within a sweep (phase A -> phase B)."""

    __slots__ = ("case", "key", "meta", "hit", "outcome", "serves")

    def __init__(self) -> None:
        self.case = None
        self.key = None
        self.meta = None
        self.hit = None  # CacheHit on a cache hit
        self.outcome = None  # QueryOutcome once the shard answered
        self.serves = 0


class DistributedMemoizedExecutor(MemoizedExecutor):
    """Multi-worker, sharded-database memoized executor.

    Drop-in for :class:`MemoizedExecutor` (same constructor plus
    ``n_workers`` / ``n_shards``); the aggregate statistics *accessors* —
    :meth:`coalesce_stats`, :meth:`cache_stats`, :meth:`db_stats`,
    :meth:`db_entries` — keep the same meaning, with per-worker and
    per-shard breakdowns added.  Note that all key traffic flows through
    the per-worker coalescers: the inherited ``coalescer`` attribute is
    inert here, so read :meth:`coalesce_stats` /
    :meth:`per_worker_coalesce_stats`, never ``self.coalescer.stats``.
    """

    def __init__(
        self,
        ops,
        config: MemoConfig | None = None,
        chunk_size: int | None = None,
        encoder=None,
        n_locations: int | None = None,
        n_workers: int = 1,
        n_shards: int = 1,
    ) -> None:
        if n_workers < 1 or n_shards < 1:
            raise ValueError("n_workers and n_shards must be >= 1")
        super().__init__(
            ops,
            config=config,
            chunk_size=chunk_size,
            encoder=encoder,
            n_locations=n_locations,
        )
        self.n_workers = n_workers
        self.n_shards = n_shards
        self._build_distributed_state()

    def _build_distributed_state(self) -> None:
        cfg = self.config
        # the shard service owns every database partition and the workers own
        # every cache: null the base-class _OpState caches (they would sit
        # permanently empty and read as silently-zero stats); _OpState.dbs
        # stays empty too, and the stats accessors read the router instead
        for state in self._state.values():
            state.cache = None
        old_router = getattr(self, "router", None)
        if cfg.transport == "tcp":
            # the shard service lives in MemoServerDaemons (possibly on other
            # hosts); both clients speak the router's exact surface.  One
            # address gets the single client; more (or replication=N) get the
            # replicated one — insert fan-out, per-shard query failover.
            from ..net.client import RemoteMemoClient
            from ..net.replicated import ReplicatedMemoClient
            from ..net.wire import parse_address_list

            addresses = parse_address_list(cfg.server_address)
            if len(addresses) > 1 or cfg.replication is not None:
                self.router = ReplicatedMemoClient(
                    addresses,
                    replication=cfg.replication,
                    expect_tau=cfg.tau,
                    expect_value_mode=cfg.db_value_mode,
                    encoder_fingerprint=self._encoder_fingerprint(),
                    n_shards_hint=self.n_shards,
                    heartbeat_interval_s=cfg.heartbeat_interval_s,
                )
            else:
                self.router = RemoteMemoClient(
                    addresses[0],
                    expect_tau=cfg.tau,
                    expect_value_mode=cfg.db_value_mode,
                    encoder_fingerprint=self._encoder_fingerprint(),
                    n_shards_hint=self.n_shards,
                )
        else:
            self.router = MemoShardRouter(self.n_shards, self._db_factory())
        if old_router is not None and hasattr(old_router, "close"):
            old_router.close()
        self.workers = [
            WorkerState(worker_id=w, coalescer=KeyCoalescer())
            for w in range(self.n_workers)
        ]
        self._assignments: dict[tuple[str, int], GPUAssignment] = {}
        for op in cfg.memo_ops:
            for worker in self.workers:
                worker.caches[op] = self._make_worker_cache(op)

    def _make_worker_cache(self, op: str):
        cfg = self.config
        if cfg.cache == "private":
            return PrivateMemoCache(cfg.tau)
        if cfg.cache == "global":
            # per-worker capacity matches the worker's location share so the
            # fleet's total cache memory equals the single-worker baseline
            n = self.n_locations_for(op)
            share = -(-n // self.n_workers)
            return GlobalMemoCache(cfg.tau, capacity=max(1, share))
        return None

    def reset_state(self) -> None:
        super().reset_state()
        self._build_distributed_state()

    @property
    def remote(self) -> bool:
        """True when the shard service is reached over the network."""
        return not isinstance(self.router, MemoShardRouter)

    def close(self) -> None:
        """Release the transport (no-op for the in-process router)."""
        if hasattr(self.router, "close"):
            self.router.close()

    # -- worker / shard plumbing ---------------------------------------------------------

    def assignment_for(self, op: str, n_chunks: int) -> GPUAssignment:
        key = (op, n_chunks)
        assign = self._assignments.get(key)
        if assign is None:
            assign = distribute_chunks(n_chunks, self.n_workers)
            self._assignments[key] = assign
        return assign

    def flush_coalescers(self) -> None:
        for worker in self.workers:
            if worker.coalescer.flush() is not None:
                self._dispatch_queries(worker)
        self.coalescer.flush()  # unused by this class; kept consistent

    def _dispatch_queries(self, worker: WorkerState) -> None:
        """Send the worker's buffered message: route it shard-wise and store
        each outcome on its slot."""
        if not worker.pending:
            return
        queries = [q for _slot, q in worker.pending]
        with obs.span("memo.dispatch", worker=worker.worker_id, n=len(queries)):
            outcomes = self.router.query_batch(queries)
        for (slot, _q), outcome in zip(worker.pending, outcomes):
            slot.outcome = outcome
        worker.pending = []

    # -- the sweep -----------------------------------------------------------------------

    def _raw_compute(self, op: str):
        """The unmemoized chunk computation of one sweep-scheduled op —
        the raw :class:`DirectExecutor` kernels from the shared
        ``SWEEP_KERNELS`` table, bound past this class's memoizing
        ``_run_*`` overrides."""
        name = SWEEP_KERNELS.get(op)
        if name is None:
            raise ValueError(f"{op!r} is not sweep-scheduled")
        kernel = getattr(super(MemoizedExecutor, self), name)
        if op == "Fu2D":
            return lambda c, x: kernel(c, x, None)
        return kernel

    def sweep_stream(self, op, items, n_chunks=None):
        """Streaming multi-worker sweep: consume ``(chunk, payload)`` in
        chunk order, yield ``(chunk, output)`` worker block by worker block.

        Work is organized exactly like the batched sweep the full-array ops
        run: per worker, phase A (encode, private-cache probe, coalesced
        shard queries) over the worker's contiguous chunk block, then phase
        B (serve hits, compute misses) for that block.  Because chunk
        locations are worker-disjoint and insertions are deferred to the end
        of the whole sweep, streaming worker-by-worker is bit-identical to
        running all of phase A before all of phase B — outputs just become
        available as each worker's block completes, which is what lets the
        pipeline's writer stage overlap them with the next block's compute.

        ``n_chunks`` (the sweep size) is required: the worker assignment
        must be fixed before the first item is consumed.
        """
        if op not in SWEEP_KERNELS:
            # detector-plane ops are never sweep-scheduled: stream them
            # chunk-at-a-time like the base executor
            yield from super().sweep_stream(op, items, n_chunks=n_chunks)
            return
        if n_chunks is None:
            raise ValueError("the distributed sweep needs n_chunks up front")
        completed = False
        try:
            yield from self._stream_sweep(op, items, n_chunks)
            completed = True
        finally:
            if not completed:
                # a dead sweep (pipeline stage failure, abandoned generator)
                # must not leak its buffered queries or coalesced keys into
                # the next sweep's messages and statistics
                for worker in self.workers:
                    worker.pending = []
                    worker.coalescer.discard()

    def _stream_sweep(self, op, items, n_chunks):
        cfg = self.config
        memoized_op = self.enabled and op in self._state
        in_warmup = self.outer_iteration < cfg.warmup_iterations
        assign = self.assignment_for(op, n_chunks)
        state = self._state.get(op)
        compute = self._raw_compute(op)
        inserts: list[ShardInsert] = []
        it = iter(items)

        for worker_id, owned in enumerate(assign.per_gpu):
            worker = self.workers[worker_id]
            block: list = []  # (chunk, input, subtract | None, slot)

            # -- phase A: cache probe + coalesced shard queries for this block ------
            for ci in owned:
                try:
                    chunk, payload = next(it)
                except StopIteration:
                    raise ValueError(
                        f"sweep_stream({op!r}): stream ended after chunk "
                        f"{ci - 1}, expected {n_chunks} chunks"
                    ) from None
                if chunk.index != ci:
                    raise ValueError(
                        f"sweep_stream({op!r}): expected chunk {ci}, got "
                        f"{chunk.index} — items must arrive in chunk order"
                    )
                # counted per consumed chunk (like the base executor), so a
                # sweep abandoned mid-stream does not inflate the statistics
                self.op_counts[op] += 1
                x, sub = payload if op == "Fu2D" else (payload, None)
                slot = _Slot()
                block.append((chunk, x, sub, slot))
                if not memoized_op or in_warmup:
                    continue
                slot.meta = self._chunk_meta(x)
                slot.key = self.encoder.encode(x)
                self._remember_key(op, chunk.index, slot.key)
                slot.serves = state.consecutive_serves.get(chunk.index, 0)
                if slot.serves >= cfg.max_consecutive_reuse:
                    slot.case = CASE_MISS
                    continue
                cache = worker.caches.get(op)
                if cache is not None:
                    hit = cache.lookup(chunk.index, slot.key, self.outer_iteration)
                    if hit is not None:
                        slot.case = CASE_CACHE
                        slot.hit = hit
                        continue
                # miss locally: the key joins the worker's next message
                worker.pending.append(
                    (slot, ShardQuery(op=op, location=chunk.index, key=slot.key))
                )
                if worker.coalescer.offer((op, chunk.index)) is not None:
                    self._dispatch_queries(worker)
            # end of the worker's block: emit the tail message
            if memoized_op and not in_warmup:
                if worker.coalescer.flush() is not None:
                    self._dispatch_queries(worker)

            # -- phase B: serve hits, compute misses, batch insertions --------------
            for chunk, x, sub, slot in block:
                shard_id = self.router.shard_of(chunk.index)
                # the span closes before the yield: consumer time (pipeline
                # writer, downstream stages) must not bill to the kernel
                with obs.span(f"sweep.{op}", chunk=chunk.index, worker=worker_id):
                    if not memoized_op or in_warmup:
                        out = compute(chunk, x)
                        if memoized_op:
                            # warmup still populates the database so later iterations hit
                            key = self.encoder.encode(x)
                            meta = self._chunk_meta(x)
                            inserts.append(
                                ShardInsert(op=op, location=chunk.index, key=key,
                                            value=out, meta=meta)
                            )
                            self._remember_key(op, chunk.index, key)
                        self._record(op, chunk.index, CASE_DIRECT, -2.0, 0, 0,
                                     worker=worker_id, shard=shard_id)
                    elif slot.case == CASE_CACHE:
                        out = self._serve_cache_hit(
                            op, state, chunk, x, slot.key, slot.hit, slot.meta,
                            slot.serves, worker=worker_id, shard=shard_id,
                        )
                    elif slot.outcome is not None and slot.outcome.hit:
                        out = self._serve_db_hit(
                            op, state, chunk, x, slot.key, slot.outcome, slot.meta,
                            slot.serves, worker.caches.get(op),
                            worker=worker_id, shard=shard_id,
                        )
                    else:
                        # miss (or forced refresh): original computation + batched insertion
                        fresh = compute(chunk, x)
                        out = self._finish_miss(
                            op, state, chunk, slot.key, fresh, slot.meta, slot.outcome,
                            worker.caches.get(op),
                            store=lambda loc=chunk.index, k=slot.key, v=fresh, m=slot.meta:
                                inserts.append(
                                    ShardInsert(op=op, location=loc, key=k, value=v, meta=m)
                                ),
                            worker=worker_id, shard=shard_id,
                        )
                yield chunk, out if sub is None else out - sub

        for extra in it:
            raise ValueError(
                f"sweep_stream({op!r}): got chunk {extra[0].index} beyond the "
                f"declared {n_chunks} chunks"
            )
        if inserts:
            self.router.insert_batch(inserts)

    # (the full-array operations are inherited: DirectExecutor's drivers
    # feed this class's sweep_stream, which handles batching, sharding and
    # the fused Fu2D subtraction per chunk)

    # -- statistics ----------------------------------------------------------------------

    def db_stats(self, op: str):
        return self.router.stats(op)

    def db_entries(self, op: str) -> int:
        return self.router.entries(op)

    # -- snapshot hooks ------------------------------------------------------------------

    def memo_state(self) -> dict:
        """The shard service's state, snapshotted per shard through the
        router (each shard contributes its partitions and message counters;
        a remote router pulls the server's tier), plus the key-encoder
        fingerprint and restorable CNN encoder weights."""
        state = self.router.state_dict()
        state["encoder"] = self._encoder_fingerprint()
        state["encoder_state"] = self._encoder_state()
        return state

    def _install_partitions(self, restored: list) -> None:
        for op, loc, db in restored:
            self.router.shard_for(loc)._dbs[(op, loc)] = db

    def load_memo_state(self, state: dict) -> None:
        """Validate and install a snapshot (single-layout or sharded, any
        shard count — partitions re-route by location); per-shard message
        counters are restored when the shard topology matches (and stay on
        the server for a remote router).

        On a remote transport the partitions are validated as raw trees and
        pushed verbatim in one snapshot message — rebuilding each database
        locally (ANN index included) only to re-serialize it for the wire
        would double the warm-start cost for nothing.  The executor's
        encoder state rides along so a later pull from the daemon can still
        warm-start a CNN deployment."""
        if self.remote:
            self._check_encoder(state)
            partitions = memo_state_partitions(state)
            for part in partitions:
                cfg = part["db"]["config"]
                self._check_partition_fields(
                    str(part["op"]), float(cfg["tau"]), str(cfg["value_mode"])
                )
            self.router.push_state(
                {
                    "layout": "single",
                    "encoder": self._encoder_fingerprint(),
                    "encoder_state": self._encoder_state(),
                    "partitions": list(partitions),
                }
            )
            return
        super().load_memo_state(state)
        if (
            state.get("layout") == "sharded"
            and int(state["n_shards"]) == self.n_shards
        ):
            for shard, shard_state in zip(self.router.shards, state["shards"]):
                shard.query_messages = int(shard_state["query_messages"])
                shard.insert_messages = int(shard_state["insert_messages"])

    def per_shard_db_stats(self, op: str | None = None):
        """Figure 14 companion: per-shard aggregated database statistics."""
        return self.router.per_shard_stats(op)

    def cache_stats(self, op: str):
        """Aggregated cache statistics across all workers (same accessor as
        the single-worker executor)."""
        from .memo_cache import CacheStats

        agg = CacheStats()
        for worker in self.workers:
            cache = worker.caches.get(op)
            if cache is None:
                return None
            agg.merge(cache.stats)
        return agg

    def coalesce_stats(self) -> CoalesceStats:
        """Fleet-wide key-message statistics, aggregated over all workers
        (the inherited ``coalescer`` attribute carries no traffic here)."""
        agg = CoalesceStats()
        for worker in self.workers:
            agg.merge(worker.coalescer.stats)
        return agg

    def per_worker_coalesce_stats(self) -> list[CoalesceStats]:
        """Figure 11 companion: each worker's key-message statistics."""
        return [worker.coalescer.stats for worker in self.workers]

    def worker_events(self, worker: int) -> list:
        return [ev for ev in self.events if ev.worker == worker]
