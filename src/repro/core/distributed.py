"""Distributed memoized execution: W simulated GPU workers x N database shards.

The paper's scalable deployment (Sections 4.3 and 5.2, Figure 14) spreads
chunk locations over GPUs and funnels all memoization traffic through the
memory node as *batched* key messages.  :class:`DistributedMemoizedExecutor`
reproduces that execution shape functionally:

- chunk locations are assigned to ``n_workers`` simulated GPU workers with
  :func:`repro.core.scaling.distribute_chunks` (contiguous blocks, the
  rechunking-friendly layout the scalability figures assume),
- each worker owns a **private memoization cache** and a
  :class:`~repro.core.coalescer.KeyCoalescer`; keys that miss the cache are
  buffered and leave the worker as coalesced messages,
- every emitted message is routed shard-wise by a
  :class:`~repro.core.memo_shard.MemoShardRouter` and serviced through the
  batched ``query_batch`` / ``insert_batch`` database API,
- misses are computed and their insertions dispatched as one batched
  message per sweep (insertion is asynchronous in the paper — nothing in
  the sweep depends on it),
- every event carries its ``worker`` and ``shard``, so the trace replays on
  the DES (:func:`repro.core.perfsim.simulate_iteration` with matching
  ``n_gpus`` / ``n_shards``) with the exact worker/shard locality of the
  numeric run.

Each op sweep runs in two phases: (A) per worker, encode keys, resolve
private-cache hits, and stream the remainder through the coalescer to the
shards; (B) in chunk order, serve hits (affine scale-corrected reuse) and
compute misses.  Because memoization reuse is scoped to a single chunk
location (Section 4.1) and a location is owned by exactly one worker and
one shard, deferring queries to message boundaries changes no outcome:
``n_workers=1, n_shards=1`` is numerically identical to
:class:`~repro.core.memo_engine.MemoizedExecutor` — chunk for chunk, case
for case.  (The one caveat is ``cache="global"``: a shared cache is visible
across locations *within* a sweep, so batching can defer same-sweep
cross-location hits; the paper-default private cache is exact.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coalescer import CoalesceStats, KeyCoalescer
from .config import MemoConfig
from .memo_cache import GlobalMemoCache, PrivateMemoCache
from .memo_engine import (
    CASE_CACHE,
    CASE_DB,
    CASE_DIRECT,
    CASE_MISS,
    MemoizedExecutor,
)
from .memo_shard import MemoShardRouter, ShardInsert, ShardQuery
from .scaling import GPUAssignment, distribute_chunks

__all__ = ["WorkerState", "DistributedMemoizedExecutor"]


@dataclass
class WorkerState:
    """One simulated GPU worker: its private cache per op and its coalescer."""

    worker_id: int
    coalescer: KeyCoalescer
    caches: dict = field(default_factory=dict)  # op -> cache | None
    #: queries buffered behind the coalescer, awaiting the next message
    pending: list = field(default_factory=list)  # [(slot dict, ShardQuery)]


class _Slot:
    """Resolution record of one chunk within a sweep (phase A -> phase B)."""

    __slots__ = ("case", "key", "meta", "hit", "outcome", "serves")

    def __init__(self) -> None:
        self.case = None
        self.key = None
        self.meta = None
        self.hit = None  # CacheHit on a cache hit
        self.outcome = None  # QueryOutcome once the shard answered
        self.serves = 0


class DistributedMemoizedExecutor(MemoizedExecutor):
    """Multi-worker, sharded-database memoized executor.

    Drop-in for :class:`MemoizedExecutor` (same constructor plus
    ``n_workers`` / ``n_shards``); the aggregate statistics *accessors* —
    :meth:`coalesce_stats`, :meth:`cache_stats`, :meth:`db_stats`,
    :meth:`db_entries` — keep the same meaning, with per-worker and
    per-shard breakdowns added.  Note that all key traffic flows through
    the per-worker coalescers: the inherited ``coalescer`` attribute is
    inert here, so read :meth:`coalesce_stats` /
    :meth:`per_worker_coalesce_stats`, never ``self.coalescer.stats``.
    """

    def __init__(
        self,
        ops,
        config: MemoConfig | None = None,
        chunk_size: int | None = None,
        encoder=None,
        n_locations: int | None = None,
        n_workers: int = 1,
        n_shards: int = 1,
    ) -> None:
        if n_workers < 1 or n_shards < 1:
            raise ValueError("n_workers and n_shards must be >= 1")
        super().__init__(
            ops,
            config=config,
            chunk_size=chunk_size,
            encoder=encoder,
            n_locations=n_locations,
        )
        self.n_workers = n_workers
        self.n_shards = n_shards
        self._build_distributed_state()

    def _build_distributed_state(self) -> None:
        cfg = self.config
        # the shard service owns every database partition and the workers own
        # every cache: null the base-class _OpState caches (they would sit
        # permanently empty and read as silently-zero stats); _OpState.dbs
        # stays empty too, and the stats accessors read the router instead
        for state in self._state.values():
            state.cache = None
        self.router = MemoShardRouter(self.n_shards, self._db_factory())
        self.workers = [
            WorkerState(worker_id=w, coalescer=KeyCoalescer())
            for w in range(self.n_workers)
        ]
        self._assignments: dict[tuple[str, int], GPUAssignment] = {}
        for op in cfg.memo_ops:
            for worker in self.workers:
                worker.caches[op] = self._make_worker_cache(op)

    def _make_worker_cache(self, op: str):
        cfg = self.config
        if cfg.cache == "private":
            return PrivateMemoCache(cfg.tau)
        if cfg.cache == "global":
            # per-worker capacity matches the worker's location share so the
            # fleet's total cache memory equals the single-worker baseline
            n = self.n_locations_for(op)
            share = -(-n // self.n_workers)
            return GlobalMemoCache(cfg.tau, capacity=max(1, share))
        return None

    def reset_state(self) -> None:
        super().reset_state()
        self._build_distributed_state()

    # -- worker / shard plumbing ---------------------------------------------------------

    def assignment_for(self, op: str, n_chunks: int) -> GPUAssignment:
        key = (op, n_chunks)
        assign = self._assignments.get(key)
        if assign is None:
            assign = distribute_chunks(n_chunks, self.n_workers)
            self._assignments[key] = assign
        return assign

    def flush_coalescers(self) -> None:
        for worker in self.workers:
            if worker.coalescer.flush() is not None:
                self._dispatch_queries(worker)
        self.coalescer.flush()  # unused by this class; kept consistent

    def _dispatch_queries(self, worker: WorkerState) -> None:
        """Send the worker's buffered message: route it shard-wise and store
        each outcome on its slot."""
        if not worker.pending:
            return
        queries = [q for _slot, q in worker.pending]
        outcomes = self.router.query_batch(queries)
        for (slot, _q), outcome in zip(worker.pending, outcomes):
            slot.outcome = outcome
        worker.pending = []

    # -- the sweep -----------------------------------------------------------------------

    def _sweep(self, op: str, chunks: list, inputs: list, compute) -> list:
        """Run one full-array op sweep over its chunks; returns per-chunk
        outputs in chunk order."""
        cfg = self.config
        n = len(chunks)
        self.op_counts[op] += n
        memoized_op = self.enabled and op in self._state
        in_warmup = self.outer_iteration < cfg.warmup_iterations
        slots = [_Slot() for _ in range(n)]
        assign = self.assignment_for(op, n)
        state = self._state.get(op)

        # -- phase A: per worker, cache probe + coalesced shard queries ------------
        if memoized_op and not in_warmup:
            for worker_id, owned in enumerate(assign.per_gpu):
                worker = self.workers[worker_id]
                for ci in owned:
                    slot = slots[ci]
                    input_chunk = inputs[ci]
                    slot.meta = self._chunk_meta(input_chunk)
                    slot.key = self.encoder.encode(input_chunk)
                    self._remember_key(op, chunks[ci].index, slot.key)
                    slot.serves = state.consecutive_serves.get(chunks[ci].index, 0)
                    must_refresh = slot.serves >= cfg.max_consecutive_reuse
                    if must_refresh:
                        slot.case = CASE_MISS
                        continue
                    cache = worker.caches.get(op)
                    if cache is not None:
                        hit = cache.lookup(
                            chunks[ci].index, slot.key, self.outer_iteration
                        )
                        if hit is not None:
                            slot.case = CASE_CACHE
                            slot.hit = hit
                            continue
                    # miss locally: the key joins the worker's next message
                    worker.pending.append(
                        (slot, ShardQuery(op=op, location=chunks[ci].index, key=slot.key))
                    )
                    if worker.coalescer.offer((op, chunks[ci].index)) is not None:
                        self._dispatch_queries(worker)
                # end of the worker's sweep: emit the tail message
                if worker.coalescer.flush() is not None:
                    self._dispatch_queries(worker)

        # -- phase B: serve hits, compute misses, batch insertions ------------------
        outputs: list = [None] * n
        inserts: list[ShardInsert] = []
        for ci in range(n):
            chunk = chunks[ci]
            slot = slots[ci]
            worker_id = assign.owner_of(ci)
            shard_id = self.router.shard_of(chunk.index)
            input_chunk = inputs[ci]
            if not memoized_op or in_warmup:
                out = compute(chunk, input_chunk)
                if memoized_op:
                    # warmup still populates the database so later iterations hit
                    key = self.encoder.encode(input_chunk)
                    meta = self._chunk_meta(input_chunk)
                    inserts.append(
                        ShardInsert(op=op, location=chunk.index, key=key, value=out, meta=meta)
                    )
                    self._remember_key(op, chunk.index, key)
                self._record(op, chunk.index, CASE_DIRECT, -2.0, 0, 0,
                             worker=worker_id, shard=shard_id)
                outputs[ci] = out
                continue

            cache = self.workers[worker_id].caches.get(op)
            if slot.case == CASE_CACHE:
                outputs[ci] = self._serve_cache_hit(
                    op, state, chunk, input_chunk, slot.key, slot.hit, slot.meta,
                    slot.serves, worker=worker_id, shard=shard_id,
                )
                continue

            outcome = slot.outcome
            if outcome is not None and outcome.hit:
                outputs[ci] = self._serve_db_hit(
                    op, state, chunk, input_chunk, slot.key, outcome, slot.meta,
                    slot.serves, cache, worker=worker_id, shard=shard_id,
                )
                continue

            # miss (or forced refresh): original computation + batched insertion
            out = compute(chunk, input_chunk)
            outputs[ci] = self._finish_miss(
                op, state, chunk, slot.key, out, slot.meta, outcome, cache,
                store=lambda: inserts.append(
                    ShardInsert(op=op, location=chunk.index, key=slot.key,
                                value=out, meta=slot.meta)
                ),
                worker=worker_id, shard=shard_id,
            )

        if inserts:
            self.router.insert_batch(inserts)
        return outputs

    # -- the four memoized full-array operations ----------------------------------------

    def fu1d(self, u: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(u.shape[0]))
        parts = self._sweep(
            "Fu1D", chunks, [u[c.slice] for c in chunks],
            lambda c, x: self.ops.fu1d(x),
        )
        return np.concatenate(parts, axis=0)

    def fu1d_adj(self, u1: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(u1.shape[0]))
        parts = self._sweep(
            "Fu1D*", chunks, [u1[c.slice] for c in chunks],
            lambda c, x: self.ops.fu1d_adj(x),
        )
        return np.concatenate(parts, axis=0)

    def fu2d(self, u1: np.ndarray, subtract: np.ndarray | None = None) -> np.ndarray:
        # memoize the linear transform only; the fused kernel's dhat
        # subtraction is re-applied outside the memoized region (see
        # MemoizedExecutor._run_fu2d)
        chunks = list(self._chunks(u1.shape[1]))
        parts = self._sweep(
            "Fu2D", chunks, [u1[:, c.slice, :] for c in chunks],
            lambda c, x: self.ops.fu2d(x, rows=c.slice),
        )
        if subtract is not None:
            parts = [p - subtract[:, c.slice, :] for c, p in zip(chunks, parts)]
        return np.concatenate(parts, axis=1)

    def fu2d_adj(self, r: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(r.shape[1]))
        parts = self._sweep(
            "Fu2D*", chunks, [r[:, c.slice, :] for c in chunks],
            lambda c, x: self.ops.fu2d_adj(x, rows=c.slice),
        )
        return np.concatenate(parts, axis=1)

    # -- statistics ----------------------------------------------------------------------

    def db_stats(self, op: str):
        return self.router.stats(op)

    def db_entries(self, op: str) -> int:
        return self.router.entries(op)

    def per_shard_db_stats(self, op: str | None = None):
        """Figure 14 companion: per-shard aggregated database statistics."""
        return self.router.per_shard_stats(op)

    def cache_stats(self, op: str):
        """Aggregated cache statistics across all workers (same accessor as
        the single-worker executor)."""
        from .memo_cache import CacheStats

        agg = CacheStats()
        for worker in self.workers:
            cache = worker.caches.get(op)
            if cache is None:
                return None
            agg.merge(cache.stats)
        return agg

    def coalesce_stats(self) -> CoalesceStats:
        """Fleet-wide key-message statistics, aggregated over all workers
        (the inherited ``coalescer`` attribute carries no traffic here)."""
        agg = CoalesceStats()
        for worker in self.workers:
            agg.merge(worker.coalescer.stats)
        return agg

    def per_worker_coalesce_stats(self) -> list[CoalesceStats]:
        """Figure 11 companion: each worker's key-message statistics."""
        return [worker.coalescer.stats for worker in self.workers]

    def worker_events(self, worker: int) -> list:
        return [ev for ev in self.events if ev.worker == worker]
