"""Configuration for the mLR memoized solver."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..obs.config import ObsConfig

__all__ = ["MemoConfig", "MLRConfig", "ObsConfig", "PipelineConfig"]


@dataclass
class PipelineConfig:
    """Knobs of the streaming execution mode (:mod:`repro.pipeline`).

    Defined here so the config layer stays free of the pipeline subsystem
    (which wraps core executors, not the other way around); it is
    re-exported as :class:`repro.pipeline.PipelineConfig`.

    queue_depth:
        Capacity of each inter-stage queue (input slabs the reader may run
        ahead, output slabs the writer may lag).  Depth 1 is strict
        double-buffering; larger depths absorb burstier stage-time
        variation at the cost of resident slabs.
    ingest_queue_depth:
        Block capacity of a :class:`~repro.pipeline.ingest.StreamingIngest`
        source (backpressure on the instrument/producer side).

    (SSD prefetch lookahead is a property of the chunk *source* — pass
    ``prefetch_depth`` to :class:`~repro.pipeline.reader.SpillSource`.)
    """

    queue_depth: int = 2
    ingest_queue_depth: int = 4

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.ingest_queue_depth < 1:
            raise ValueError(
                f"ingest_queue_depth must be >= 1, got {self.ingest_queue_depth}"
            )


@dataclass
class MemoConfig:
    """Memoization-engine knobs (paper Sections 3--4).

    tau:
        Cosine-similarity acceptance threshold (default 0.92, the paper's
        evaluation default; Section 4.5 discusses 0.9 for PCB-class features
        vs 0.95 for fine biological structure).
    encoder:
        ``"pool"`` — deterministic downsample-to-key encoder (fast, default
        for large sweeps); ``"cnn"`` — the paper's contrastively trained
        3-layer CNN (pass a trained :class:`~repro.nn.ChunkEncoder` or let
        the solver train one during warmup).
    cache:
        ``"private"`` (paper default: one single-entry FIFO cache per chunk
        location), ``"global"`` (the baseline it is compared against), or
        ``None`` (no local cache — every lookup goes to the memo database).
    db_value_mode:
        Value representation of the memoization database: ``"array"``
        (default — zero-copy in-memory ndarrays; hits skip the
        encode/decode round-trip while byte statistics still report the
        serialized frame size) or ``"bytes"`` (values stored serialized, the
        wire format the spill/offload paths use).
    transport / server_address / replication:
        Where the memoization database tier lives.  ``"inproc"`` (default)
        keeps the shard router in this process; ``"tcp"`` routes all
        query/insert traffic to :class:`~repro.net.server.MemoServerDaemon`
        daemons at ``server_address`` — a single ``"host:port"`` (or
        ``(host, port)`` pair), a comma-separated ``"h1:p1,h2:p2"`` string,
        or a list of either — so multiple hosts share one memo tier.  More
        than one address (or ``replication=N`` over a longer list) runs the
        replicated client: inserts fan out to every live replica, queries
        fail over per shard, and a killed replica degrades throughput, not
        results.  The remote client is fail-open: an unreachable tier
        degrades to cold compute, never a failed reconstruction.  Loopback
        ``tcp`` is bit-identical to ``inproc`` at every workers x shards
        layout, replicated or not.
    heartbeat_interval_s:
        Replicated-client background health loop period (ping + circuit
        probes + anti-entropy resync of rejoined replicas).  ``None``
        (default) disables the loop — deterministic runs resync only at
        explicit points.
    """

    tau: float = 0.92
    encoder: str = "pool"
    key_hw: int = 8
    key_depth: int = 16
    embed_dim: int = 60
    cache: str | None = "private"
    index_clusters: int = 16
    index_nprobe: int = 4
    index_train_min: int = 32
    db_value_mode: str = "array"
    transport: str = "inproc"
    server_address: str | tuple | list | None = None
    replication: int | None = None
    heartbeat_interval_s: float | None = None
    memo_ops: tuple[str, ...] = ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*")
    track_similarity_census: bool = False
    warmup_iterations: int = 1
    #: The FFT operations are linear, and cosine similarity (the paper's
    #: Eq. 3 gate) is scale-blind while residual magnitudes shrink across
    #: ADMM iterations.  Scale-corrected reuse multiplies a retrieved value
    #: by ||query chunk|| / ||stored chunk||, which keeps reuse sound as the
    #: solver converges; disable to study the raw-reuse failure mode.
    scale_correction: bool = True
    #: Bounded staleness: a chunk location serves at most this many
    #: consecutive memoized results before the engine forces a recompute
    #: (which refreshes the database and cache).  The paper's beamline-scale
    #: runs self-limit — 53% of lookups still miss at tau=0.92 (Sec. 6.4) —
    #: but small smooth synthetic problems converge so cleanly that the
    #: similarity gate alone never rejects, chaining one stale value forever
    #: and biasing the gradient.  The refresh bound restores the paper's
    #: intermittent-reuse regime; set to a huge value to disable.
    max_consecutive_reuse: int = 4

    def __post_init__(self) -> None:
        if not (0.0 < self.tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if self.encoder not in ("pool", "cnn"):
            raise ValueError(f"encoder must be 'pool' or 'cnn', got {self.encoder!r}")
        if self.cache not in ("private", "global", None):
            raise ValueError(f"cache must be 'private', 'global' or None")
        if self.db_value_mode not in ("array", "bytes"):
            raise ValueError(
                f"db_value_mode must be 'array' or 'bytes', got {self.db_value_mode!r}"
            )
        if self.key_hw < 2:
            raise ValueError(f"key_hw must be >= 2, got {self.key_hw}")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        if self.transport not in ("inproc", "tcp"):
            raise ValueError(
                f"transport must be 'inproc' or 'tcp', got {self.transport!r}"
            )
        if self.transport == "tcp" and self.server_address is None:
            raise ValueError("transport='tcp' requires a server_address")
        if self.server_address is not None:
            # fail fast on malformed addresses at config time, naming the
            # bad element, instead of deep inside client construction
            from ..net.wire import parse_address_list

            addresses = parse_address_list(self.server_address)
            if self.replication is not None:
                if not isinstance(self.replication, int) or isinstance(
                    self.replication, bool
                ):
                    raise ValueError(
                        f"replication must be an int, got {self.replication!r}"
                    )
                if not (1 <= self.replication <= len(addresses)):
                    raise ValueError(
                        f"replication={self.replication} needs 1..{len(addresses)} "
                        f"(one address per replica), got {len(addresses)} addresses"
                    )
        elif self.replication is not None:
            raise ValueError("replication requires server_address")
        if self.heartbeat_interval_s is not None and self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )


@dataclass
class MLRConfig:
    """Top-level mLR configuration: ADMM + memoization + chunking.

    n_workers / n_shards:
        Simulated GPU workers and memoization-database shards (paper
        Sections 4.3 and 5.2).  ``1 x 1`` (the default) runs the
        single-worker :class:`~repro.core.memo_engine.MemoizedExecutor`;
        anything larger runs the sharded
        :class:`~repro.core.distributed.DistributedMemoizedExecutor`, which
        is numerically identical for the paper-default private cache.
    pipeline:
        ``None`` (the default) executes op sweeps monolithically; a
        :class:`~repro.pipeline.PipelineConfig` wraps the executor in the
        streaming :class:`~repro.pipeline.PipelinedExecutor` — overlapped
        read -> memoized compute -> write with bounded queues, bit-identical
        to the monolithic path.
    memo_snapshot:
        Warm-start source for the memoization database tier: a snapshot
        directory written by :func:`repro.service.save_memo_snapshot` (or
        :meth:`~repro.core.mlr_solver.MLRSolver.save_memo_snapshot`), or an
        in-memory state tree from an executor's ``memo_state()``.  Loaded
        into the executor at solver construction; ``None`` starts cold.
        The snapshot must have been taken at the same tau / value mode —
        mismatches fail fast with a ``ValueError``.
    obs:
        Observability knobs (:class:`~repro.obs.ObsConfig`).  When set, the
        solver installs it as the process-wide :mod:`repro.obs` runtime at
        construction — metrics registry, trace spans, JSONL export.
        ``None`` (the default) leaves the runtime alone, which means
        observability stays off unless ``REPRO_OBS=1`` is in the
        environment.
    """

    chunk_size: int = 16
    memo: MemoConfig = field(default_factory=MemoConfig)
    n_workers: int = 1
    n_shards: int = 1
    pipeline: PipelineConfig | None = None
    memo_snapshot: str | os.PathLike | dict | None = None
    obs: ObsConfig | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.memo, MemoConfig):
            raise ValueError(
                f"memo must be a MemoConfig, got {type(self.memo).__name__}"
            )
        if self.pipeline is not None and not isinstance(self.pipeline, PipelineConfig):
            raise ValueError(
                f"pipeline must be a PipelineConfig or None, "
                f"got {type(self.pipeline).__name__}"
            )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.memo_snapshot is not None and not isinstance(
            self.memo_snapshot, (str, os.PathLike, dict)
        ):
            raise ValueError(
                "memo_snapshot must be a snapshot path, a memo-state tree or "
                f"None, got {type(self.memo_snapshot).__name__}"
            )
        if self.obs is not None and not isinstance(self.obs, ObsConfig):
            raise ValueError(
                f"obs must be an ObsConfig or None, got {type(self.obs).__name__}"
            )
