"""Trace-driven performance simulation at paper scale.

The real (scaled-down) solver produces numerics — hit/miss traces, accuracy,
convergence.  This module replays those traces on the modeled Polaris
platform (:mod:`repro.cluster`) at the paper's problem dimensions to
regenerate the timing figures:

- the chunked GPU pipeline of Figure 1 (H2D / FFT / D2H per chunk, overlap
  through separate PCIe and compute engines),
- the memoization pipeline of Figure 3 (encode, coalesced query, value
  retrieval, asynchronous insertion),
- operation cancellation/fusion variants (Figure 5, Algorithm 1 vs 2),
- multi-GPU / multi-node distribution with inter-node rechunking exchanges
  and the shared memory-node NIC as a contention point (Figures 14--16).

Everything is deterministic; no wall clocks are involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.costmodel import CostModel, ProblemDims
from ..cluster.des import Timeline
from ..cluster.topology import ClusterModel
from .memo_engine import CASE_CACHE, CASE_DB, CASE_MISS, MemoEvent
from .memo_shard import shard_of_location
from .scaling import distribute_chunks

__all__ = [
    "IterationPerf",
    "PipelinePerf",
    "simulate_iteration",
    "simulate_pipeline",
    "phase_times",
    "total_runtime",
    "memo_case_breakdown",
    "coalesce_comparison",
]

#: op phases per inner iteration for each pipeline variant
_VARIANT_OPS = {
    "alg1": ("Fu1D", "Fu2D", "F2D*", "F2D", "Fu2D*", "Fu1D*"),
    "canc": ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"),
    "canc_fused": ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"),
}

MEMOIZABLE = ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*")


@dataclass
class IterationPerf:
    """Timing artifacts of one simulated ADMM iteration."""

    timeline: Timeline
    cluster: ClusterModel
    lsp_time: float
    phase_durations: dict[str, float]
    op_phase_times: dict[str, float] = field(default_factory=dict)
    query_latencies: list[float] = field(default_factory=list)
    gpu_busy: float = 0.0

    @property
    def iteration_time(self) -> float:
        return self.lsp_time + sum(
            v for k, v in self.phase_durations.items() if k != "lsp"
        )

    @property
    def exposed_fraction(self) -> float:
        """Fraction of LSP wall time the GPUs sit idle (transfers/queries
        exposed on the critical path)."""
        if self.lsp_time <= 0:
            return 0.0
        per_gpu_busy = self.gpu_busy / max(1, self.cluster.n_gpus)
        return max(0.0, 1.0 - per_gpu_busy / self.lsp_time)

    def memory_nic_utilization(self) -> float:
        if self.cluster.memory_nic is None:
            return 0.0
        return self.timeline.busy_between(
            self.cluster.memory_nic, 0.0, self.lsp_time
        ) / (self.cluster.memory_nic.capacity * self.lsp_time)


def _trace_lookup(
    trace: list[MemoEvent] | None, n_paper_chunks: int, by_location: bool = False
):
    """Map (inner, op, paper-chunk) -> memoization case from a sim trace.

    The sim-scale run has fewer chunk locations than the paper-scale replay;
    paper chunk ``j`` inherits the decision of the sim chunk at the same
    relative position.

    With ``by_location=True`` the mapping scales chunk *positions* instead of
    round-robin interleaving: paper chunk ``j`` inherits sim location
    ``j * n_sim // n_paper``.  Because both scales distribute contiguous
    location blocks over workers, this preserves the worker and shard
    locality a :class:`~repro.core.distributed.DistributedMemoizedExecutor`
    trace carries — the mode the sharded scaling experiment replays.
    """
    if trace is None:
        return None
    if by_location:
        by_loc: dict[tuple[int, str], dict[int, str]] = {}
        # location counts are per op (Fu1D sweeps the volume axis, Fu2D the
        # detector rows), so the position scaling must be per group too
        n_sim_by: dict[tuple[int, str], int] = {}
        for ev in trace:
            key = (ev.inner, ev.op)
            by_loc.setdefault(key, {})[ev.chunk] = ev.case
            n_sim_by[key] = max(n_sim_by.get(key, 0), ev.chunk + 1)

        def lookup(inner: int, op: str, chunk: int) -> str:
            cases = by_loc.get((inner, op))
            if not cases:
                return CASE_MISS
            n_sim = n_sim_by[(inner, op)]
            sim_chunk = chunk * n_sim // max(1, n_paper_chunks)
            return cases.get(sim_chunk, CASE_MISS)

        return lookup

    by_key: dict[tuple[int, str], list[str]] = {}
    for ev in trace:
        by_key.setdefault((ev.inner, ev.op), []).append(ev.case)

    def lookup(inner: int, op: str, chunk: int) -> str:
        cases = by_key.get((inner, op))
        if not cases:
            return CASE_MISS
        # round-robin mapping interleaves the sim-scale case pattern across
        # the paper-scale chunks, so per-GPU case mixes stay balanced
        return cases[chunk % len(cases)]

    return lookup


def simulate_iteration(
    dims: ProblemDims,
    cost: CostModel | None = None,
    n_gpus: int = 1,
    variant: str = "canc_fused",
    n_inner: int = 4,
    trace: list[MemoEvent] | None = None,
    coalesce: bool = True,
    db_keys: int = 100_000,
    local_cache: bool = True,
    n_shards: int = 1,
    trace_by_location: bool = False,
) -> IterationPerf:
    """Schedule one outer ADMM iteration's LSP on the modeled platform.

    ``n_shards`` shards the memory node's index database over independent
    service engines: each coalesced message is split into per-shard
    sub-batches using the same consistent location -> shard routing the
    numeric :class:`~repro.core.distributed.DistributedMemoizedExecutor`
    uses, each shard searches only its ~1/N share of the keys, and the
    sub-batches are serviced concurrently — the Figure 14 workers x shards
    scaling surface.
    """
    if variant not in _VARIANT_OPS:
        raise ValueError(f"variant must be one of {sorted(_VARIANT_OPS)}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    cost = cost or CostModel()
    tl = Timeline()
    cluster = ClusterModel(tl, n_gpus=n_gpus, spec=cost.node, n_index_shards=n_shards)
    assign = distribute_chunks(dims.n_chunks, n_gpus)
    lookup = _trace_lookup(trace, dims.n_chunks, by_location=trace_by_location)
    keys_per_msg = cost.keys_per_coalesced_message() if coalesce else 1

    op_phase_start: dict[str, float] = {}
    barrier = None
    for inner in range(n_inner):
        for op in _VARIANT_OPS[variant]:
            phase_t0 = tl.makespan
            last_tasks = []
            # group queries per GPU for coalescing
            pending_batch: dict[int, list] = {g: [] for g in range(n_gpus)}
            # insertions are asynchronous and low-priority: submit them after
            # the phase's latency-critical messages (NIC QoS for small
            # control messages over bulk stores)
            deferred_inserts: list = []

            # op/pending_batch rebind every phase; pin this phase's values
            def flush_batch(gpu_idx: int, op=op, pending_batch=pending_batch):
                batch = pending_batch[gpu_idx]
                if not batch:
                    return
                gpu = cluster.gpus[gpu_idx]
                nbytes = max(len(batch) * cost.key_bytes, cost.key_bytes)
                send = tl.add(
                    f"qsend/{op}", cluster.nic_of(gpu), cost.net_time(nbytes),
                    deps=[t for t, _ in batch],
                )
                # the memory node routes the message's keys to their owning
                # index shards; sub-batches are serviced concurrently, each
                # searching only its share of the key population
                groups: dict[int, list] = {}
                for entry in batch:
                    shard = shard_of_location(entry[1], n_shards)
                    groups.setdefault(shard, []).append(entry)
                shard_keys = max(1, db_keys // n_shards)
                for shard, group in sorted(groups.items()):
                    svc = tl.add(
                        f"qsvc/{op}",
                        cluster.index_shard(shard),
                        cost.index_query_time(shard_keys, batch=len(group)),
                        deps=[send],
                    )
                    gbytes = max(len(group) * cost.key_bytes, cost.key_bytes)
                    resp = tl.add(
                        f"qresp/{op}", cluster.memory_nic, cost.net_time(gbytes),
                        deps=[svc],
                    )
                    for enc_task, _chunk in group:
                        # zero-width marker task: its (end - release) is the
                        # per-query latency collected from tl.tasks below
                        tl.add(
                            f"query/{op}", None, 0.0, deps=[resp],
                            release=enc_task.end,
                        )
                pending_batch[gpu_idx] = []

            for chunk in range(dims.n_chunks):
                gpu_idx = assign.owner_of(chunk)
                gpu = cluster.gpus[gpu_idx]
                case = (
                    lookup(inner, op, chunk)
                    if (lookup is not None and op in MEMOIZABLE)
                    else None
                )
                deps = [barrier] if barrier is not None else []
                if case in (CASE_CACHE, CASE_DB, CASE_MISS):
                    enc = tl.add(
                        f"encode/{op}", cluster.cpu_of(gpu), cost.encode_time(dims),
                        deps=deps,
                    )
                    if case == CASE_CACHE and local_cache:
                        cmp_t = tl.add(
                            f"cachecmp/{op}", cluster.cpu_of(gpu),
                            cost.cache_compare_time(1), deps=[enc],
                        )
                        last_tasks.append(cmp_t)
                        continue
                    pending_batch[gpu_idx].append((enc, chunk))
                    if len(pending_batch[gpu_idx]) >= keys_per_msg:
                        flush_batch(gpu_idx)
                    if case == CASE_DB:
                        # value retrieval: memory-node NIC then compute-node NIC
                        fetch = tl.add(
                            f"vfetch/{op}", cluster.memory_nic,
                            cost.net_time(cost.value_fetch_wire_bytes(dims)),
                            deps=deps + [enc],
                        )
                        recv = tl.add(
                            f"vrecv/{op}", cluster.nic_of(gpu),
                            cost.net_time(cost.value_fetch_wire_bytes(dims)),
                            deps=[fetch],
                        )
                        last_tasks.append(recv)
                        continue
                    # CASE_MISS falls through to the compute pipeline below;
                    # the asynchronous insertion is scheduled after it.
                # -- the Figure 1 chunk pipeline --------------------------------
                h2d = tl.add(f"h2d/{op}", gpu.pcie, cost.h2d_time(dims), deps=deps)
                cdeps = [h2d]
                if variant == "canc_fused" and op == "Fu2D":
                    # the fused kernel's extra dhat-chunk argument rides a
                    # second transfer that overlaps the previous compute
                    extra = tl.add(
                        f"h2d_dhat/{op}", gpu.pcie, cost.h2d_time(dims), deps=deps
                    )
                    cdeps.append(extra)
                comp = tl.add(
                    f"fft/{op}", gpu.compute, cost.fft_time(op, dims), deps=cdeps
                )
                d2h = tl.add(f"d2h/{op}", gpu.pcie, cost.d2h_time(dims), deps=[comp])
                tail = d2h
                if variant == "canc" and op == "Fu2D":
                    # un-fused: frequency-domain subtraction on the host CPU
                    tail = tl.add(
                        f"cpusub/{op}", cluster.cpu_of(gpu),
                        cost.cpu_subtract_time(dims), deps=[d2h],
                    )
                if case == CASE_MISS:
                    deferred_inserts.append((gpu, tail))
                last_tasks.append(tail)
            for g in range(n_gpus):
                flush_batch(g)
            for gpu, dep in deferred_inserts:
                # async insertion: value store to the memory node, off the
                # critical path (nothing depends on it)
                tl.add(
                    f"insert/{op}", cluster.nic_of(gpu),
                    cost.net_time(cost.value_fetch_wire_bytes(dims)),
                    deps=[dep],
                )
            # rechunking boundary: intra-node via NVLink, inter-node via NICs
            if n_gpus > 1:
                bytes_per_gpu = dims.chunk_bytes * dims.n_chunks / n_gpus
                for gpu in cluster.gpus:
                    if cluster.n_nodes > 1:
                        cross = bytes_per_gpu * (cluster.n_nodes - 1) / cluster.n_nodes
                        last_tasks.append(
                            tl.add(
                                f"xnode/{op}", cluster.nic_of(gpu),
                                cost.net_time(cross), deps=list(last_tasks[-1:]),
                            )
                        )
                    local = bytes_per_gpu / max(1, cluster.n_nodes)
                    last_tasks.append(
                        tl.add(f"nvl/{op}", gpu.compute, cost.nvlink_time(local))
                    )
            barrier = tl.add(f"barrier/{op}/{inner}", None, 0.0, deps=last_tasks)
            op_phase_start[op] = op_phase_start.get(op, 0.0) + (tl.makespan - phase_t0)

    lsp_time = tl.makespan
    gpu_busy = sum(g.compute.busy_time for g in cluster.gpus)
    sched = _cpu_phase_durations(dims, cost)
    return IterationPerf(
        timeline=tl,
        cluster=cluster,
        lsp_time=lsp_time,
        phase_durations={"lsp": lsp_time, **sched},
        op_phase_times={k: v / n_inner for k, v in op_phase_start.items()},
        query_latencies=[
            t.latency for t in tl.tasks if t.name.startswith("query/")
        ],
        gpu_busy=gpu_busy,
    )


@dataclass
class PipelinePerf:
    """Overlapped-phase timing of a read -> compute -> write chunk pipeline.

    The serial baseline pays ``sum(stage)`` per chunk; the pipelined
    makespan approaches ``max(stage totals) + fill/drain`` — the bottleneck
    stage plus the latency of priming and emptying the queues.  ``speedup``
    is therefore bounded by ``speedup_bound = serial / max(stage totals)``:
    overlap can hide everything *except* the bottleneck stage.
    """

    n_chunks: int
    queue_depth: int
    n_workers: int
    read_time: float
    compute_time: float
    write_time: float
    pipelined_time: float

    @property
    def serial_time(self) -> float:
        """No overlap: every chunk pays read + compute + write end to end."""
        return self.n_chunks * (self.read_time + self.compute_time + self.write_time)

    @property
    def stage_totals(self) -> dict[str, float]:
        """Aggregate busy time per stage engine (compute divided over its
        ``n_workers`` parallel engines)."""
        return {
            "read": self.n_chunks * self.read_time,
            "compute": self.n_chunks * self.compute_time / self.n_workers,
            "write": self.n_chunks * self.write_time,
        }

    @property
    def bottleneck_time(self) -> float:
        return max(self.stage_totals.values())

    @property
    def fill_drain_time(self) -> float:
        """Pipeline priming/emptying latency exposed beyond the bottleneck."""
        return self.pipelined_time - self.bottleneck_time

    @property
    def io_time(self) -> float:
        return self.read_time + self.write_time

    @property
    def speedup(self) -> float:
        return self.serial_time / self.pipelined_time if self.pipelined_time else 1.0

    @property
    def speedup_bound(self) -> float:
        return self.serial_time / self.bottleneck_time if self.bottleneck_time else 1.0


def simulate_pipeline(
    n_chunks: int,
    read_time: float,
    compute_time: float,
    write_time: float,
    queue_depth: int = 2,
    n_workers: int = 1,
) -> PipelinePerf:
    """Schedule one read -> compute -> write sweep on the DES.

    Three serially shared engines — one reader (SSD/ingest), ``n_workers``
    compute engines, one writer — process ``n_chunks`` chunks.  Bounded
    queues of ``queue_depth`` apply backpressure: the read of chunk ``i``
    cannot start until the compute of chunk ``i - queue_depth`` finished
    (its input-queue slot freed), and the compute of chunk ``i`` waits for
    the write of chunk ``i - queue_depth`` likewise.  The makespan realizes
    the ``max(stage) + fill/drain`` overlapped-phase model instead of the
    serial ``sum(stage)``.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if min(read_time, compute_time, write_time) < 0:
        raise ValueError("stage times must be >= 0")
    tl = Timeline()
    reader = tl.resource("reader")
    compute = tl.resource("compute", capacity=n_workers)
    writer = tl.resource("writer")
    reads: list = []
    computes: list = []
    writes: list = []
    for i in range(n_chunks):
        rdeps = [computes[i - queue_depth]] if i >= queue_depth else []
        r = tl.add(f"read/{i}", reader, read_time, deps=rdeps)
        cdeps = [r] + ([writes[i - queue_depth]] if i >= queue_depth else [])
        c = tl.add(f"compute/{i}", compute, compute_time, deps=cdeps)
        w = tl.add(f"write/{i}", writer, write_time, deps=[c])
        reads.append(r)
        computes.append(c)
        writes.append(w)
    return PipelinePerf(
        n_chunks=n_chunks,
        queue_depth=queue_depth,
        n_workers=n_workers,
        read_time=read_time,
        compute_time=compute_time,
        write_time=write_time,
        pipelined_time=tl.makespan,
    )


def _cpu_phase_durations(dims: ProblemDims, cost: CostModel) -> dict[str, float]:
    vol = dims.n**3
    cpu = cost.node.cpu.complex_elemwise_per_s
    return {
        "rsp": 10.0 * vol / cpu,
        "lambda_update": 6.0 * vol / cpu,
        "penalty_update": 4.0 * vol / cpu,
    }


def phase_times(dims: ProblemDims, cost: CostModel | None = None, **kwargs) -> dict[str, float]:
    """Per-phase durations of one iteration (Figure 2's LSP-dominance data)."""
    perf = simulate_iteration(dims, cost, **kwargs)
    return dict(perf.phase_durations)


def total_runtime(
    dims: ProblemDims,
    n_outer: int,
    cost: CostModel | None = None,
    **kwargs,
) -> float:
    """End-to-end runtime: the steady-state iteration replayed ``n_outer``
    times (the memoization trace already reflects warmup/hit evolution when
    the caller aggregates per-iteration traces)."""
    perf = simulate_iteration(dims, cost, **kwargs)
    return n_outer * perf.iteration_time


def memo_case_breakdown(
    dims: ProblemDims,
    cost: CostModel | None = None,
    db_keys: int = 1_000_000,
) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 10: per-op, per-case component times for one chunk.

    Cases: ``orig`` (no memoization), ``fail`` (failed memoization: original
    computation + insertion overheads), ``suc`` (value retrieved from the
    remote database), ``cached`` (served by the local memoization cache).
    Components: ``orig_comp``, ``key_encoding``, ``communication``,
    ``similarity_search``, ``others``.
    """
    cost = cost or CostModel()
    out: dict[str, dict[str, dict[str, float]]] = {}
    for op in MEMOIZABLE:
        comp = cost.fft_time(op, dims) + cost.h2d_time(dims) + cost.d2h_time(dims)
        enc = cost.encode_time(dims)
        search = cost.index_query_time(db_keys)
        key_comm = 2 * cost.net_time(cost.coalesce_payload_bytes) / max(
            1, cost.keys_per_coalesced_message()
        )
        value_comm = 2 * cost.net_time(cost.value_fetch_wire_bytes(dims))
        out[op] = {
            "orig": {"orig_comp": comp},
            "fail": {
                "orig_comp": comp,
                "key_encoding": enc,
                "similarity_search": search,
                "communication": key_comm,
                "others": cost.rpc_overhead_s,
            },
            "suc": {
                "key_encoding": enc,
                "similarity_search": search,
                "communication": key_comm + value_comm,
                "others": cost.value_db_service_s,
            },
            "cached": {
                "key_encoding": enc,
                "similarity_search": cost.cache_compare_time(1),
                "others": cost.rpc_overhead_s,
            },
        }
    return out


def coalesce_comparison(
    dims: ProblemDims,
    cost: CostModel | None = None,
    db_keys: int = 1_000_000,
) -> dict[str, dict[str, float]]:
    """Figure 11: per-key communication + similarity-search time with and
    without key coalescing."""
    cost = cost or CostModel()
    k = cost.keys_per_coalesced_message()
    without = {
        "communication": 2 * cost.net_time(cost.key_bytes),
        "similarity_search": cost.index_query_time(db_keys, batch=1),
    }
    with_coalesce = {
        "communication": 2 * cost.net_time(cost.coalesce_payload_bytes) / k,
        "similarity_search": cost.index_query_time(db_keys, batch=k) / k,
    }
    return {"without": without, "with": with_coalesce}
