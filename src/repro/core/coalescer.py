"""Key coalescing (paper Section 4.3.3): batch small key messages to 4 KB.

A single memoization key is under 1 KB — far too small to utilize a
Slingshot link.  The compute node therefore buffers keys *across chunks*
(never within a chunk, whose four FFT ops are data-dependent) and flushes
once the accumulated payload reaches 4 KB, which reaches ~95% of link
bandwidth on the evaluation platform and enables batched index lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CoalesceStats", "KeyCoalescer"]


@dataclass
class CoalesceStats:
    keys: int = 0
    messages: int = 0
    bytes_sent: int = 0
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        return self.keys / self.messages if self.messages else 0.0

    def merge(self, other: "CoalesceStats") -> "CoalesceStats":
        """Accumulate another coalescer's counters (e.g. per-worker stats
        into a fleet-wide aggregate)."""
        self.keys += other.keys
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.batch_sizes.extend(other.batch_sizes)
        return self


class KeyCoalescer:
    """Accumulate key payloads; emit batches at the payload threshold."""

    def __init__(self, key_bytes: int = 240, payload_bytes: int = 4096) -> None:
        if key_bytes < 1 or payload_bytes < key_bytes:
            raise ValueError("payload_bytes must be >= key_bytes >= 1")
        self.key_bytes = key_bytes
        self.payload_bytes = payload_bytes
        self._pending: list = []
        self.stats = CoalesceStats()

    @property
    def keys_per_message(self) -> int:
        return self.payload_bytes // self.key_bytes

    def offer(self, item) -> list | None:
        """Add one key; returns the flushed batch when the payload fills."""
        self._pending.append(item)
        self.stats.keys += 1
        if len(self._pending) * self.key_bytes >= self.payload_bytes:
            return self.flush()
        return None

    def flush(self) -> list | None:
        """Force-emit whatever is buffered (end of a chunk sweep)."""
        if not self._pending:
            return None
        batch = self._pending
        self._pending = []
        self.stats.messages += 1
        self.stats.bytes_sent += len(batch) * self.key_bytes
        self.stats.batch_sizes.append(len(batch))
        return batch

    def discard(self) -> int:
        """Drop buffered keys without emitting a message (an aborted sweep
        must not leak its keys into the next sweep's statistics); returns
        the number discarded.  The offered-key count is rolled back so
        ``stats.keys`` keeps meaning *keys sent*."""
        n = len(self._pending)
        self._pending = []
        self.stats.keys -= n
        return n

    @property
    def pending(self) -> int:
        return len(self._pending)
