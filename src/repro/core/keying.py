"""Chunk -> key pipeline: downsample, (optionally) CNN-encode.

The memoization database is keyed by a low-dimensional representation of
each FFT operation's input chunk.  Two encoders are provided:

``PoolKeyEncoder``
    Deterministic: collapse the chunk's slab axis, block-average the
    remaining 2-D complex image to ``key_hw x key_hw``, and flatten
    real/imag into a ``2*key_hw**2`` float vector.  Linear, so cosine
    similarity of keys tracks cosine similarity of chunks by construction.
    This is the default for large experiment sweeps.

``CNNKeyEncoder``
    The paper's approach: the pooled image feeds the contrastively trained
    3-layer CNN (optionally INT8-quantized), producing an ``embed_dim`` key.
    Distance structure is learned rather than inherited (Section 4.3.1).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..nn.cnn import ChunkEncoder
from ..nn.quantize import QuantizedEncoder

__all__ = [
    "chunk_to_image",
    "chunk_to_stack",
    "pool3d",
    "state_digest",
    "PoolKeyEncoder",
    "CNNKeyEncoder",
]


def chunk_to_image(chunk: np.ndarray, hw: int) -> np.ndarray:
    """Collapse a 3-D chunk to an ``hw x hw`` complex image.

    The slab (chunk) axis is averaged first, then the remaining 2-D image is
    block-averaged; axes thinner than ``hw`` are nearest-neighbor upsampled
    so the output is always exactly ``(hw, hw)`` — the CNN encoder needs a
    fixed input size regardless of chunk geometry.
    """
    chunk = np.asarray(chunk)
    if chunk.ndim != 3:
        raise ValueError(f"expected a 3-D chunk, got shape {chunk.shape}")
    img = chunk_to_stack(chunk, hw, depth=1)[0]
    for axis in (0, 1):
        if img.shape[axis] < hw:
            reps = -(-hw // img.shape[axis])
            img = np.repeat(img, reps, axis=axis)
            img = np.take(img, range(hw), axis=axis)
    return img


def chunk_to_stack(chunk: np.ndarray, hw: int, depth: int = 4) -> np.ndarray:
    """Block-average a 3-D chunk to a ``(depth, hw, hw)`` complex stack."""
    return pool3d(chunk, (depth, hw, hw))


def pool3d(chunk: np.ndarray, target: tuple[int, int, int]) -> np.ndarray:
    """Block-average a 3-D chunk down to (at most) ``target`` per axis.

    Every axis keeps resolution up to its target — nothing is fully
    collapsed.  This matters for gate fidelity: the adjoint operations'
    residual chunks vary strongly along the (wide) angle axis, and a key
    that averaged that axis away would make unrelated residuals look alike,
    silently loosening the Eq. 3 threshold.  Axes shorter than their target
    are kept as is.
    """
    chunk = np.asarray(chunk)
    if chunk.ndim != 3:
        raise ValueError(f"expected a 3-D chunk, got shape {chunk.shape}")
    dims = tuple(min(t, s) for t, s in zip(target, chunk.shape))
    pads = tuple((-s) % d for s, d in zip(chunk.shape, dims))
    if any(pads):
        chunk = np.pad(chunk, tuple((0, p) for p in pads))
    d0, d1, d2 = dims
    s0, s1, s2 = chunk.shape
    return chunk.reshape(d0, s0 // d0, d1, s1 // d1, d2, s2 // d2).mean(axis=(1, 3, 5))


def _hash_state(node, h) -> None:
    """Deterministic structural hash of a state tree (dict order-insensitive,
    arrays hashed dtype+shape+bytes, numpy scalars normalized to python so a
    live tree and its snapshot round trip digest identically) — the
    key-encoder provenance digest."""
    if isinstance(node, dict):
        h.update(b"d")
        for key in sorted(node):
            h.update(str(key).encode("utf-8") + b"\x00")
            _hash_state(node[key], h)
    elif isinstance(node, (list, tuple)):
        h.update(b"l")
        for item in node:
            _hash_state(item, h)
    elif isinstance(node, np.ndarray):
        arr = np.ascontiguousarray(node)
        h.update(b"a" + arr.dtype.str.encode("ascii") + str(arr.shape).encode("ascii"))
        h.update(arr.tobytes())
    else:
        if isinstance(node, np.bool_):
            node = bool(node)
        elif isinstance(node, np.integer):
            node = int(node)
        elif isinstance(node, np.floating):
            node = float(node)
        h.update(b"s" + repr(node).encode("utf-8"))


def state_digest(state) -> str:
    """Content hash of a state tree — what `CNNKeyEncoder.weights_digest`
    computes, callable on a raw (e.g. snapshot-loaded) tree without
    rebuilding the encoder first."""
    h = hashlib.sha256()
    _hash_state(state, h)
    return h.hexdigest()


class PoolKeyEncoder:
    """Linear pooled key: flattened real/imag of the downsampled chunk stack.

    Two fidelity-critical details (both still linear, so key distances stay
    proportional to chunk distances):

    - the pooled stack's mean is removed before flattening — frequency-domain
      chunks are DC-dominated, and without mean removal the cosine similarity
      of any two spectra saturates near 1, destroying the discriminative
      power the Eq. 3 threshold needs (the DC component is handled exactly by
      the engine's affine reuse instead);
    - ``depth`` bins of the leading chunk axis are preserved rather than
      collapsed, keeping along-axis structure visible to the gate.
    """

    def __init__(self, key_hw: int = 8, depth: int = 8) -> None:
        if key_hw < 2:
            raise ValueError(f"key_hw must be >= 2, got {key_hw}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.key_hw = key_hw
        self.depth = depth

    @property
    def dim(self) -> int:
        """Nominal (maximum) key dimensionality; thin chunks produce fewer
        elements — the engine sizes each database partition from the actual
        key it sees."""
        return 2 * self.depth * self.key_hw * self.key_hw

    def encode(self, chunk: np.ndarray) -> np.ndarray:
        stack = pool3d(chunk, (self.depth, self.key_hw, self.key_hw))
        stack = stack - stack.mean()
        return np.concatenate(
            [stack.real.ravel(), stack.imag.ravel()]
        ).astype(np.float32)


class CNNKeyEncoder:
    """CNN key: pooled image -> (quantized) ChunkEncoder embedding."""

    def __init__(self, encoder: ChunkEncoder, quantized: bool = True) -> None:
        self._float_encoder = encoder
        self._enc = QuantizedEncoder(encoder) if quantized else encoder
        self.key_hw = encoder.input_hw

    @property
    def dim(self) -> int:
        return self._float_encoder.embed_dim

    def encode(self, chunk: np.ndarray) -> np.ndarray:
        img = chunk_to_image(chunk, self.key_hw)
        return self._enc.encode(img[None]).astype(np.float32)[0]

    # -- snapshot hooks ------------------------------------------------------------------

    @property
    def quantized(self) -> bool:
        return isinstance(self._enc, QuantizedEncoder)

    def state_dict(self) -> dict:
        """Float weights plus the quantization flag.  INT8 quantization is a
        deterministic function of the float weights, so restoring the float
        encoder and re-quantizing reproduces the exact int8 tensors (and
        bit-identical keys) of the live encoder."""
        return {"encoder": self._float_encoder.state_dict(), "quantized": self.quantized}

    def weights_digest(self) -> str:
        """Content hash of the encoder state (weights + config + quantization
        flag).  Recorded in memo-snapshot fingerprints: keys produced by
        different trainings never tau-match, so a warm start across encoder
        weights must fail fast (or install the snapshot's own encoder)
        instead of silently running at ~0% hit rate."""
        return state_digest(self.state_dict())

    @classmethod
    def from_state(cls, state: dict) -> "CNNKeyEncoder":
        return cls(
            ChunkEncoder.from_state(state["encoder"]), quantized=bool(state["quantized"])
        )
