"""mLR core: memoization engine, caches, coalescer, the sharded
multi-worker memoization service (:class:`MemoShardRouter` +
:class:`DistributedMemoizedExecutor`), offload planner, multi-GPU scaling,
and the trace-driven performance simulation."""

from .coalescer import CoalesceStats, KeyCoalescer
from .config import MemoConfig, MLRConfig, ObsConfig, PipelineConfig
from .distributed import DistributedMemoizedExecutor, WorkerState
from .keying import CNNKeyEncoder, PoolKeyEncoder, chunk_to_image, chunk_to_stack, pool3d
from .memo_cache import CacheHit, CacheStats, GlobalMemoCache, PrivateMemoCache
from .memo_db import MemoDatabase, MemoDBStats, QueryOutcome
from .memo_engine import (
    CASE_CACHE,
    CASE_DB,
    CASE_DIRECT,
    CASE_MISS,
    MemoEvent,
    MemoizedExecutor,
)
from .memo_shard import (
    MemoShard,
    MemoShardRouter,
    ShardInsert,
    ShardQuery,
    shard_of_location,
)
from .mlr_solver import MLRResult, MLRSolver
from .offload import (
    AccessPoint,
    IterationSchedule,
    OffloadAction,
    OffloadPlanner,
    PlanOutcome,
    greedy_offload,
    lru_offload,
)
from .perfsim import (
    IterationPerf,
    PipelinePerf,
    coalesce_comparison,
    memo_case_breakdown,
    phase_times,
    simulate_iteration,
    simulate_pipeline,
    total_runtime,
)
from .scaling import GPUAssignment, distribute_chunks

__all__ = [
    "CoalesceStats",
    "KeyCoalescer",
    "MemoConfig",
    "MLRConfig",
    "ObsConfig",
    "PipelineConfig",
    "CNNKeyEncoder",
    "PoolKeyEncoder",
    "chunk_to_image",
    "chunk_to_stack",
    "pool3d",
    "CacheHit",
    "CacheStats",
    "GlobalMemoCache",
    "PrivateMemoCache",
    "MemoDatabase",
    "MemoDBStats",
    "QueryOutcome",
    "MemoShard",
    "MemoShardRouter",
    "ShardInsert",
    "ShardQuery",
    "shard_of_location",
    "DistributedMemoizedExecutor",
    "WorkerState",
    "CASE_CACHE",
    "CASE_DB",
    "CASE_DIRECT",
    "CASE_MISS",
    "MemoEvent",
    "MemoizedExecutor",
    "MLRResult",
    "MLRSolver",
    "AccessPoint",
    "IterationSchedule",
    "OffloadAction",
    "OffloadPlanner",
    "PlanOutcome",
    "greedy_offload",
    "lru_offload",
    "IterationPerf",
    "PipelinePerf",
    "coalesce_comparison",
    "memo_case_breakdown",
    "phase_times",
    "simulate_iteration",
    "simulate_pipeline",
    "total_runtime",
    "GPUAssignment",
    "distribute_chunks",
]
