"""mLR: the memoized ADMM-FFT reconstruction solver (the paper's system).

:class:`MLRSolver` assembles the full stack — laminography operators, the
memoized executor, and the ADMM driver — behind one call::

    solver = MLRSolver(geometry, MLRConfig(), ADMMConfig(n_outer=60))
    result = solver.reconstruct(projections)

mLR does not change the FFT algorithm or the solver mathematics; it reduces
the *number of FFT operation executions* via memoization (Section 3), so a
run with an impossible threshold (``tau -> 1``) degenerates to the original
ADMM-FFT bit-for-bit — a property the integration tests assert.

For the paper's CNN key encoder, :meth:`train_encoder` performs the
contrastive warmup (Section 4.3.1): it harvests chunk images from a few
unmemoized iterations, trains the encoder on Eq. 2, INT8-quantizes it, and
installs it in the executor.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..lamino.geometry import LaminoGeometry
from ..lamino.operators import LaminoOperators
from ..obs import runtime as obs
from ..solvers.admm import ADMMConfig, ADMMResult, ADMMSolver
from .config import MLRConfig
from .keying import CNNKeyEncoder, chunk_to_image, state_digest
from .memo_engine import MemoEvent, MemoizedExecutor

__all__ = ["MLRResult", "MLRSolver"]

log = logging.getLogger("repro.core.mlr_solver")


@dataclass
class MLRResult:
    """Reconstruction + memoization trace."""

    u: np.ndarray
    history: dict[str, list[float]] = field(default_factory=dict)
    events: list[MemoEvent] = field(default_factory=list)
    case_counts: dict[str, int] = field(default_factory=dict)
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def memoized_fraction(self) -> float:
        """Share of memoizable chunk-ops served without FFT computation."""
        served = self.case_counts.get("db_hit", 0) + self.case_counts.get("cache_hit", 0)
        total = sum(
            n for case, n in self.case_counts.items() if case != "direct"
        ) or 1
        return served / total


class MLRSolver:
    """End-to-end memoized laminography reconstruction."""

    def __init__(
        self,
        geometry: LaminoGeometry,
        config: MLRConfig | None = None,
        admm: ADMMConfig | None = None,
        ops: LaminoOperators | None = None,
        encoder=None,
    ) -> None:
        self.geometry = geometry
        self.config = config or MLRConfig()
        if self.config.obs is not None:
            obs.configure(self.config.obs)
        self.admm_config = admm or ADMMConfig()
        self.ops = ops if ops is not None else LaminoOperators(geometry)
        #: True when the configured warm-start snapshot failed its checksums
        #: and was quarantined (this run started cold instead of crashing)
        self.snapshot_quarantined = False
        snapshot_tree = self._resolve_snapshot_safe(self.config.memo_snapshot)
        if (
            encoder is None
            and self.config.memo.encoder == "cnn"
            and snapshot_tree is not None
            and snapshot_tree.get("encoder_state")
        ):
            # snapshot-aware encoder lifecycle: the snapshot carries the
            # trained CNN encoder its keys were produced with — install it
            # instead of demanding a re-train
            encoder = CNNKeyEncoder.from_state(snapshot_tree["encoder_state"])
        if (
            self.config.n_workers > 1
            or self.config.n_shards > 1
            or self.config.memo.transport != "inproc"
        ):
            from .distributed import DistributedMemoizedExecutor

            self.executor = DistributedMemoizedExecutor(
                self.ops,
                config=self.config.memo,
                chunk_size=self.config.chunk_size,
                encoder=encoder,
                n_workers=self.config.n_workers,
                n_shards=self.config.n_shards,
            )
        else:
            self.executor = MemoizedExecutor(
                self.ops,
                config=self.config.memo,
                chunk_size=self.config.chunk_size,
                encoder=encoder,
            )
        self.memo_executor = self.executor
        if self.config.pipeline is not None:
            from ..pipeline import PipelinedExecutor

            self.executor = PipelinedExecutor(self.executor, self.config.pipeline)
        if snapshot_tree is not None:
            self.load_memo_snapshot(snapshot_tree)
        self.solver = ADMMSolver(self.ops, self.admm_config, executor=self.executor)

    def close(self) -> None:
        """Release transport resources (the remote memo client, if any)."""
        self.memo_executor.close()

    # -- warm start / persistence --------------------------------------------------------

    @staticmethod
    def _resolve_snapshot(snapshot) -> dict | None:
        """``None`` / state tree / snapshot directory -> state tree."""
        if snapshot is None or isinstance(snapshot, dict):
            return snapshot
        from ..service.snapshot import load_memo_snapshot

        return load_memo_snapshot(snapshot)

    def _resolve_snapshot_safe(self, snapshot) -> dict | None:
        """Construction-time warm start: a corrupt on-disk snapshot is
        quarantined (renamed ``.corrupt``) and the run starts cold — warmth
        is an optimization, and a damaged cache must never take down a
        reconstruction.  Explicit :meth:`load_memo_snapshot` calls still
        raise, since there the caller asked for *that* snapshot."""
        from ..service.snapshot import SnapshotError, quarantine_snapshot

        try:
            return self._resolve_snapshot(snapshot)
        except SnapshotError as exc:
            quarantined = quarantine_snapshot(snapshot)
            self.snapshot_quarantined = True
            obs.counter("snapshot_quarantined_total", where="solver-init").inc()
            obs.flight_dump(
                "snapshot-quarantine",
                where="solver-init",
                snapshot=str(snapshot),
                error=str(exc),
            )
            log.warning(
                "warm-start snapshot %s corrupt (%s): quarantined to %s, "
                "starting cold",
                snapshot, exc, quarantined,
            )
            return None

    def load_memo_snapshot(self, snapshot) -> None:
        """Warm-start the memoization database tier from ``snapshot`` — a
        directory written by :meth:`save_memo_snapshot` or an in-memory
        ``memo_state()`` tree (what ``MLRConfig(memo_snapshot=...)`` routes
        here at construction).

        A snapshot carrying CNN encoder weights (``encoder_state``)
        auto-installs them when this solver is configured for the CNN
        encoder and does not already run the exact same weights — so a
        CNN-keyed deployment warm-starts without a re-train."""
        from ..service.snapshot import install_memo_state

        tree = self._resolve_snapshot(snapshot)
        enc_state = tree.get("encoder_state")
        if enc_state and self.config.memo.encoder == "cnn":
            current = self.memo_executor.encoder
            # digest the raw state tree — building a CNNKeyEncoder (with its
            # INT8 re-quantization) just to compare digests would waste the
            # common case where the snapshot's encoder is already installed
            if not (
                isinstance(current, CNNKeyEncoder)
                and current.weights_digest() == state_digest(enc_state)
            ):
                self.memo_executor.encoder = CNNKeyEncoder.from_state(enc_state)
                self.memo_executor.reset_state()
        install_memo_state(self.memo_executor, tree)

    def save_memo_snapshot(self, path) -> dict:
        """Persist the executor's database tier as a versioned on-disk
        snapshot; returns the manifest."""
        from ..service.snapshot import save_memo_snapshot

        return save_memo_snapshot(path, self.memo_executor)

    # -- optional CNN warmup -----------------------------------------------------------

    def train_encoder(
        self,
        d: np.ndarray,
        harvest_iterations: int = 2,
        n_epochs: int = 6,
        embed_dim: int | None = None,
        input_hw: int = 16,
        seed: int = 0,
    ) -> CNNKeyEncoder:
        """Contrastively train the paper's CNN encoder on harvested chunks.

        Runs ``harvest_iterations`` of unmemoized ADMM to collect real chunk
        images, trains :class:`~repro.nn.ChunkEncoder` with the Eq. 2 loss,
        quantizes to INT8 and installs it as the executor's key encoder.
        """
        from ..nn.cnn import ChunkEncoder
        from ..nn.contrastive import train_contrastive
        from ..solvers.executor import DirectExecutor

        harvest: list[np.ndarray] = []
        size = self.config.chunk_size

        class _Harvester(DirectExecutor):
            def _run_fu2d(self, chunk, u1_c, sub):
                harvest.append(chunk_to_image(u1_c[:, :, :].transpose(1, 0, 2), input_hw))
                return super()._run_fu2d(chunk, u1_c, sub)

        ex = _Harvester(self.ops, chunk_size=size)
        cfg = ADMMConfig(
            alpha=self.admm_config.alpha,
            rho=self.admm_config.rho,
            n_outer=harvest_iterations,
            n_inner=self.admm_config.n_inner,
        )
        ADMMSolver(self.ops, cfg, executor=ex).run(d)
        images = np.stack(harvest).astype(np.complex64)
        encoder = ChunkEncoder(
            input_hw=input_hw,
            embed_dim=embed_dim or self.config.memo.embed_dim,
            seed=seed,
        )
        train_contrastive(encoder, images, n_epochs=n_epochs, seed=seed)
        key_encoder = CNNKeyEncoder(encoder, quantized=True)
        self.executor.encoder = key_encoder
        # rebuild per-op databases for the new key dimensionality
        self.executor.reset_state()
        return key_encoder

    # -- reconstruction -----------------------------------------------------------------

    def _publish_memo_stats(self) -> None:
        """Register the authoritative end-of-run :class:`MemoDBStats` values
        (per memoized op and merged) into the observability registry, so a
        ``repro.obs`` dump reconciles *exactly* with the database tier's own
        counters."""
        if not obs.enabled():
            return
        from .memo_db import MemoDBStats

        per_op = []
        for op in self.config.memo.memo_ops:
            stats = self.memo_executor.db_stats(op)
            stats.publish(op=op)
            per_op.append(stats)
        MemoDBStats.merged(per_op).publish(op="all")

    def reconstruct(
        self, d: np.ndarray, u0: np.ndarray | None = None, callback=None
    ) -> MLRResult:
        """Run the memoized reconstruction.  ``callback(it, u, info)`` is
        invoked after every outer iteration (the reconstruction service uses
        it for per-job progress events and cooperative cancellation)."""
        with obs.span("solver.reconstruct"):
            admm_result: ADMMResult = self.solver.run(d, u0=u0, callback=callback)
        self._publish_memo_stats()
        return MLRResult(
            u=admm_result.u,
            history=admm_result.history,
            events=list(self.executor.events),
            case_counts=self.executor.case_counts(),
            op_counts=admm_result.op_counts,
        )

    # -- streaming ingest ---------------------------------------------------------------

    def make_ingest(self, queue_depth: int | None = None):
        """A :class:`~repro.pipeline.StreamingIngest` matched to this
        solver's geometry and chunk grid."""
        from ..pipeline import StreamingIngest

        if queue_depth is None:
            pipeline = self.config.pipeline
            queue_depth = pipeline.ingest_queue_depth if pipeline is not None else 4
        return StreamingIngest(
            self.geometry.data_shape,
            chunk_size=self.config.chunk_size,
            queue_depth=queue_depth,
        )

    def reconstruct_streaming(self, ingest, u0: np.ndarray | None = None) -> MLRResult:
        """Reconstruct from an incrementally arriving scan.

        ``ingest`` is a :class:`~repro.pipeline.StreamingIngest` (see
        :meth:`make_ingest`) being fed by an acquisition thread.  The
        ``F2D`` preprocessing sweep (``dhat = F2D d``, Algorithm 2 line 2)
        is driven directly off the stream — early angle chunks are
        transformed while later ones are still arriving — and the ADMM
        iterations start as soon as the scan completes.  The result is
        bit-identical to :meth:`reconstruct` on the fully assembled data.
        """
        d = np.empty(self.geometry.data_shape,
                     dtype=getattr(ingest, "dtype", np.complex64))

        def assemble(items):
            for chunk, slab in items:
                d[chunk.slice] = slab
                yield chunk, slab

        try:
            dhat = None
            if self.admm_config.cancellation:
                dhat = np.empty_like(d)
                sweep = self.executor.sweep_stream(
                    "F2D", assemble(iter(ingest)), ingest.n_chunks
                )
                for chunk, dhat_c in sweep:
                    dhat[chunk.slice] = dhat_c
            else:
                for _ in assemble(iter(ingest)):
                    pass
            with obs.span("solver.reconstruct"):
                admm_result: ADMMResult = self.solver.run(d, u0=u0, dhat=dhat)
        except BaseException:
            # tear the stream down so a producer blocked in push() sees
            # QueueClosed instead of deadlocking on a vanished consumer
            ingest.abort()
            raise
        self._publish_memo_stats()
        return MLRResult(
            u=admm_result.u,
            history=admm_result.history,
            events=list(self.executor.events),
            case_counts=self.executor.case_counts(),
            op_counts=admm_result.op_counts,
        )
