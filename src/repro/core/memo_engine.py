"""The memoization engine: a drop-in executor that replaces FFT operations.

:class:`MemoizedExecutor` subclasses the chunk-streaming
:class:`~repro.solvers.executor.DirectExecutor` and intercepts the four
cancelled-pipeline operations (``Fu1D``, ``Fu2D``, ``Fu2D*``, ``Fu1D*``).
For every chunk it runs the paper's Figure 6 workflow:

1. encode the operation's input chunk into a key,
2. probe the chunk location's **private cache** (Section 4.4),
3. on a cache miss, query the **memoization database** on the memory node
   (Section 4.3.2) through the key **coalescer** (Section 4.3.3),
4. on a database miss, perform the real FFT operation and insert the
   (key, value) pair (the *insertion* path).

Every decision is appended to ``events`` — the trace the trace-driven
performance simulation (:mod:`repro.core.perfsim`) replays at paper scale,
and the raw material for Figures 4, 10 and 12.

The multi-worker, sharded-database variant of this executor lives in
:mod:`repro.core.distributed` (:class:`DistributedMemoizedExecutor`); it
subclasses this engine and is numerically identical at ``1 worker x 1
shard``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import runtime as obs
from ..solvers.executor import DirectExecutor
from .coalescer import KeyCoalescer
from .config import MemoConfig
from .keying import CNNKeyEncoder, PoolKeyEncoder
from .memo_cache import GlobalMemoCache, PrivateMemoCache
from .memo_db import MemoDatabase

__all__ = [
    "MemoEvent",
    "MemoizedExecutor",
    "make_db_factory",
    "memo_state_partitions",
    "CASE_MISS",
    "CASE_DB",
    "CASE_CACHE",
    "CASE_DIRECT",
]


def make_db_factory(config: MemoConfig):
    """Partition factory (``dim -> MemoDatabase``) carrying ``config``'s
    tau / index / value-mode settings — shared by the executors and the
    memo server daemon so every deployment shape builds identical
    partitions."""

    def make_db(dim: int) -> MemoDatabase:
        return MemoDatabase(
            dim=dim,
            tau=config.tau,
            index_clusters=config.index_clusters,
            index_nprobe=config.index_nprobe,
            train_min=config.index_train_min,
            value_mode=config.db_value_mode,
        )

    return make_db


def memo_state_partitions(state: dict) -> list[dict]:
    """Flat partition list of a ``memo_state()`` tree, layout-independent
    (the sharded layout nests partitions per shard)."""
    if state.get("layout") == "sharded":
        return [p for s in state["shards"] for p in s["partitions"]]
    return list(state["partitions"])

#: event case labels (Figure 10's "Fail Memo" / "Suc Memo" / "Memo w/Caching")
CASE_MISS = "miss"  # no match: original computation + insertion
CASE_DB = "db_hit"  # value retrieved from the remote memoization database
CASE_CACHE = "cache_hit"  # value served by the local memoization cache
CASE_DIRECT = "direct"  # memoization bypassed (warmup / non-memoized op)


@dataclass(frozen=True)
class MemoEvent:
    """One chunk-level memoization decision.

    ``worker`` is the simulated GPU worker that executed the chunk and
    ``shard`` the database shard that owns the chunk location; both are 0
    for the single-worker :class:`MemoizedExecutor`.
    """

    outer: int
    inner: int
    op: str
    chunk: int
    case: str
    similarity: float
    key_bytes: int
    value_bytes: int
    worker: int = 0
    shard: int = 0


@dataclass
class _OpState:
    """Per-operation memoization state.

    Reuse is scoped to a *chunk location* (paper Section 4.1: results are
    stored "for a chunk location to be reused in future iterations"), so
    each location owns a database partition — the single-physical-index
    equivalent of a Faiss id-selector restricted to that location's ids.
    """

    make_db: object
    dbs: dict = field(default_factory=dict)  # location -> MemoDatabase
    cache: PrivateMemoCache | GlobalMemoCache | None = None
    key_history: dict = field(default_factory=dict)  # location -> [keys]
    consecutive_serves: dict = field(default_factory=dict)  # location -> int
    dc_basis: dict = field(default_factory=dict)  # location -> op(all-ones chunk)

    def db_for(self, location, dim: int) -> MemoDatabase:
        db = self.dbs.get(location)
        if db is None:
            db = self.make_db(dim)
            self.dbs[location] = db
        return db


class MemoizedExecutor(DirectExecutor):
    """Chunk executor with the full mLR memoization stack."""

    def __init__(
        self,
        ops,
        config: MemoConfig | None = None,
        chunk_size: int | None = None,
        encoder=None,
        n_locations: int | None = None,
    ) -> None:
        super().__init__(ops, chunk_size=chunk_size)
        self.config = config or MemoConfig()
        if encoder is not None:
            self.encoder = encoder
        elif self.config.encoder == "pool":
            self.encoder = PoolKeyEncoder(self.config.key_hw, depth=self.config.key_depth)
        else:
            raise ValueError(
                "encoder='cnn' requires passing a trained CNNKeyEncoder instance"
            )
        self._n_locations_override = n_locations
        self._state: dict[str, _OpState] = {
            op: self._make_state(op) for op in self.config.memo_ops
        }
        self.coalescer = KeyCoalescer()
        self.events: list[MemoEvent] = []
        self.enabled = True

    def n_locations_for(self, op: str) -> int:
        """Chunk-location count of one operation's sweep.

        ``Fu1D``/``Fu1D*`` partition along the volume x-axis
        (``vol_shape[0]``); ``Fu2D``/``Fu2D*`` along the detector
        row-frequency axis (``det_shape[0]``).  The two differ whenever the
        volume height is not the detector height, so location counts (and
        everything sized from them — global-cache capacity, worker
        assignments) must be computed per op.
        """
        g = self.ops.geometry
        if self._n_locations_override is not None:
            return self._n_locations_override
        n = g.vol_shape[0] if op in ("Fu1D", "Fu1D*") else g.det_shape[0]
        size = self.chunk_size if self.chunk_size is not None else n
        return -(-n // size)

    def reset_state(self) -> None:
        """Drop all memoization state (databases, caches, histories) — e.g.
        after installing a new key encoder with a different dimensionality."""
        self._state = {op: self._make_state(op) for op in self.config.memo_ops}

    def close(self) -> None:
        """Release transport resources; the in-process engine holds none
        (the distributed executor closes its remote client here)."""

    def _db_factory(self):
        """Partition factory (``dim -> MemoDatabase``) carrying this
        executor's tau / index configuration."""
        return make_db_factory(self.config)

    def _make_state(self, op: str) -> _OpState:
        cfg = self.config
        make_db = self._db_factory()
        if cfg.cache == "private":
            cache = PrivateMemoCache(cfg.tau)
        elif cfg.cache == "global":
            cache = GlobalMemoCache(cfg.tau, capacity=self.n_locations_for(op))
        else:
            cache = None
        return _OpState(make_db=make_db, cache=cache)

    # -- the memoization workflow -------------------------------------------------------

    @staticmethod
    def _chunk_meta(input_chunk: np.ndarray) -> tuple[float, complex]:
        """(AC norm, DC mean) of a chunk — the affine-reuse metadata."""
        dc = complex(input_chunk.mean())
        total_sq = float(np.vdot(input_chunk, input_chunk).real)
        ac_sq = max(total_sq - input_chunk.size * abs(dc) ** 2, 0.0)
        return float(np.sqrt(ac_sq)), dc

    def _basis(self, op: str, chunk, shape: tuple[int, ...]) -> np.ndarray:
        """``op`` applied to the all-ones chunk at this location (computed
        once, like a plan): the exact image of the DC component."""
        state = self._state[op]
        basis = state.dc_basis.get(chunk.index)
        if basis is None:
            ones = np.ones(shape, dtype=np.complex64)
            basis = self._apply_raw(op, chunk, ones)
            state.dc_basis[chunk.index] = basis
        return basis

    def _apply_raw(self, op: str, chunk, arr: np.ndarray) -> np.ndarray:
        if op == "Fu1D":
            return self.ops.fu1d(arr)
        if op == "Fu1D*":
            return self.ops.fu1d_adj(arr)
        if op == "Fu2D":
            return self.ops.fu2d(arr, rows=chunk.slice)
        if op == "Fu2D*":
            return self.ops.fu2d_adj(arr, rows=chunk.slice)
        raise ValueError(f"unknown op {op!r}")

    def _memoized(self, op: str, chunk, input_chunk: np.ndarray, compute) -> np.ndarray:
        cfg = self.config
        in_warmup = self.outer_iteration < cfg.warmup_iterations
        meta = self._chunk_meta(input_chunk)
        if not self.enabled or op not in self._state or in_warmup:
            out = compute()
            if op in self._state and self.enabled:
                # warmup still populates the database so later iterations hit
                key = self.encoder.encode(input_chunk)
                self._state[op].db_for(chunk.index, key.shape[0]).insert(
                    key, out, meta=meta
                )
                self._remember_key(op, chunk.index, key)
            self._record(op, chunk.index, CASE_DIRECT, -2.0, 0, 0)
            return out

        state = self._state[op]
        key = self.encoder.encode(input_chunk)
        self._remember_key(op, chunk.index, key)

        # Bounded staleness: force a periodic recompute so one stored value
        # cannot serve a location's gradient indefinitely (see MemoConfig).
        serves = state.consecutive_serves.get(chunk.index, 0)
        must_refresh = serves >= cfg.max_consecutive_reuse

        # (2) private/global memoization cache on the compute node
        if state.cache is not None and not must_refresh:
            hit = state.cache.lookup(chunk.index, key, self.outer_iteration)
            if hit is not None:
                return self._serve_cache_hit(
                    op, state, chunk, input_chunk, key, hit, meta, serves
                )

        # (3) remote memoization database (keys travel via the coalescer)
        db = state.db_for(chunk.index, key.shape[0])
        outcome = None
        if not must_refresh:
            self.coalescer.offer((op, chunk.index))
            outcome = db.query(key)
            if outcome.hit:
                return self._serve_db_hit(
                    op, state, chunk, input_chunk, key, outcome, meta, serves,
                    state.cache,
                )

        # (4) miss: original computation + asynchronous insertion
        out = compute()
        return self._finish_miss(
            op, state, chunk, key, out, meta, outcome, state.cache,
            store=lambda: db.insert(key, out, meta=meta),
        )

    # -- the three per-chunk resolutions (shared with the distributed engine,
    # so the 1 worker x 1 shard bit-identity is structural, not incidental) --

    def _serve_cache_hit(
        self, op, state, chunk, input_chunk, key, hit, query_meta, serves,
        worker=0, shard=0,
    ):
        """Local-cache hit: bump the serve streak, reconstruct, record."""
        state.consecutive_serves[chunk.index] = serves + 1
        value = self._reconstruct(op, chunk, input_chunk, hit.value, hit.meta, query_meta)
        self._record(op, chunk.index, CASE_CACHE, 1.0, key.nbytes, value.nbytes,
                     worker=worker, shard=shard)
        return value

    def _serve_db_hit(
        self, op, state, chunk, input_chunk, key, outcome, query_meta, serves,
        cache, worker=0, shard=0,
    ):
        """Database hit: bump the streak, reconstruct, backfill the local
        cache with the raw stored value, record."""
        state.consecutive_serves[chunk.index] = serves + 1
        value = self._reconstruct(
            op, chunk, input_chunk, outcome.value, outcome.stored_meta, query_meta
        )
        if cache is not None:
            cache.insert(chunk.index, key, outcome.value, meta=outcome.stored_meta)
        self._record(op, chunk.index, CASE_DB, outcome.similarity, key.nbytes,
                     value.nbytes, worker=worker, shard=shard)
        return value

    def _finish_miss(
        self, op, state, chunk, key, out, query_meta, outcome, cache, store,
        worker=0, shard=0,
    ):
        """Miss (or forced refresh): reset the streak, persist the fresh
        value via ``store`` (direct insert or batched message), refresh the
        local cache, record."""
        state.consecutive_serves[chunk.index] = 0
        store()
        if cache is not None:
            cache.insert(chunk.index, key, out, meta=query_meta)
        sim = outcome.similarity if outcome is not None else -2.0
        self._record(op, chunk.index, CASE_MISS, sim, key.nbytes, out.nbytes,
                     worker=worker, shard=shard)
        return out

    def _reconstruct(
        self,
        op: str,
        chunk,
        input_chunk: np.ndarray,
        value: np.ndarray,
        stored_meta,
        query_meta,
    ) -> np.ndarray:
        """Affine scale-corrected reuse.

        The FFT operations are linear, so with ``B = op(ones)`` and a stored
        pair ``(a, V = op(a))`` the served estimate for a tau-similar query
        ``q`` is::

            op(q) ~= (||q_ac|| / ||a_ac||) * (V - dc_a * B)  +  dc_q * B

        The DC (mean) component — which dominates these operands and whose
        mismatch is what makes naive value reuse blow up — is handled
        *exactly*; only the AC residual is approximated, with error bounded
        by the Eq. 3 gate.
        """
        if not self.config.scale_correction or stored_meta is None:
            return value.copy()
        ac_a, dc_a = stored_meta
        ac_q, dc_q = query_meta
        basis = self._basis(op, chunk, input_chunk.shape)
        scale = ac_q / ac_a if ac_a > 0 else 0.0
        out = (value - np.complex64(dc_a) * basis) * np.float32(scale)
        out += np.complex64(dc_q) * basis
        return out.astype(value.dtype, copy=False)

    def _remember_key(self, op: str, location: int, key: np.ndarray) -> None:
        if self.config.track_similarity_census:
            self._state[op].key_history.setdefault(location, []).append(key.copy())

    def _record(self, op, chunk_idx, case, sim, kb, vb, worker=0, shard=0) -> None:
        # single funnel for every chunk-op resolution: the live per-op
        # hit/miss breakdown mirrors case_counts() exactly
        obs.counter("memo_chunks_total", op=op, case=case).inc()
        self.events.append(
            MemoEvent(
                outer=self.outer_iteration,
                inner=self.inner_iteration,
                op=op,
                chunk=chunk_idx,
                case=case,
                similarity=sim,
                key_bytes=kb,
                value_bytes=vb,
                worker=worker,
                shard=shard,
            )
        )

    def coalesce_stats(self):
        """Key-message statistics (Figure 11).  The accessor — not the raw
        ``coalescer`` attribute — is the stable surface: the distributed
        executor aggregates per-worker coalescers behind it."""
        return self.coalescer.stats

    # -- sweep boundaries ---------------------------------------------------------------

    def flush_coalescers(self) -> None:
        """Force-emit any buffered key message.

        Called at the end of every full-array op sweep and on
        ``begin_inner``: a sweep's tail batch must not leak into the next
        sweep's message accounting (Figure 11's ``messages`` / ``mean_batch``
        inputs), and no key may stay pending across an inner iteration.
        """
        self.coalescer.flush()

    def begin_inner(self, iteration: int) -> None:
        self.flush_coalescers()
        super().begin_inner(iteration)

    def sweep_stream(self, op, items, n_chunks=None):
        """Streaming sweep with an end-of-sweep coalescer flush (a sweep's
        tail batch must not leak into the next sweep's message accounting).
        The full-array ops are inherited drivers over this seam, so the
        flush covers the monolithic and pipelined paths alike.  An
        abandoned sweep discards its buffered keys instead — a dead sweep
        must not pollute the next sweep's message statistics."""
        completed = False
        try:
            yield from super().sweep_stream(op, items, n_chunks=n_chunks)
            completed = True
        finally:
            if op in self._state:
                if completed:
                    self.flush_coalescers()
                else:
                    self.coalescer.discard()

    # -- chunk kernels intercepted -----------------------------------------------------

    def _run_fu1d(self, chunk, u_c):
        return self._memoized("Fu1D", chunk, u_c, lambda: super(MemoizedExecutor, self)._run_fu1d(chunk, u_c))

    def _run_fu1d_adj(self, chunk, u1_c):
        return self._memoized("Fu1D*", chunk, u1_c, lambda: super(MemoizedExecutor, self)._run_fu1d_adj(chunk, u1_c))

    def _run_fu2d(self, chunk, u1_c, sub):
        # Memoize the *linear* transform only: the fused kernel's output is
        # affine (it subtracts the constant dhat slab), which would break
        # scale-corrected reuse.  The subtraction is re-applied outside the
        # memoized region; the performance model still accounts for fusion.
        out = self._memoized(
            "Fu2D",
            chunk,
            u1_c,
            lambda: super(MemoizedExecutor, self)._run_fu2d(chunk, u1_c, None),
        )
        if sub is not None:
            out = out - sub
        return out

    def _run_fu2d_adj(self, chunk, r_c):
        return self._memoized("Fu2D*", chunk, r_c, lambda: super(MemoizedExecutor, self)._run_fu2d_adj(chunk, r_c))

    # -- statistics ---------------------------------------------------------------------

    def case_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.case] = out.get(ev.case, 0) + 1
        return out

    def cache_stats(self, op: str):
        return self._state[op].cache.stats if self._state[op].cache else None

    def db_stats(self, op: str):
        """Aggregated database statistics across all location partitions."""
        from .memo_db import MemoDBStats

        return MemoDBStats.merged(db.stats for db in self._state[op].dbs.values())

    def db_stats_total(self):
        """One merged :class:`~repro.core.memo_db.MemoDBStats` over every
        memoized op — the figure job/service reporting quotes."""
        from .memo_db import MemoDBStats

        return MemoDBStats.merged(self.db_stats(op) for op in self._state)

    def db_entries(self, op: str) -> int:
        return sum(len(db) for db in self._state[op].dbs.values())

    def db_entries_total(self) -> int:
        return sum(self.db_entries(op) for op in self._state)

    # -- snapshot hooks ------------------------------------------------------------------

    def _check_partition_fields(self, op: str, tau: float, value_mode: str) -> None:
        """Fail fast on a snapshot that would silently change memoization
        semantics under this executor's configuration.  Field-level so the
        remote transport can validate raw partition trees without first
        rebuilding the databases they describe."""
        if op not in self._state:
            raise ValueError(
                f"snapshot carries op {op!r}, not memoized here "
                f"(memo_ops={self.config.memo_ops})"
            )
        if tau != self.config.tau:
            raise ValueError(
                f"snapshot tau {tau} != configured tau {self.config.tau}"
            )
        if value_mode != self.config.db_value_mode:
            raise ValueError(
                f"snapshot value_mode {value_mode!r} != configured "
                f"{self.config.db_value_mode!r}"
            )

    def _check_partition(self, op: str, db: MemoDatabase) -> None:
        self._check_partition_fields(op, db.tau, db.value_mode)

    def _encoder_fingerprint(self) -> dict:
        """Key-encoder provenance recorded with every memo snapshot: keys
        from different encoders never tau-match, so loading across encoder
        kinds — or across CNN weights (the ``weights`` digest) — must fail
        fast instead of silently degrading hit rates."""
        return {
            "kind": type(self.encoder).__name__,
            "dim": int(getattr(self.encoder, "dim", 0)) or None,
            "weights": (
                self.encoder.weights_digest()
                if isinstance(self.encoder, CNNKeyEncoder)
                else None
            ),
        }

    def _encoder_state(self) -> dict | None:
        """Restorable weights of a trained (CNN) key encoder, carried inside
        every memo snapshot so a warm start re-installs the encoder the keys
        were produced with — no re-train (the pool encoder is stateless:
        ``None``)."""
        if isinstance(self.encoder, CNNKeyEncoder):
            return self.encoder.state_dict()
        return None

    def _check_encoder(self, state: dict) -> None:
        stored = state.get("encoder")
        if not stored:
            return  # bare router trees carry no provenance
        ours = self._encoder_fingerprint()
        if stored.get("kind") != ours["kind"]:
            raise ValueError(
                f"snapshot keys come from a {stored.get('kind')} encoder, "
                f"this executor uses {ours['kind']} — keys would never match"
            )
        if stored.get("dim") and ours["dim"] and stored["dim"] != ours["dim"]:
            raise ValueError(
                f"snapshot key dimensionality {stored['dim']} != "
                f"this executor's {ours['dim']}"
            )
        if (
            stored.get("weights")
            and ours.get("weights")
            and stored["weights"] != ours["weights"]
        ):
            raise ValueError(
                "snapshot keys come from a CNN encoder with different weights "
                "than this executor's — install the snapshot's encoder (its "
                "'encoder_state' / MLRSolver auto-install) or re-train"
            )

    def memo_state(self) -> dict:
        """The executor's whole database tier as one restorable state tree
        (partitions keyed by ``(op, location)``, plus the key-encoder
        fingerprint the keys were produced with and — for trained CNN
        encoders — the encoder weights themselves)."""
        return {
            "layout": "single",
            "encoder": self._encoder_fingerprint(),
            "encoder_state": self._encoder_state(),
            "partitions": [
                {"op": op, "location": int(loc), "db": db.state_dict()}
                for op, state in self._state.items()
                for loc, db in state.dbs.items()
            ],
        }

    def load_memo_state(self, state: dict) -> None:
        """Warm-start this executor from a snapshotted database tier.

        Partitions are validated (op memoized here, tau / value_mode /
        key-encoder provenance match) and installed by chunk location;
        snapshots taken from a sharded deployment load fine — partition
        keying is layout-independent.
        """
        self._check_encoder(state)
        partitions = memo_state_partitions(state)
        restored = [
            (str(p["op"]), int(p["location"]), MemoDatabase.from_state(p["db"]))
            for p in partitions
        ]
        for op, _loc, db in restored:
            self._check_partition(op, db)
        self._install_partitions(restored)

    def _install_partitions(self, restored: list) -> None:
        """Install validated ``(op, location, db)`` partitions in one go (the
        distributed executor overrides this to route them — or, on a remote
        transport, to push them as a single snapshot message)."""
        for op, loc, db in restored:
            self._state[op].dbs[loc] = db

    def similarity_census(self, op: str, tau: float | None = None) -> dict[int, list[int]]:
        """Figure 4: per location, for each iteration's key, how many *prior*
        keys at the same location are tau-similar.

        One normalized-matrix product per location replaces the O(n^2)
        pairwise :func:`cosine_similarity` loop — same counts, orders of
        magnitude faster on long runs.
        """
        tau = tau if tau is not None else self.config.tau
        block = 512  # bounds transient memory at block x history, not history^2
        out: dict[int, list[int]] = {}
        for location, keys in self._state[op].key_history.items():
            if not keys:
                out[location] = []
                continue
            mat = np.stack([np.asarray(k).ravel() for k in keys])
            norms = np.linalg.norm(mat, axis=1)
            # zero keys have similarity 0 to everything (cosine_similarity's
            # convention), which a zeroed row reproduces exactly
            unit = mat / np.where(norms == 0.0, 1.0, norms)[:, None]
            counts: list[int] = []
            for i0 in range(0, len(keys), block):
                i1 = min(i0 + block, len(keys))
                sims = (np.conj(unit[i0:i1]) @ unit[:i1].T).real
                counts.extend(
                    int(np.count_nonzero(sims[r, : i0 + r] > tau))
                    for r in range(i1 - i0)
                )
            out[location] = counts
        return out
