"""The memoization engine: a drop-in executor that replaces FFT operations.

:class:`MemoizedExecutor` subclasses the chunk-streaming
:class:`~repro.solvers.executor.DirectExecutor` and intercepts the four
cancelled-pipeline operations (``Fu1D``, ``Fu2D``, ``Fu2D*``, ``Fu1D*``).
For every chunk it runs the paper's Figure 6 workflow:

1. encode the operation's input chunk into a key,
2. probe the chunk location's **private cache** (Section 4.4),
3. on a cache miss, query the **memoization database** on the memory node
   (Section 4.3.2) through the key **coalescer** (Section 4.3.3),
4. on a database miss, perform the real FFT operation and insert the
   (key, value) pair (the *insertion* path).

Every decision is appended to ``events`` — the trace the trace-driven
performance simulation (:mod:`repro.core.perfsim`) replays at paper scale,
and the raw material for Figures 4, 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..solvers.executor import DirectExecutor
from ..solvers.metrics import cosine_similarity
from .coalescer import KeyCoalescer
from .config import MemoConfig
from .keying import CNNKeyEncoder, PoolKeyEncoder
from .memo_cache import GlobalMemoCache, PrivateMemoCache
from .memo_db import MemoDatabase

__all__ = ["MemoEvent", "MemoizedExecutor", "CASE_MISS", "CASE_DB", "CASE_CACHE", "CASE_DIRECT"]

#: event case labels (Figure 10's "Fail Memo" / "Suc Memo" / "Memo w/Caching")
CASE_MISS = "miss"  # no match: original computation + insertion
CASE_DB = "db_hit"  # value retrieved from the remote memoization database
CASE_CACHE = "cache_hit"  # value served by the local memoization cache
CASE_DIRECT = "direct"  # memoization bypassed (warmup / non-memoized op)


@dataclass(frozen=True)
class MemoEvent:
    """One chunk-level memoization decision."""

    outer: int
    inner: int
    op: str
    chunk: int
    case: str
    similarity: float
    key_bytes: int
    value_bytes: int


@dataclass
class _OpState:
    """Per-operation memoization state.

    Reuse is scoped to a *chunk location* (paper Section 4.1: results are
    stored "for a chunk location to be reused in future iterations"), so
    each location owns a database partition — the single-physical-index
    equivalent of a Faiss id-selector restricted to that location's ids.
    """

    make_db: object
    dbs: dict = field(default_factory=dict)  # location -> MemoDatabase
    cache: PrivateMemoCache | GlobalMemoCache | None = None
    key_history: dict = field(default_factory=dict)  # location -> [keys]
    consecutive_serves: dict = field(default_factory=dict)  # location -> int
    dc_basis: dict = field(default_factory=dict)  # location -> op(all-ones chunk)

    def db_for(self, location, dim: int) -> MemoDatabase:
        db = self.dbs.get(location)
        if db is None:
            db = self.make_db(dim)
            self.dbs[location] = db
        return db


class MemoizedExecutor(DirectExecutor):
    """Chunk executor with the full mLR memoization stack."""

    def __init__(
        self,
        ops,
        config: MemoConfig | None = None,
        chunk_size: int | None = None,
        encoder=None,
        n_locations: int | None = None,
    ) -> None:
        super().__init__(ops, chunk_size=chunk_size)
        self.config = config or MemoConfig()
        if encoder is not None:
            self.encoder = encoder
        elif self.config.encoder == "pool":
            self.encoder = PoolKeyEncoder(self.config.key_hw, depth=self.config.key_depth)
        else:
            raise ValueError(
                "encoder='cnn' requires passing a trained CNNKeyEncoder instance"
            )
        h = ops.geometry.det_shape[0]
        size = chunk_size if chunk_size is not None else h
        self._n_locations = (
            n_locations if n_locations is not None else -(-h // size)
        )
        self._state: dict[str, _OpState] = {
            op: self._make_state() for op in self.config.memo_ops
        }
        self.coalescer = KeyCoalescer()
        self.events: list[MemoEvent] = []
        self.enabled = True

    def _make_state(self) -> _OpState:
        cfg = self.config

        def make_db(dim: int) -> MemoDatabase:
            return MemoDatabase(
                dim=dim,
                tau=cfg.tau,
                index_clusters=cfg.index_clusters,
                index_nprobe=cfg.index_nprobe,
                train_min=cfg.index_train_min,
            )

        if cfg.cache == "private":
            cache = PrivateMemoCache(cfg.tau)
        elif cfg.cache == "global":
            cache = GlobalMemoCache(cfg.tau, capacity=self._n_locations)
        else:
            cache = None
        return _OpState(make_db=make_db, cache=cache)

    # -- the memoization workflow -------------------------------------------------------

    @staticmethod
    def _chunk_meta(input_chunk: np.ndarray) -> tuple[float, complex]:
        """(AC norm, DC mean) of a chunk — the affine-reuse metadata."""
        dc = complex(input_chunk.mean())
        total_sq = float(np.vdot(input_chunk, input_chunk).real)
        ac_sq = max(total_sq - input_chunk.size * abs(dc) ** 2, 0.0)
        return float(np.sqrt(ac_sq)), dc

    def _basis(self, op: str, chunk, shape: tuple[int, ...]) -> np.ndarray:
        """``op`` applied to the all-ones chunk at this location (computed
        once, like a plan): the exact image of the DC component."""
        state = self._state[op]
        basis = state.dc_basis.get(chunk.index)
        if basis is None:
            ones = np.ones(shape, dtype=np.complex64)
            basis = self._apply_raw(op, chunk, ones)
            state.dc_basis[chunk.index] = basis
        return basis

    def _apply_raw(self, op: str, chunk, arr: np.ndarray) -> np.ndarray:
        if op == "Fu1D":
            return self.ops.fu1d(arr)
        if op == "Fu1D*":
            return self.ops.fu1d_adj(arr)
        if op == "Fu2D":
            return self.ops.fu2d(arr, rows=chunk.slice)
        if op == "Fu2D*":
            return self.ops.fu2d_adj(arr, rows=chunk.slice)
        raise ValueError(f"unknown op {op!r}")

    def _memoized(self, op: str, chunk, input_chunk: np.ndarray, compute) -> np.ndarray:
        cfg = self.config
        in_warmup = self.outer_iteration < cfg.warmup_iterations
        meta = self._chunk_meta(input_chunk)
        if not self.enabled or op not in self._state or in_warmup:
            out = compute()
            if op in self._state and self.enabled:
                # warmup still populates the database so later iterations hit
                key = self.encoder.encode(input_chunk)
                self._state[op].db_for(chunk.index, key.shape[0]).insert(
                    key, out, meta=meta
                )
                self._remember_key(op, chunk.index, key)
            self._record(op, chunk.index, CASE_DIRECT, -2.0, 0, 0)
            return out

        state = self._state[op]
        key = self.encoder.encode(input_chunk)
        self._remember_key(op, chunk.index, key)
        key_bytes = key.nbytes

        # Bounded staleness: force a periodic recompute so one stored value
        # cannot serve a location's gradient indefinitely (see MemoConfig).
        serves = state.consecutive_serves.get(chunk.index, 0)
        must_refresh = serves >= cfg.max_consecutive_reuse

        # (2) private/global memoization cache on the compute node
        if state.cache is not None and not must_refresh:
            hit = state.cache.lookup(chunk.index, key, self.outer_iteration)
            if hit is not None:
                state.consecutive_serves[chunk.index] = serves + 1
                value = self._reconstruct(op, chunk, input_chunk, hit.value, hit.meta, meta)
                self._record(op, chunk.index, CASE_CACHE, 1.0, key_bytes, value.nbytes)
                return value

        # (3) remote memoization database (keys travel via the coalescer)
        db = state.db_for(chunk.index, key.shape[0])
        outcome = None
        if not must_refresh:
            self.coalescer.offer((op, chunk.index))
            outcome = db.query(key)
            if outcome.hit:
                state.consecutive_serves[chunk.index] = serves + 1
                value = self._reconstruct(
                    op, chunk, input_chunk, outcome.value, outcome.stored_meta, meta
                )
                if state.cache is not None:
                    state.cache.insert(
                        chunk.index, key, outcome.value, meta=outcome.stored_meta
                    )
                self._record(
                    op, chunk.index, CASE_DB, outcome.similarity, key_bytes, value.nbytes
                )
                return value

        # (4) miss: original computation + asynchronous insertion
        out = compute()
        state.consecutive_serves[chunk.index] = 0
        db.insert(key, out, meta=meta)
        if state.cache is not None:
            state.cache.insert(chunk.index, key, out, meta=meta)
        sim = outcome.similarity if outcome is not None else -2.0
        self._record(op, chunk.index, CASE_MISS, sim, key_bytes, out.nbytes)
        return out

    def _reconstruct(
        self,
        op: str,
        chunk,
        input_chunk: np.ndarray,
        value: np.ndarray,
        stored_meta,
        query_meta,
    ) -> np.ndarray:
        """Affine scale-corrected reuse.

        The FFT operations are linear, so with ``B = op(ones)`` and a stored
        pair ``(a, V = op(a))`` the served estimate for a tau-similar query
        ``q`` is::

            op(q) ~= (||q_ac|| / ||a_ac||) * (V - dc_a * B)  +  dc_q * B

        The DC (mean) component — which dominates these operands and whose
        mismatch is what makes naive value reuse blow up — is handled
        *exactly*; only the AC residual is approximated, with error bounded
        by the Eq. 3 gate.
        """
        if not self.config.scale_correction or stored_meta is None:
            return value.copy()
        ac_a, dc_a = stored_meta
        ac_q, dc_q = query_meta
        basis = self._basis(op, chunk, input_chunk.shape)
        scale = ac_q / ac_a if ac_a > 0 else 0.0
        out = (value - np.complex64(dc_a) * basis) * np.float32(scale)
        out += np.complex64(dc_q) * basis
        return out.astype(value.dtype, copy=False)

    def _remember_key(self, op: str, location: int, key: np.ndarray) -> None:
        if self.config.track_similarity_census:
            self._state[op].key_history.setdefault(location, []).append(key.copy())

    def _record(self, op, chunk_idx, case, sim, kb, vb) -> None:
        self.events.append(
            MemoEvent(
                outer=self.outer_iteration,
                inner=self.inner_iteration,
                op=op,
                chunk=chunk_idx,
                case=case,
                similarity=sim,
                key_bytes=kb,
                value_bytes=vb,
            )
        )

    # -- chunk kernels intercepted -----------------------------------------------------

    def _run_fu1d(self, chunk, u_c):
        return self._memoized("Fu1D", chunk, u_c, lambda: super(MemoizedExecutor, self)._run_fu1d(chunk, u_c))

    def _run_fu1d_adj(self, chunk, u1_c):
        return self._memoized("Fu1D*", chunk, u1_c, lambda: super(MemoizedExecutor, self)._run_fu1d_adj(chunk, u1_c))

    def _run_fu2d(self, chunk, u1_c, sub):
        # Memoize the *linear* transform only: the fused kernel's output is
        # affine (it subtracts the constant dhat slab), which would break
        # scale-corrected reuse.  The subtraction is re-applied outside the
        # memoized region; the performance model still accounts for fusion.
        out = self._memoized(
            "Fu2D",
            chunk,
            u1_c,
            lambda: super(MemoizedExecutor, self)._run_fu2d(chunk, u1_c, None),
        )
        if sub is not None:
            out = out - sub
        return out

    def _run_fu2d_adj(self, chunk, r_c):
        return self._memoized("Fu2D*", chunk, r_c, lambda: super(MemoizedExecutor, self)._run_fu2d_adj(chunk, r_c))

    # -- statistics ---------------------------------------------------------------------

    def case_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.case] = out.get(ev.case, 0) + 1
        return out

    def cache_stats(self, op: str):
        return self._state[op].cache.stats if self._state[op].cache else None

    def db_stats(self, op: str):
        """Aggregated database statistics across all location partitions."""
        from .memo_db import MemoDBStats

        agg = MemoDBStats()
        for db in self._state[op].dbs.values():
            agg.queries += db.stats.queries
            agg.hits += db.stats.hits
            agg.inserts += db.stats.inserts
            agg.bytes_inserted += db.stats.bytes_inserted
            agg.bytes_fetched += db.stats.bytes_fetched
        return agg

    def db_entries(self, op: str) -> int:
        return sum(len(db) for db in self._state[op].dbs.values())

    def similarity_census(self, op: str, tau: float | None = None) -> dict[int, list[int]]:
        """Figure 4: per location, for each iteration's key, how many *prior*
        keys at the same location are tau-similar."""
        tau = tau if tau is not None else self.config.tau
        out: dict[int, list[int]] = {}
        for location, keys in self._state[op].key_history.items():
            counts = []
            for i, key in enumerate(keys):
                counts.append(
                    sum(
                        1
                        for prev in keys[:i]
                        if cosine_similarity(key, prev) > tau
                    )
                )
            out[location] = counts
        return out
