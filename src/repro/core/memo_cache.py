"""The memoization cache (paper Section 4.4): private vs global.

The compute node keeps recently retrieved values so repeated hits skip the
remote memory node entirely.  The paper's design point — validated by
Figure 12 — is a *private* cache: one single-entry FIFO cache per chunk
location, giving the same hit rate as a shared global cache at a fraction
of the similarity-comparison cost (one comparison vs one per cached item).
Both variants are implemented so the comparison is reproducible; the
``comparisons`` counter is the 85%-savings statistic of Section 4.4.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..solvers.metrics import cosine_similarity

__all__ = ["CacheStats", "CacheHit", "PrivateMemoCache", "GlobalMemoCache"]


@dataclass(frozen=True)
class CacheHit:
    """A successful cache lookup: the value plus the metadata affine
    (DC-exact, AC-scale-corrected) reuse needs."""

    value: object
    key: np.ndarray
    meta: object


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    comparisons: int = 0
    per_iteration: dict = field(default_factory=dict)  # iteration -> [hits, lookups]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def record(self, iteration: int, hit: bool) -> None:
        bucket = self.per_iteration.setdefault(iteration, [0, 0])
        bucket[0] += int(hit)
        bucket[1] += 1

    def hit_rate_series(self) -> list[tuple[int, float]]:
        return [
            (it, h / max(n, 1)) for it, (h, n) in sorted(self.per_iteration.items())
        ]

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another cache's counters (e.g. per-worker caches into
        a fleet-wide aggregate)."""
        self.hits += other.hits
        self.misses += other.misses
        self.comparisons += other.comparisons
        for it, (h, n) in other.per_iteration.items():
            bucket = self.per_iteration.setdefault(it, [0, 0])
            bucket[0] += h
            bucket[1] += n
        return self


class PrivateMemoCache:
    """One single-entry FIFO cache per chunk location (the mLR design).

    A lookup compares the query key against at most one cached key, so the
    similarity-comparison cost per lookup is O(1) regardless of how many
    locations exist.
    """

    def __init__(self, tau: float) -> None:
        if not (0.0 < tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        self.tau = tau
        self._items: dict = {}
        self.stats = CacheStats()

    def lookup(self, location, key: np.ndarray, iteration: int = 0) -> CacheHit | None:
        """Return the cached entry if the location's entry is tau-similar."""
        item = self._items.get(location)
        result = None
        if item is not None:
            self.stats.comparisons += 1
            cached_key, cached_value, cached_meta = item
            if cosine_similarity(key, cached_key) > self.tau:
                result = CacheHit(cached_value, cached_key, cached_meta)
        self.stats.hits += int(result is not None)
        self.stats.misses += int(result is None)
        self.stats.record(iteration, result is not None)
        return result

    def insert(self, location, key: np.ndarray, value, meta=None) -> None:
        """FIFO with capacity one: the new entry replaces the old."""
        self._items[location] = (
            np.asarray(key, dtype=np.float32).copy(),
            value,
            meta,
        )

    def __len__(self) -> int:
        return len(self._items)

    @property
    def total_entries(self) -> int:
        return len(self._items)


class GlobalMemoCache:
    """Shared cache across all chunk locations (the baseline of Figure 12).

    Capacity equals the number of chunk locations so total memory matches
    the private design; a lookup must compare against every cached item
    ("the global cache has to perform 64 [comparisons] for the 1K^3
    dataset"), which is where its overhead comes from.  FIFO replacement.
    """

    def __init__(self, tau: float, capacity: int) -> None:
        if not (0.0 < tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.tau = tau
        self.capacity = capacity
        self._items: OrderedDict = OrderedDict()  # insertion-ordered, FIFO
        self._counter = 0
        self.stats = CacheStats()

    def lookup(self, location, key: np.ndarray, iteration: int = 0) -> CacheHit | None:
        """Scan all cached items; best tau-similar entry wins (any location's
        entry may serve any query — cross-location data sharing)."""
        best_sim = -2.0
        best = None
        for cached_key, cached_value, cached_meta in self._items.values():
            self.stats.comparisons += 1
            sim = cosine_similarity(key, cached_key)
            if sim > best_sim:
                best_sim = sim
                best = (cached_key, cached_value, cached_meta)
        hit = best_sim > self.tau and best is not None
        self.stats.hits += int(hit)
        self.stats.misses += int(not hit)
        self.stats.record(iteration, hit)
        return CacheHit(best[1], best[0], best[2]) if hit else None

    def insert(self, location, key: np.ndarray, value, meta=None) -> None:
        self._counter += 1
        while len(self._items) >= self.capacity:
            self._items.popitem(last=False)
        self._items[self._counter] = (
            np.asarray(key, dtype=np.float32).copy(),
            value,
            meta,
        )

    def __len__(self) -> int:
        return len(self._items)
