"""ADMM-Offload (paper Section 5.1): constraint-driven variable offloading.

One ADMM iteration has four execution phases — LSP, RSP, lambda update,
penalty update.  Variables idle between their last access in one phase and
their first access in a later phase can live on SSD in between.  The
planner:

1. builds an :class:`IterationSchedule` (phase durations at paper scale from
   the cost model; per-phase variable access points from the solver's honest
   phase trace),
2. enumerates offload plans (subsets of alias-free candidate variables),
3. applies the paper's four constraints —

   (1) prefetch strictly after offload,
   (2) no offload when the prefetch distance would be zero,
   (3) offload time must fit inside the variable's MPD window,
   (4) prefetch must complete before the consuming phase starts
       (otherwise the phase is delayed and the overshoot is exposed),

4. scores each plan with ``MT = M / T`` where ``M`` is the fractional peak-
   memory saving and ``T`` the fractional execution-time loss (matching the
   paper's reported MT=1.38 for ADMM-Offload vs 0.51 for greedy), and picks
   the argmax.

The greedy and LRU baselines of Section 6.6 are implemented alongside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..cluster.costmodel import CostModel, ProblemDims
from ..memio.variables import TrackedVariable, admm_variables

__all__ = [
    "AccessPoint",
    "IterationSchedule",
    "OffloadAction",
    "PlanOutcome",
    "OffloadPlanner",
    "greedy_offload",
    "lru_offload",
]

PHASES = ("lsp", "rsp", "lambda_update", "penalty_update")


@dataclass(frozen=True)
class AccessPoint:
    """A variable's first/last access inside one phase, as phase fractions."""

    variable: str
    phase: str
    first_frac: float
    last_frac: float


@dataclass
class IterationSchedule:
    """Paper-scale phase durations plus variable access geometry.

    ``transient_vars`` maps variables that are only *allocated* during one
    phase (the LSP pipeline work buffers) to that phase; they contribute to
    RSS only there, which is why Figure 13's no-offload curve itself varies
    over an iteration.
    """

    phase_durations: dict[str, float]
    accesses: list[AccessPoint]
    variables: dict[str, TrackedVariable]
    transient_vars: dict[str, str] = field(default_factory=lambda: {"work": "lsp"})

    @property
    def iteration_time(self) -> float:
        return sum(self.phase_durations.values())

    def phase_start(self, phase: str) -> float:
        t = 0.0
        for name in PHASES:
            if name == phase:
                return t
            t += self.phase_durations[name]
        raise KeyError(phase)

    def access_times(self, variable: str) -> list[tuple[float, float]]:
        """Absolute (first, last) access times of each phase touching it."""
        out = []
        for ap in self.accesses:
            if ap.variable == variable:
                start = self.phase_start(ap.phase)
                dur = self.phase_durations[ap.phase]
                out.append((start + ap.first_frac * dur, start + ap.last_frac * dur))
        return sorted(out)

    @classmethod
    def from_cost_model(
        cls,
        dims: ProblemDims,
        cost: CostModel,
        n_inner: int = 4,
        lsp_time: float | None = None,
    ) -> "IterationSchedule":
        """Canonical ADMM iteration (validated against the solver's real
        phase trace in the test suite)."""
        vol = dims.n**3
        cpu = cost.node.cpu.complex_elemwise_per_s
        if lsp_time is None:
            per_inner = sum(
                dims.n_chunks
                * (cost.fft_time(op, dims) + cost.h2d_time(dims) + cost.d2h_time(dims))
                for op in ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*")
            )
            lsp_time = n_inner * per_inner
        durations = {
            "lsp": lsp_time,
            # RSP: grad(u), +lam/rho, isotropic shrink — ~10 field traversals
            "rsp": 10.0 * vol / cpu,
            # lambda update: grad reuse + axpy over the 3-component field
            "lambda_update": 6.0 * vol / cpu,
            # penalty update: two norms over the field
            "penalty_update": 4.0 * vol / cpu,
        }
        accesses = [
            # LSP: psi/lam are read once at entry (forming g); the CG memory
            # g_prev is first needed after the first gradient evaluation and
            # dhat once the first forward pass reaches the subtraction, so
            # their residency staggers against psi/lam's early exit — the
            # structure Figure 7's offload/prefetch timeline exploits.
            AccessPoint("psi", "lsp", 0.0, 0.02),
            AccessPoint("lam", "lsp", 0.0, 0.02),
            AccessPoint("g", "lsp", 0.0, 1.0),
            AccessPoint("g_prev", "lsp", 0.15, 1.0),
            AccessPoint("dhat", "lsp", 0.05, 1.0),
            AccessPoint("u", "lsp", 0.0, 1.0),
            AccessPoint("work", "lsp", 0.05, 1.0),
            # RSP reads u, lam; rewrites psi.
            AccessPoint("u", "rsp", 0.0, 1.0),
            AccessPoint("lam", "rsp", 0.0, 0.9),
            AccessPoint("psi", "rsp", 0.1, 1.0),
            # lambda update reads psi, rewrites lam.
            AccessPoint("psi", "lambda_update", 0.0, 0.9),
            AccessPoint("lam", "lambda_update", 0.0, 1.0),
            # penalty update reads psi and lam norms.
            AccessPoint("psi", "penalty_update", 0.0, 0.8),
            AccessPoint("lam", "penalty_update", 0.0, 0.8),
        ]
        return cls(
            phase_durations=durations,
            accesses=accesses,
            variables=admm_variables(dims.n),
        )


@dataclass(frozen=True)
class OffloadAction:
    """One planned movement."""

    variable: str
    kind: str  # 'offload' | 'prefetch'
    start: float
    end: float


@dataclass
class PlanOutcome:
    """Evaluated offload plan."""

    offloaded: tuple[str, ...]
    actions: list[OffloadAction] = field(default_factory=list)
    peak_bytes: int = 0
    baseline_peak_bytes: int = 0
    exposed_time: float = 0.0
    iteration_time: float = 0.0
    rss_timeline: list[tuple[float, float]] = field(default_factory=list)
    feasible: bool = True

    @property
    def memory_saving(self) -> float:
        if self.baseline_peak_bytes == 0:
            return 0.0
        return 1.0 - self.peak_bytes / self.baseline_peak_bytes

    @property
    def time_loss(self) -> float:
        if self.iteration_time == 0.0:
            return 0.0
        return self.exposed_time / self.iteration_time

    @property
    def mt(self) -> float:
        """The paper's selection metric: memory saving x 1/performance loss."""
        if self.time_loss <= 0.0:
            return float("inf") if self.memory_saving > 0 else 0.0
        return self.memory_saving / self.time_loss


class OffloadPlanner:
    """Evaluates offload plans for the steady-state ADMM iteration."""

    def __init__(self, schedule: IterationSchedule, cost: CostModel) -> None:
        self.schedule = schedule
        self.cost = cost

    # -- plan evaluation ----------------------------------------------------------------

    def candidates(self) -> list[str]:
        """Alias-free variables that are idle for part of the iteration."""
        out = []
        for name, var in self.schedule.variables.items():
            if not var.offload_candidate:
                continue
            if self.schedule.access_times(name):
                out.append(name)
        return sorted(out)

    def evaluate(self, offloaded: tuple[str, ...]) -> PlanOutcome:
        """Apply the four constraints to one candidate subset.

        A variable offloads after its last access of an idle window and
        prefetches for the window's closing phase; any prefetch overshoot
        past that phase's start is exposed time (constraint 4's penalty).
        Steady state is modeled by wrapping windows around the iteration
        boundary.
        """
        sched = self.schedule
        it_time = sched.iteration_time
        actions: list[OffloadAction] = []
        exposed = 0.0
        feasible = True
        for name in offloaded:
            var = sched.variables[name]
            windows = sched.access_times(name)
            if not windows:
                feasible = False
                continue
            write_t = self.cost.ssd_write_time(var.nbytes)
            read_t = self.cost.ssd_read_time(var.nbytes)
            for i, (_first, last) in enumerate(windows):
                nxt_first = (
                    windows[i + 1][0] if i + 1 < len(windows) else windows[0][0] + it_time
                )
                mpd = nxt_first - last
                if mpd <= 0:
                    continue  # constraint (2): zero prefetch distance
                if write_t >= mpd:
                    continue  # constraint (3): offload does not fit
                off_start = last
                off_end = off_start + write_t
                # constraint (4): aim to finish the prefetch by the start of
                # the consuming phase; constraint (1): not before offload end.
                consuming_phase_start = self._phase_start_of_time(nxt_first % it_time)
                if nxt_first >= it_time:
                    consuming_phase_start += it_time
                pf_start = max(off_end, consuming_phase_start - read_t)
                pf_end = pf_start + read_t
                exposed += max(0.0, pf_end - consuming_phase_start)
                actions.append(OffloadAction(name, "offload", off_start, off_end))
                actions.append(OffloadAction(name, "prefetch", pf_start, pf_end))
        outcome = self._account(tuple(offloaded), actions, exposed)
        outcome.feasible = feasible
        return outcome

    def _phase_start_of_time(self, t: float) -> float:
        start = 0.0
        for name in PHASES:
            dur = self.schedule.phase_durations[name]
            if t < start + dur:
                return start
            start += dur
        return start

    def _account(self, offloaded, actions, exposed) -> PlanOutcome:
        sched = self.schedule
        it_time = sched.iteration_time
        timeline = self._sampled_rss(actions)
        peak = max(v for _, v in timeline)
        baseline_peak = max(v for _, v in self._sampled_rss([]))
        return PlanOutcome(
            offloaded=offloaded,
            actions=actions,
            peak_bytes=int(peak),
            baseline_peak_bytes=int(baseline_peak),
            exposed_time=exposed,
            iteration_time=it_time,
            rss_timeline=timeline,
        )

    _SAMPLES = 256

    def _sampled_rss(self, actions) -> list[tuple[float, float]]:
        """RSS over one steady-state iteration from per-variable residency.

        Residency is piecewise linear: offload writes ramp a variable's
        contribution down over the transfer window (it spills chunkwise, as
        the real system does), prefetch reads ramp it back up, and transient
        buffers ramp in over the first tenth of their phase.  Wrap-around is
        handled by unrolling the periodic action schedule over three periods
        and sampling the middle one.
        """
        import numpy as np

        sched = self.schedule
        it_time = sched.iteration_time
        ts = np.linspace(it_time, 2.0 * it_time, self._SAMPLES, endpoint=False)
        rss = np.zeros(self._SAMPLES)
        for name, var in sched.variables.items():
            xs: list[float] = []
            ys: list[float] = []
            acts = sorted(
                (a for a in actions if a.variable == name), key=lambda a: a.start
            )
            for shift in (-it_time, 0.0, it_time, 2.0 * it_time):
                for a in acts:
                    if a.kind == "offload":
                        xs += [a.start + shift, a.end + shift]
                        ys += [1.0, 0.0]
                    else:
                        xs += [a.start + shift, a.end + shift]
                        ys += [0.0, 1.0]
            if xs:
                order = np.argsort(xs)
                prof = np.interp(ts, np.asarray(xs)[order], np.asarray(ys)[order])
            else:
                prof = np.ones(self._SAMPLES)
            phase = sched.transient_vars.get(name)
            if phase is not None:
                # pipeline buffers fill over the first tenth of their phase
                # and drain over the last tenth (chunk pipeline fill/drain)
                t0 = sched.phase_start(phase)
                t1 = t0 + sched.phase_durations[phase]
                ramp = max(0.1 * (t1 - t0), 1e-9)
                local = (ts - it_time)  # position within the sampled period
                alloc = np.clip((local - t0) / ramp, 0.0, 1.0)
                alloc = np.minimum(alloc, np.clip((t1 - local) / ramp, 0.0, 1.0))
                prof = np.minimum(prof, alloc)
            rss += var.nbytes * prof
        return [(float(t - it_time), float(v)) for t, v in zip(ts, rss)]

    # -- plan selection -----------------------------------------------------------------

    def best_plan(self, max_vars: int | None = None) -> PlanOutcome:
        """Exhaustively score candidate subsets and return the max-MT plan."""
        cands = self.candidates()
        best: PlanOutcome | None = None
        limit = max_vars if max_vars is not None else len(cands)
        for r in range(1, limit + 1):
            for subset in itertools.combinations(cands, r):
                outcome = self.evaluate(subset)
                if not outcome.feasible or outcome.memory_saving <= 0:
                    continue
                # maximize MT; among equal MT (e.g. several zero-loss plans)
                # prefer the larger memory saving
                if best is None or (outcome.mt, outcome.memory_saving) > (
                    best.mt,
                    best.memory_saving,
                ):
                    best = outcome
        if best is None:
            best = self.evaluate(())
        return best


def greedy_offload(
    schedule: IterationSchedule, cost: CostModel, top_k: int = 4
) -> PlanOutcome:
    """Section 6.6 baseline: offload the ``top_k`` largest variables
    immediately upon generation and fetch them on demand — both transfer
    directions land on the critical path."""
    cands = sorted(
        (v for v in schedule.variables.values() if v.offload_candidate),
        key=lambda v: v.nbytes,
        reverse=True,
    )[:top_k]
    exposed = 0.0
    actions: list[OffloadAction] = []
    it_time = schedule.iteration_time
    for var in cands:
        windows = schedule.access_times(var.name)
        write_t = cost.ssd_write_time(var.nbytes)
        read_t = cost.ssd_read_time(var.nbytes)
        for i, (_first, last) in enumerate(windows):
            nxt_first = (
                windows[i + 1][0] if i + 1 < len(windows) else windows[0][0] + it_time
            )
            if nxt_first - last <= 0:
                continue
            # write exposed after last use, read exposed at next access
            exposed += write_t + read_t
            actions.append(OffloadAction(var.name, "offload", last, last + write_t))
            actions.append(
                OffloadAction(var.name, "prefetch", nxt_first, nxt_first + read_t)
            )
    planner = OffloadPlanner(schedule, cost)
    outcome = planner._account(tuple(v.name for v in cands), actions, exposed)
    return outcome


def lru_offload(
    schedule: IterationSchedule, cost: CostModel, capacity_fraction: float = 0.7
) -> PlanOutcome:
    """LRU baseline (the 'Why not LRU?' discussion): evict least-recently
    used candidates when residency exceeds the capacity; every fetch is on
    demand, so its read time is exposed, and LRU cannot prefetch."""
    if not (0.0 < capacity_fraction <= 1.0):
        raise ValueError("capacity_fraction must be in (0, 1]")
    sched = schedule
    baseline = sum(v.nbytes for v in sched.variables.values())
    capacity = capacity_fraction * baseline
    # chronological access stream: (time, variable)
    stream = sorted(
        (sched.phase_start(ap.phase) + ap.first_frac * sched.phase_durations[ap.phase], ap.variable)
        for ap in sched.accesses
    )
    resident: dict[str, float] = {v: 0.0 for v in sched.variables}  # var -> last use
    on_ssd: set[str] = set()
    exposed = 0.0
    actions: list[OffloadAction] = []
    rss = baseline

    def rss_now() -> float:
        return sum(
            sched.variables[v].nbytes for v in sched.variables if v not in on_ssd
        )

    timeline = [(0.0, float(rss))]
    for t, var in stream:
        if var in on_ssd:  # demand fetch: fully exposed
            read_t = cost.ssd_read_time(sched.variables[var].nbytes)
            exposed += read_t
            actions.append(OffloadAction(var, "prefetch", t, t + read_t))
            on_ssd.discard(var)
            timeline.append((t, rss_now()))
        resident[var] = t
        # evict LRU candidates until under capacity
        while rss_now() > capacity:
            lru_order = sorted(
                (
                    (resident[v], v)
                    for v in sched.variables
                    if v not in on_ssd
                    and sched.variables[v].offload_candidate
                    and v != var
                ),
            )
            if not lru_order:
                break
            _, victim = lru_order[0]
            write_t = cost.ssd_write_time(sched.variables[victim].nbytes)
            exposed += write_t
            actions.append(OffloadAction(victim, "offload", t, t + write_t))
            on_ssd.add(victim)
            timeline.append((t, rss_now()))
    peak = max(v for _, v in timeline)
    return PlanOutcome(
        offloaded=tuple(sorted({a.variable for a in actions})),
        actions=actions,
        peak_bytes=int(peak),
        baseline_peak_bytes=baseline,
        exposed_time=exposed,
        iteration_time=sched.iteration_time,
        rss_timeline=timeline,
    )
