"""The distributed memoization database (paper Section 4.3.2, Figure 6).

Two cooperating stores on the (simulated) memory node:

- an **index database** organizing keys by similarity — an IVF ANN index
  (:class:`~repro.ann.IVFFlatIndex`), trained lazily on the first keys and
  supporting O(1) dynamic insertion,
- a **value database** holding the FFT-operation outputs as serialized
  arrays under integer ids (:class:`~repro.kvstore.KVStore`).

A query encodes nothing itself: it receives a key vector, finds the nearest
stored key, gates on the paper's Eq. 3 cosine-similarity threshold tau, and
returns the decoded value on acceptance.  All traffic statistics needed by
the performance model (queries, hits, inserted/fetched bytes) are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ann.ivf import IVFFlatIndex
from ..kvstore.serialization import decode_array, encode_array
from ..kvstore.store import KVStore
from ..solvers.metrics import cosine_similarity

__all__ = ["MemoDBStats", "QueryOutcome", "MemoDatabase"]


@dataclass
class MemoDBStats:
    queries: int = 0
    hits: int = 0
    inserts: int = 0
    bytes_inserted: int = 0
    bytes_fetched: int = 0
    #: number of batched messages served via query_batch/insert_batch
    query_batches: int = 0
    insert_batches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def merge(self, other: "MemoDBStats") -> "MemoDBStats":
        """Accumulate another partition's counters into this one."""
        self.queries += other.queries
        self.hits += other.hits
        self.inserts += other.inserts
        self.bytes_inserted += other.bytes_inserted
        self.bytes_fetched += other.bytes_fetched
        self.query_batches += other.query_batches
        self.insert_batches += other.insert_batches
        return self


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one memoization lookup."""

    value: np.ndarray | None
    similarity: float
    matched_id: int
    n_entries: int
    stored_meta: object = None  # reuse metadata recorded at insert time

    @property
    def hit(self) -> bool:
        return self.value is not None


@dataclass
class MemoDatabase:
    """Index + value store for one FFT operation's memoization table."""

    dim: int
    tau: float = 0.92
    index_clusters: int = 16
    index_nprobe: int = 4
    train_min: int = 32

    index: IVFFlatIndex = field(init=False)
    values: KVStore = field(init=False)
    stats: MemoDBStats = field(init=False)
    _pretrain: list = field(init=False, default_factory=list)
    _keys: dict = field(init=False, default_factory=dict)
    _meta: dict = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        self.index = IVFFlatIndex(
            self.dim, n_clusters=self.index_clusters, nprobe=self.index_nprobe
        )
        self.values = KVStore()
        self.stats = MemoDBStats()

    def __len__(self) -> int:
        return len(self.values)

    # -- insertion ---------------------------------------------------------------------

    def insert(self, key: np.ndarray, value: np.ndarray, meta=None) -> int:
        """DB.Put: store the (key, value) pair — plus the reuse metadata
        (input-chunk DC and AC norm) — training the coarse quantizer once
        enough keys accumulated."""
        key = np.asarray(key, dtype=np.float32).ravel()
        if key.shape[0] != self.dim:
            raise ValueError(f"key dim {key.shape[0]} != {self.dim}")
        if not self.index.is_trained:
            self._pretrain.append(key)
            if len(self._pretrain) >= self.train_min:
                self.index.train(np.stack(self._pretrain))
                ids = self.index.add(np.stack(self._pretrain))
                del self._pretrain[:]
                new_id = int(ids[-1])
            else:
                new_id = len(self._pretrain) - 1
        else:
            new_id = int(self.index.add(key[None])[0])
        self._keys[new_id] = key
        self._meta[new_id] = meta
        payload = encode_array(value)
        self.values.put(new_id, payload)
        self.stats.inserts += 1
        self.stats.bytes_inserted += len(payload)
        return new_id

    # -- lookup ------------------------------------------------------------------------

    def query(self, key: np.ndarray) -> QueryOutcome:
        """Find the most similar stored key; return its value if Eq. 3's
        cosine similarity exceeds tau."""
        key = np.asarray(key, dtype=np.float32).ravel()
        self.stats.queries += 1
        n = len(self.values)
        if not self.index.is_trained:
            # cold database: fall back to linear scan over pretrain buffer
            best_sim, best_id = -2.0, -1
            for i, cand in enumerate(self._pretrain):
                sim = cosine_similarity(key, cand)
                if sim > best_sim:
                    best_sim, best_id = sim, i
            if best_id >= 0 and best_sim > self.tau:
                raw = self.values.get(best_id)
                if raw is not None:
                    self.stats.hits += 1
                    self.stats.bytes_fetched += len(raw)
                    return QueryOutcome(
                        decode_array(raw), best_sim, best_id, n,
                        self._meta.get(best_id),
                    )
            return QueryOutcome(None, best_sim, -1, n)
        dists, ids = self.index.search(key[None], k=1)
        matched = int(ids[0, 0])
        if matched < 0:
            return QueryOutcome(None, -2.0, -1, n)
        # Eq. 3 gate on the matched key
        stored_key = self._stored_key(matched)
        sim = cosine_similarity(key, stored_key) if stored_key is not None else -2.0
        if sim > self.tau:
            raw = self.values.get(matched)
            if raw is not None:
                self.stats.hits += 1
                self.stats.bytes_fetched += len(raw)
                return QueryOutcome(
                    decode_array(raw), sim, matched, n, self._meta.get(matched)
                )
        return QueryOutcome(None, sim, matched, n)

    def _stored_key(self, wanted: int) -> np.ndarray | None:
        return self._keys.get(wanted)

    # -- batched service API (paper Section 4.3.3) ---------------------------------------

    def query_batch(self, keys) -> list["QueryOutcome"]:
        """DB.Get for one coalesced key message.

        The memory node receives a 4 KB message holding many keys and
        services them as one batched index lookup; outcomes are returned in
        key order.
        """
        outcomes = [self.query(k) for k in keys]
        if outcomes:
            self.stats.query_batches += 1
        return outcomes

    def insert_batch(self, items) -> list[int]:
        """DB.Put for a batch of ``(key, value, meta)`` triples; returns the
        assigned ids in item order."""
        ids = [self.insert(k, v, meta=m) for k, v, m in items]
        if ids:
            self.stats.insert_batches += 1
        return ids
