"""The distributed memoization database (paper Section 4.3.2, Figure 6).

Two cooperating stores on the (simulated) memory node:

- an **index database** organizing keys by similarity — an IVF ANN index
  (:class:`~repro.ann.IVFFlatIndex`), trained lazily on the first keys and
  supporting O(1) dynamic insertion,
- a **value database** holding the FFT-operation outputs under integer ids.
  Two representations are supported (``value_mode``): ``"array"`` (default)
  keeps the ndarrays in memory — zero-copy hits, with byte *accounting*
  identical to the serialized form — and ``"bytes"`` serializes through
  :func:`~repro.kvstore.encode_array` (the wire format the spill/offload
  paths use).

A query encodes nothing itself: it receives a key vector, finds the nearest
stored key, gates on the paper's Eq. 3 cosine-similarity threshold tau, and
returns the stored value on acceptance.  All traffic statistics needed by
the performance model (queries, hits, inserted/fetched bytes) are counted.

The batched service API (Section 4.3.3) is a *true* batch: one coalesced
key message becomes one stacked ``index.search`` (a single GEMM against the
probed inverted lists) instead of a Python loop of scalar searches, and a
batched insert trains/extends the index with stacked vectors.  The scalar
and batched paths share every per-key decision helper — the cold-database
pretrain scan (vectorized over candidates) and the Eq. 3 gate — so a batch
returns bit-identical outcomes and byte counters to the equivalent scalar
loop, on trained and cold databases alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..ann.buffer import GrowableRows
from ..ann.ivf import IVFFlatIndex
from ..kvstore.serialization import decode_array, encode_array, encoded_nbytes
from ..kvstore.store import ArrayStore, KVStore, store_from_state
from ..obs import runtime as obs

__all__ = ["MemoDBStats", "QueryOutcome", "MemoDatabase"]

_VALUE_MODES = ("array", "bytes")


@dataclass
class MemoDBStats:
    queries: int = 0
    hits: int = 0
    inserts: int = 0
    bytes_inserted: int = 0
    bytes_fetched: int = 0
    #: number of batched messages served via query_batch/insert_batch
    query_batches: int = 0
    insert_batches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def merge(self, other: "MemoDBStats") -> "MemoDBStats":
        """Accumulate another partition's counters into this one."""
        self.queries += other.queries
        self.hits += other.hits
        self.inserts += other.inserts
        self.bytes_inserted += other.bytes_inserted
        self.bytes_fetched += other.bytes_fetched
        self.query_batches += other.query_batches
        self.insert_batches += other.insert_batches
        return self

    @classmethod
    def merged(cls, parts) -> "MemoDBStats":
        """One aggregate over an iterable of partition/shard statistics —
        the single accumulator every reporting layer (shard, router,
        executor, job service) shares instead of hand-rolling the sum."""
        agg = cls()
        for part in parts:
            agg.merge(part)
        return agg

    def delta(self, baseline: "MemoDBStats") -> "MemoDBStats":
        """Counters accrued since ``baseline`` (field-wise difference) —
        e.g. one job's own traffic on a warm-started, stats-carrying
        database."""
        return MemoDBStats(
            queries=self.queries - baseline.queries,
            hits=self.hits - baseline.hits,
            inserts=self.inserts - baseline.inserts,
            bytes_inserted=self.bytes_inserted - baseline.bytes_inserted,
            bytes_fetched=self.bytes_fetched - baseline.bytes_fetched,
            query_batches=self.query_batches - baseline.query_batches,
            insert_batches=self.insert_batches - baseline.insert_batches,
        )

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "hits": self.hits,
            "inserts": self.inserts,
            "bytes_inserted": self.bytes_inserted,
            "bytes_fetched": self.bytes_fetched,
            "query_batches": self.query_batches,
            "insert_batches": self.insert_batches,
        }

    def publish(self, **labels) -> None:
        """Register these counters as ``memo_db_<field>`` gauges in the
        :mod:`repro.obs` registry (no-op while observability is disabled).
        Gauges, not counters: a stats object is a snapshot-valued total, so
        each publish *sets* the authoritative value — publishing twice is
        idempotent rather than double-counting."""
        if not obs.enabled():
            return
        for fname, value in self.as_dict().items():
            obs.gauge(f"memo_db_{fname}", **labels).set(value)
        obs.gauge("memo_db_hit_rate", **labels).set(self.hit_rate)


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one memoization lookup."""

    value: np.ndarray | None
    similarity: float
    matched_id: int
    n_entries: int
    stored_meta: object = None  # reuse metadata recorded at insert time

    @property
    def hit(self) -> bool:
        return self.value is not None


@dataclass
class MemoDatabase:
    """Index + value store for one FFT operation's memoization table.

    ``value_mode="array"`` (default) keeps values as read-only in-memory
    ndarrays: hits return the stored array without a decode copy, while all
    byte statistics still report the serialized frame size, so Figures
    10/11/15 are unchanged.  ``value_mode="bytes"`` stores the serialized
    payloads themselves.
    """

    dim: int
    tau: float = 0.92
    index_clusters: int = 16
    index_nprobe: int = 4
    train_min: int = 32
    value_mode: str = "array"

    index: IVFFlatIndex = field(init=False)
    values: KVStore = field(init=False)
    stats: MemoDBStats = field(init=False)
    _pretrain: GrowableRows = field(init=False, repr=False)
    _keys: dict = field(init=False, default_factory=dict)
    _meta: dict = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if self.value_mode not in _VALUE_MODES:
            raise ValueError(
                f"value_mode must be one of {_VALUE_MODES}, got {self.value_mode!r}"
            )
        self.index = IVFFlatIndex(
            self.dim, n_clusters=self.index_clusters, nprobe=self.index_nprobe
        )
        self.values = ArrayStore() if self.value_mode == "array" else KVStore()
        self.stats = MemoDBStats()
        self._pretrain = GrowableRows((self.dim,), np.float32)

    def __len__(self) -> int:
        return len(self.values)

    # -- insertion ---------------------------------------------------------------------

    def _check_key(self, key: np.ndarray) -> np.ndarray:
        key = np.asarray(key, dtype=np.float32).ravel()
        if key.shape[0] != self.dim:
            raise ValueError(f"key dim {key.shape[0]} != {self.dim}")
        return key

    def _index_key(self, key: np.ndarray) -> int:
        """Register one key with the (possibly still cold) index; returns id."""
        if self.index.is_trained:
            return int(self.index.add(key[None])[0])
        self._pretrain.append(key)
        if len(self._pretrain) >= self.train_min:
            self.index.train(self._pretrain.view)
            ids = self.index.add(self._pretrain.view)
            self._pretrain.clear()
            return int(ids[-1])
        return len(self._pretrain) - 1

    def _store_value(self, new_id: int, value: np.ndarray) -> int:
        """Persist one value; returns the accounted (serialized-frame) size."""
        if self.value_mode == "bytes":
            payload = encode_array(value)
            self.values.put(new_id, payload)
            return len(payload)
        self.values.put(new_id, value)
        return encoded_nbytes(value)

    def insert(self, key: np.ndarray, value: np.ndarray, meta=None) -> int:
        """DB.Put: store the (key, value) pair — plus the reuse metadata
        (input-chunk DC and AC norm) — training the coarse quantizer once
        enough keys accumulated."""
        key = self._check_key(key)
        new_id = self._index_key(key)
        self._keys[new_id] = key
        self._meta[new_id] = meta
        self.stats.inserts += 1
        self.stats.bytes_inserted += self._store_value(new_id, value)
        return new_id

    def insert_batch(self, items) -> list[int]:
        """DB.Put for a batch of ``(key, value, meta)`` triples; ids in item
        order.

        Keys destined for a trained index are stacked and added in one call
        (one cluster-assignment GEMM); the pretrain buffer and value puts
        follow the exact scalar-loop semantics, so the resulting database
        state is identical to inserting one item at a time.
        """
        items = list(items)
        if not items:
            return []
        keys = [self._check_key(k) for k, _v, _m in items]
        ids: list[int] = []
        i = 0
        # cold prefix: fill the pretrain buffer (training once it fills)
        while i < len(items) and not self.index.is_trained:
            ids.append(self._index_key(keys[i]))
            i += 1
        # trained remainder: one stacked dynamic insertion
        if i < len(items):
            ids.extend(int(x) for x in self.index.add(np.stack(keys[i:])))
        for new_id, key, (_k, value, meta) in zip(ids, keys, items):
            self._keys[new_id] = key
            self._meta[new_id] = meta
            self.stats.inserts += 1
            self.stats.bytes_inserted += self._store_value(new_id, value)
        self.stats.insert_batches += 1
        return ids

    # -- lookup ------------------------------------------------------------------------

    def _cold_best(self, key: np.ndarray) -> tuple[int, float]:
        """Vectorized linear scan of the pretrain buffer: ``(best_id, best
        similarity)``; first maximum wins, matching the scalar-scan order."""
        cands = self._pretrain.view
        if not len(cands):
            return -1, -2.0
        na = float(np.linalg.norm(key))
        nb = np.sqrt(np.sum(cands * cands, axis=1, dtype=np.float64))
        denom = na * nb
        dots = cands @ key
        sims = np.where(denom > 0.0, dots / np.where(denom == 0.0, 1.0, denom), 0.0)
        best = int(np.argmax(sims))
        return best, float(sims[best])

    def _gate_one(self, key: np.ndarray, matched: int) -> float:
        """Scalar Eq. 3 gate, bit-identical to one row of :meth:`_gate_rows`
        (same float64 einsum reductions, without the batch scaffolding)."""
        stored = self._keys.get(matched)
        if stored is None:
            return -2.0
        kd = key.astype(np.float64)
        sd = stored.astype(np.float64)
        dot = float(np.einsum("i,i->", kd, sd))
        denom = math.sqrt(float(np.einsum("i,i->", kd, kd))) * math.sqrt(
            float(np.einsum("i,i->", sd, sd))
        )
        return dot / denom if denom > 0.0 else 0.0

    def _gate_rows(self, Q: np.ndarray, matched) -> np.ndarray:
        """Eq. 3 gate for row-aligned (query, matched-id) pairs, vectorized.

        Cosine similarity (:func:`~repro.solvers.metrics.cosine_similarity`
        semantics: zero-norm operands gate to 0) computed in float64 with
        einsum row reductions, which are independent of batch size — so a
        1-row call (the scalar path) is bit-identical to the same row
        inside a batch.  Ids without a stored key gate to -2.
        """
        sims = np.full(len(matched), -2.0)
        rows = [i for i, mid in enumerate(matched) if self._keys.get(int(mid)) is not None]
        if not rows:
            return sims
        Qd = Q[rows].astype(np.float64)
        Kd = np.stack([self._keys[int(matched[i])] for i in rows]).astype(np.float64)
        dots = np.einsum("ij,ij->i", Qd, Kd)
        denom = np.sqrt(np.einsum("ij,ij->i", Qd, Qd)) * np.sqrt(
            np.einsum("ij,ij->i", Kd, Kd)
        )
        sims[rows] = np.where(
            denom > 0.0, dots / np.where(denom == 0.0, 1.0, denom), 0.0
        )
        return sims

    def _fetch(self, matched: int):
        """Value-store read: ``(value, accounted nbytes)`` or ``None``."""
        stored = self.values.get(matched)
        if stored is None:
            return None
        if self.value_mode == "bytes":
            return decode_array(stored), len(stored)
        return stored, encoded_nbytes(stored)

    def _resolve(self, key: np.ndarray, matched: int, sim: float, n: int) -> QueryOutcome:
        """Shared hit/miss resolution once the nearest candidate is known."""
        if matched >= 0 and sim > self.tau:
            fetched = self._fetch(matched)
            if fetched is not None:
                value, nbytes = fetched
                self.stats.hits += 1
                self.stats.bytes_fetched += nbytes
                return QueryOutcome(value, sim, matched, n, self._meta.get(matched))
        if not self.index.is_trained:
            # cold-database misses never expose the scan's candidate id
            return QueryOutcome(None, sim, -1, n)
        return QueryOutcome(None, sim, matched, n)

    def query(self, key: np.ndarray) -> QueryOutcome:
        """Find the most similar stored key; return its value if Eq. 3's
        cosine similarity exceeds tau."""
        key = np.asarray(key, dtype=np.float32).ravel()
        self.stats.queries += 1
        n = len(self.values)
        if not self.index.is_trained:
            matched, sim = self._cold_best(key)
            return self._resolve(key, matched, sim, n)
        with obs.span("memo.ann_query", n=1):
            dists, ids = self.index.search(key[None], k=1)
        matched = int(ids[0, 0])
        if matched < 0:
            return QueryOutcome(None, -2.0, -1, n)
        return self._resolve(key, matched, self._gate_one(key, matched), n)

    # -- batched service API (paper Section 4.3.3) ---------------------------------------

    def query_batch(self, keys) -> list["QueryOutcome"]:
        """DB.Get for one coalesced key message.

        The memory node receives a 4 KB message holding many keys and
        services them as **one** batched index lookup — a single stacked
        ``index.search`` — with the Eq. 3 gate applied per matched pair;
        outcomes are returned in key order, bit-identical to the scalar
        loop (the per-key helpers are shared).
        """
        keys = [np.asarray(k, dtype=np.float32).ravel() for k in keys]
        if not keys:
            return []
        self.stats.queries += len(keys)
        n = len(self.values)
        outcomes: list[QueryOutcome] = []
        if not self.index.is_trained:
            for key in keys:
                matched, sim = self._cold_best(key)
                outcomes.append(self._resolve(key, matched, sim, n))
        else:
            Q = np.stack(keys)
            with obs.span("memo.ann_query", n=len(keys)):
                _dists, ids = self.index.search(Q, k=1)
                matched = ids[:, 0]
                sims = self._gate_rows(Q, matched)  # one vectorized Eq. 3 gate
            for key, mid, sim in zip(keys, matched, sims):
                mid = int(mid)
                if mid < 0:
                    outcomes.append(QueryOutcome(None, -2.0, -1, n))
                else:
                    outcomes.append(self._resolve(key, mid, float(sim), n))
        self.stats.query_batches += 1
        return outcomes

    def _stored_key(self, wanted: int) -> np.ndarray | None:
        return self._keys.get(wanted)

    # -- snapshot hooks ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, restorable state: configuration, the ANN index (trained
        or still cold), the value store, the gate's key table, the reuse
        metadata, the pretrain buffer, and the traffic statistics.

        Reuse metadata entries must be ``None`` or ``(ac_norm, dc)`` pairs
        (what the memoization engine stores); anything else is not
        snapshot-serializable and raises ``TypeError``.
        """
        ids = list(self._keys)
        keys = (
            np.stack([self._keys[i] for i in ids])
            if ids
            else np.zeros((0, self.dim), dtype=np.float32)
        )
        meta_has = np.zeros(len(ids), dtype=np.uint8)
        meta_ac = np.zeros(len(ids), dtype=np.float64)
        # snapshot metadata keeps the DC term at storage precision, off the hot path
        # analysis: ignore[dtype-widen]
        meta_dc = np.zeros(len(ids), dtype=np.complex128)
        for row, i in enumerate(ids):
            meta = self._meta.get(i)
            if meta is None:
                continue
            try:
                ac, dc = meta
            except (TypeError, ValueError):
                raise TypeError(
                    f"metadata for id {i} is not a (ac, dc) pair: {meta!r}"
                ) from None
            meta_has[row] = 1
            meta_ac[row] = float(ac)
            meta_dc[row] = complex(dc)
        return {
            "config": {
                "dim": self.dim,
                "tau": self.tau,
                "index_clusters": self.index_clusters,
                "index_nprobe": self.index_nprobe,
                "train_min": self.train_min,
                "value_mode": self.value_mode,
            },
            "index": self.index.state_dict(),
            "values": self.values.state_dict(),
            "stats": self.stats.as_dict(),
            "pretrain": np.array(self._pretrain.view, copy=True),
            "key_ids": np.asarray(ids, dtype=np.int64),
            "keys": keys,
            "meta_has": meta_has,
            "meta_ac": meta_ac,
            "meta_dc": meta_dc,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MemoDatabase":
        """Rebuild a database that answers ``query``/``query_batch``
        bit-identically to the instance that produced ``state``."""
        cfg = state["config"]
        db = cls(
            dim=int(cfg["dim"]),
            tau=float(cfg["tau"]),
            index_clusters=int(cfg["index_clusters"]),
            index_nprobe=int(cfg["index_nprobe"]),
            train_min=int(cfg["train_min"]),
            value_mode=str(cfg["value_mode"]),
        )
        db.index = IVFFlatIndex.from_state(state["index"])
        db.values = store_from_state(state["values"])
        expected = ArrayStore if db.value_mode == "array" else KVStore
        if type(db.values) is not expected:
            raise ValueError(
                f"value store of type {type(db.values).__name__} does not match "
                f"value_mode {db.value_mode!r}"
            )
        db.stats = MemoDBStats(**{k: int(v) for k, v in state["stats"].items()})
        pretrain = np.asarray(state["pretrain"], dtype=np.float32)
        if len(pretrain):
            db._pretrain.extend(pretrain)
        keys = np.asarray(state["keys"], dtype=np.float32)
        meta_has = np.asarray(state["meta_has"])
        meta_ac = np.asarray(state["meta_ac"])
        meta_dc = np.asarray(state["meta_dc"])
        for row, i in enumerate(np.asarray(state["key_ids"], dtype=np.int64)):
            i = int(i)
            db._keys[i] = np.ascontiguousarray(keys[row])
            db._meta[i] = (
                (float(meta_ac[row]), complex(meta_dc[row])) if meta_has[row] else None
            )
        return db
