"""Sharded memoization service (paper Sections 4.3, 5.2).

At beamline scale a single memory-node database becomes the contention
point every compute node funnels through (Figures 14-16).  mLR's answer is
to *shard* the database over service engines: each chunk location is owned
by exactly one shard, key messages are routed shard-wise, and each shard
services its own batched index lookups independently.

This module provides that service layer for the functional (numeric) side
of the reproduction:

- :func:`shard_of_location` — the one consistent location -> shard mapping,
  shared with the performance model (:mod:`repro.core.perfsim`) so the DES
  routes paper-scale query traffic exactly like the numeric run,
- :class:`MemoShard` — one shard: the per ``(op, location)``
  :class:`~repro.core.memo_db.MemoDatabase` partitions it owns (each
  partition bundles its own ANN index and :class:`~repro.kvstore.KVStore`),
  served through the batched ``query_batch`` / ``insert_batch`` API,
- :class:`MemoShardRouter` — the client-side router: groups a coalesced key
  batch by owning shard, dispatches the per-shard sub-batches, reassembles
  outcomes in request order, and aggregates statistics across shards.

Reuse stays scoped to a chunk location (Section 4.1), so sharding never
changes *what* is memoized — only which service engine answers.  A single
shard therefore reproduces the unsharded database bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .memo_db import MemoDatabase, MemoDBStats

__all__ = ["shard_of_location", "ShardQuery", "ShardInsert", "MemoShard", "MemoShardRouter"]


def shard_of_location(location: int, n_shards: int) -> int:
    """Consistent location -> shard routing.

    Round-robin (modulo) placement: adjacent chunk locations land on
    different shards, which balances per-sweep query traffic even when a
    worker owns a contiguous block of locations.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return int(location) % n_shards


def _scatter_gather(items: list, key_of, service) -> list:
    """Group ``items`` by ``key_of``, service each group as one batch, and
    reassemble the per-item results in the original request order — the one
    routing pattern every batched hop (client -> shard -> partition) uses."""
    results: list = [None] * len(items)
    groups: dict = {}
    for i, item in enumerate(items):
        groups.setdefault(key_of(item), []).append(i)
    for key, idxs in groups.items():
        sub = service(key, [items[i] for i in idxs])
        for i, res in zip(idxs, sub):
            results[i] = res
    return results


@dataclass(frozen=True)
class ShardQuery:
    """One key lookup travelling in a coalesced message."""

    op: str
    location: int
    key: np.ndarray


@dataclass(frozen=True)
class ShardInsert:
    """One (key, value) insertion bound for a shard."""

    op: str
    location: int
    key: np.ndarray
    value: np.ndarray
    meta: object = None


class MemoShard:
    """One database shard: the ``(op, location)`` partitions it owns.

    Each partition is a full :class:`MemoDatabase` (ANN index + value
    store), created lazily at first insert/query, exactly as the unsharded
    engine does — so shard membership is pure routing, never semantics.
    """

    def __init__(self, shard_id: int, make_db) -> None:
        self.shard_id = shard_id
        self._make_db = make_db
        self._dbs: dict[tuple[str, int], MemoDatabase] = {}
        #: batched messages this shard serviced (one per sub-batch received)
        self.query_messages = 0
        self.insert_messages = 0

    def db_for(self, op: str, location: int, dim: int) -> MemoDatabase:
        db = self._dbs.get((op, location))
        if db is None:
            db = self._make_db(dim)
            self._dbs[(op, location)] = db
        return db

    # -- batched service -----------------------------------------------------------

    def query_batch(self, queries: list[ShardQuery]) -> list:
        """Service one shard-bound sub-batch; outcomes in request order.

        The sub-batch is regrouped by owning ``(op, location)`` partition
        and each group goes through :meth:`MemoDatabase.query_batch` — the
        per-partition batched index lookup the memory node performs.
        """
        outcomes = _scatter_gather(
            queries,
            lambda q: (q.op, q.location),
            lambda key, group: self.db_for(
                key[0], key[1], group[0].key.shape[0]
            ).query_batch([q.key for q in group]),
        )
        if queries:
            self.query_messages += 1
        return outcomes

    def insert_batch(self, inserts: list[ShardInsert]) -> list[int]:
        ids = _scatter_gather(
            inserts,
            lambda ins: (ins.op, ins.location),
            lambda key, group: self.db_for(
                key[0], key[1], group[0].key.shape[0]
            ).insert_batch([(ins.key, ins.value, ins.meta) for ins in group]),
        )
        if inserts:
            self.insert_messages += 1
        return ids

    # -- statistics ----------------------------------------------------------------

    def stats(self, op: str | None = None) -> MemoDBStats:
        """Aggregated counters over this shard's partitions (optionally one
        op's).  ``query_batches`` / ``insert_batches`` count the batched
        per-partition calls; the shard's ``query_messages`` /
        ``insert_messages`` attributes count the sub-batch messages it
        received."""
        return MemoDBStats.merged(
            db.stats for (o, _loc), db in self._dbs.items() if op is None or o == op
        )

    # -- snapshot hooks ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """This shard's partitions plus its message counters."""
        return {
            "shard_id": self.shard_id,
            "query_messages": self.query_messages,
            "insert_messages": self.insert_messages,
            "partitions": [
                {"op": op, "location": int(loc), "db": db.state_dict()}
                for (op, loc), db in self._dbs.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Install the snapshotted partitions (overwriting same-keyed ones)
        and restore the message counters."""
        for part in state["partitions"]:
            self._dbs[(str(part["op"]), int(part["location"]))] = MemoDatabase.from_state(
                part["db"]
            )
        self.query_messages = int(state["query_messages"])
        self.insert_messages = int(state["insert_messages"])

    def entries(self, op: str | None = None) -> int:
        return sum(
            len(db) for (o, _loc), db in self._dbs.items() if op is None or o == op
        )

    def locations(self, op: str | None = None) -> list[int]:
        return sorted(
            loc for (o, loc) in self._dbs if op is None or o == op
        )

    def __len__(self) -> int:
        return self.entries()


class MemoShardRouter:
    """Client-side router over ``n_shards`` database shards.

    ``make_db`` is the partition factory (``dim -> MemoDatabase``); every
    shard shares it, so all partitions carry identical tau / index
    configuration.
    """

    def __init__(self, n_shards: int, make_db) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.shards = [MemoShard(s, make_db) for s in range(n_shards)]

    def shard_of(self, location: int) -> int:
        return shard_of_location(location, self.n_shards)

    def shard_for(self, location: int) -> MemoShard:
        return self.shards[self.shard_of(location)]

    def db_for(self, op: str, location: int, dim: int) -> MemoDatabase:
        return self.shard_for(location).db_for(op, location, dim)

    # -- batched routing -----------------------------------------------------------

    def query_batch(self, queries: list[ShardQuery]) -> list:
        """Route one coalesced key batch shard-wise.

        The batch is split into per-shard sub-batches (one message per shard,
        as the coalescer emits them on the wire), each shard services its
        sub-batch, and the outcomes are reassembled in the original request
        order.
        """
        return _scatter_gather(
            queries,
            lambda q: self.shard_of(q.location),
            lambda shard_id, group: self.shards[shard_id].query_batch(group),
        )

    def insert_batch(self, inserts: list[ShardInsert]) -> list[int]:
        """Route a batch of insertions shard-wise; ids in request order."""
        return _scatter_gather(
            inserts,
            lambda ins: self.shard_of(ins.location),
            lambda shard_id, group: self.shards[shard_id].insert_batch(group),
        )

    # -- statistics ----------------------------------------------------------------

    def stats(self, op: str | None = None) -> MemoDBStats:
        """One merged :class:`MemoDBStats` over all shards — the single
        aggregation surface service/job reporting reads (built on
        :meth:`MemoDBStats.merged`, never hand-rolled per caller)."""
        return MemoDBStats.merged(shard.stats(op) for shard in self.shards)

    def per_shard_stats(self, op: str | None = None) -> list[MemoDBStats]:
        return [shard.stats(op) for shard in self.shards]

    def entries(self, op: str | None = None) -> int:
        return sum(shard.entries(op) for shard in self.shards)

    def per_shard_entries(self, op: str | None = None) -> list[int]:
        return [shard.entries(op) for shard in self.shards]

    # -- snapshot hooks ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Per-shard snapshot of the whole service (every shard contributes
        its partitions and message counters)."""
        return {
            "layout": "sharded",
            "n_shards": self.n_shards,
            "shards": [shard.state_dict() for shard in self.shards],
        }

    def load_state(self, state: dict) -> None:
        """Restore a service snapshot, re-routing every partition by its
        chunk location.

        Because shard membership is pure routing (the consistent
        ``shard_of_location`` map), a snapshot taken at any shard count
        restores onto any other: each partition simply lands on the shard
        that owns its location here.  Message counters are per-shard
        observations, so they are only restored when the topology matches.
        """
        shard_states = state["shards"]
        for shard_state in shard_states:
            for part in shard_state["partitions"]:
                loc = int(part["location"])
                self.shard_for(loc)._dbs[(str(part["op"]), loc)] = (
                    MemoDatabase.from_state(part["db"])
                )
        if int(state["n_shards"]) == self.n_shards:
            for shard, shard_state in zip(self.shards, shard_states):
                shard.query_messages = int(shard_state["query_messages"])
                shard.insert_messages = int(shard_state["insert_messages"])
