"""In-process replica-set harness: kill and restart memo daemons on cue.

The chaos suite needs real daemon deaths — not mocked sockets — so this
module runs N :class:`~repro.net.server.MemoServerDaemon` instances in
one process, remembers each one's bound port, and can kill / restart any
replica while clients are connected.  A restart rebinds the *same* port
(SO_REUSEADDR), so clients holding the address reconnect to the reborn
daemon without re-resolution.

``DaemonSchedule`` adds timed kill/restart actions for demos; the test
suite prefers triggering :meth:`ReplicaSet.kill` from solver callbacks,
which is deterministic with respect to the reconstruction's progress.
"""

from __future__ import annotations

import threading

from ..core.config import MemoConfig
from ..net.server import MemoServerDaemon

__all__ = ["ReplicaSet", "DaemonSchedule"]


class ReplicaSet:
    """N memo daemons sharing one configuration, individually killable."""

    def __init__(
        self,
        n: int = 2,
        memo: MemoConfig | None = None,
        n_shards: int = 1,
        host: str = "127.0.0.1",
        name: str = "replica",
        **daemon_kwargs,
    ) -> None:
        if n < 1:
            raise ValueError(f"a replica set needs n >= 1 daemons, got {n}")
        self.memo = memo or MemoConfig()
        self.n_shards = n_shards
        self.name = name
        self._daemon_kwargs = daemon_kwargs
        self._lock = threading.Lock()
        self._daemons: list[MemoServerDaemon | None] = []  # guarded-by: self._lock
        self.addresses: list[tuple[str, int]] = []
        for i in range(n):
            daemon = self._spawn(host, 0, i)
            self._daemons.append(daemon)
            self.addresses.append(daemon.address)

    def _spawn(self, host: str, port: int, index: int) -> MemoServerDaemon:
        return MemoServerDaemon(
            host=host,
            port=port,
            n_shards=self.n_shards,
            memo=self.memo,
            name=f"{self.name}{index}",
            **self._daemon_kwargs,
        )

    # -- observation ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def address_str(self) -> str:
        """The comma-separated form the CLI / config accept."""
        return ",".join(f"{h}:{p}" for h, p in self.addresses)

    def daemon(self, index: int) -> MemoServerDaemon | None:
        """The live daemon at ``index``, or ``None`` while it is dead."""
        with self._lock:
            return self._daemons[index]

    def alive(self, index: int) -> bool:
        with self._lock:
            d = self._daemons[index]
        return d is not None and d.running

    # -- chaos ---------------------------------------------------------------------------

    def kill(self, index: int) -> bool:
        """Tear replica ``index`` down (closes its listener and every
        connection — clients see resets, exactly like a dead host)."""
        with self._lock:
            daemon = self._daemons[index]
            self._daemons[index] = None
        if daemon is None:
            return False
        daemon.close()
        return True

    def restart(self, index: int) -> MemoServerDaemon:
        """Bring replica ``index`` back on its original port (empty tier —
        rejoin warmth comes from anti-entropy resync, not from here)."""
        host, port = self.addresses[index]
        daemon = self._spawn(host, port, index)
        with self._lock:
            old = self._daemons[index]
            self._daemons[index] = daemon
        if old is not None:
            old.close()
        return daemon

    def close(self) -> None:
        with self._lock:
            daemons = list(self._daemons)
            self._daemons = [None] * len(daemons)
        for daemon in daemons:
            if daemon is not None:
                daemon.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DaemonSchedule:
    """Timed kill/restart actions against a :class:`ReplicaSet`.

    ``actions`` is a list of ``(delay_s, verb, index)`` with verb ``"kill"``
    or ``"restart"``; each action fires ``delay_s`` seconds after
    :meth:`start` on a daemon timer thread.  Wall-clock scheduling is
    inherently racy against solver progress — demos use this, tests drive
    :meth:`ReplicaSet.kill` from iteration callbacks instead.
    """

    def __init__(self, replicas: ReplicaSet, actions) -> None:
        self.replicas = replicas
        self.actions = list(actions)
        for delay_s, verb, index in self.actions:
            if verb not in ("kill", "restart"):
                raise ValueError(f"schedule verb must be kill/restart, got {verb!r}")
            if delay_s < 0:
                raise ValueError(f"schedule delay must be >= 0, got {delay_s}")
            if not (0 <= index < len(replicas)):
                raise ValueError(f"schedule names replica {index}, set has {len(replicas)}")
        self._timers: list[threading.Timer] = []

    def start(self) -> "DaemonSchedule":
        for delay_s, verb, index in self.actions:
            fn = self.replicas.kill if verb == "kill" else self.replicas.restart
            timer = threading.Timer(delay_s, fn, args=(index,))
            timer.daemon = True
            self._timers.append(timer)
            timer.start()
        return self

    def cancel(self) -> None:
        for timer in self._timers:
            timer.cancel()

    def __enter__(self) -> "DaemonSchedule":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.cancel()
