"""Process-wide fault-injection seam.

Production code calls the module-level hooks (``on_connect``,
``wrap_socket``, ``maybe_stall``, ``on_snapshot_read``,
``on_snapshot_write``); while no plan is installed every hook is a
zero-overhead early return, so the seam costs one ``is None`` check on
the paths that matter.

Install/uninstall is process-global (tests use the ``injected_faults``
context manager to guarantee cleanup).  The socket wrapper delegates
everything it does not intercept, so the rest of the stack — frame
codec, pipelining, timeouts — sees an ordinary socket object.
"""

from __future__ import annotations

import contextlib
import threading
import time

from .plan import FaultPlan

__all__ = [
    "install",
    "uninstall",
    "installed",
    "active_plan",
    "injected_faults",
    "on_connect",
    "wrap_socket",
    "maybe_stall",
    "on_snapshot_read",
    "on_snapshot_write",
    "FaultSocket",
]

_INSTALL_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None  # guarded-by: _INSTALL_LOCK


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active fault plan."""
    global _PLAN
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected FaultPlan, got {type(plan).__name__}")
    with _INSTALL_LOCK:
        _PLAN = plan
    return plan


def uninstall() -> None:
    global _PLAN
    with _INSTALL_LOCK:
        _PLAN = None


def installed() -> bool:
    return _PLAN is not None


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextlib.contextmanager
def injected_faults(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


# -- hook points called by production code --------------------------------------------------


def on_connect(site: str) -> None:
    """Called before a client connect attempt; may refuse or delay it."""
    plan = _PLAN
    if plan is None:
        return
    event = plan.decide(f"{site}:connect")
    if event is None:
        return
    if event.delay_s > 0:
        time.sleep(event.delay_s)
    if event.kind == "refuse":
        raise ConnectionRefusedError(f"[fault-injection] refused connect at {site}")
    if event.kind == "drop":
        raise ConnectionResetError(f"[fault-injection] dropped connect at {site}")


def wrap_socket(sock, site: str):
    """Wrap an established socket so the plan can break its send/recv."""
    if _PLAN is None:
        return sock
    return FaultSocket(sock, site)


def maybe_stall(site: str) -> None:
    """Server-side slow-shard hook: sleep if the plan says so."""
    plan = _PLAN
    if plan is None:
        return
    event = plan.decide(site)
    if event is not None and event.kind in ("stall", "delay") and event.delay_s > 0:
        time.sleep(event.delay_s)


def on_snapshot_read(site: str, raw: bytes) -> bytes:
    """Corrupt snapshot bytes on the read path (checksum seam test)."""
    plan = _PLAN
    if plan is None:
        return raw
    return plan.corrupt_bytes(f"snapshot:read:{site}", raw)


def on_snapshot_write(site: str, raw: bytes) -> bytes:
    """Corrupt snapshot bytes on the write path."""
    plan = _PLAN
    if plan is None:
        return raw
    return plan.corrupt_bytes(f"snapshot:write:{site}", raw)


class FaultSocket:
    """Socket proxy that injects plan-driven faults on send/recv.

    A ``drop`` poisons the stream: every later operation fails too, the
    same way a genuinely reset TCP connection behaves — the client must
    reconnect, it cannot limp on.
    """

    def __init__(self, sock, site: str) -> None:
        self._sock = sock
        self._site = site
        self._poisoned = False  # single-owner: one connection, its I/O thread

    def __getattr__(self, name):
        return getattr(self._sock, name)

    def _check_poisoned(self) -> None:
        if self._poisoned:
            raise ConnectionResetError(
                f"[fault-injection] poisoned connection at {self._site}"
            )

    def _decide(self, op: str):
        plan = _PLAN
        if plan is None:
            return None
        return plan.decide(f"{self._site}:{op}")

    def sendall(self, data, *args):
        self._check_poisoned()
        event = self._decide("send")
        if event is None:
            return self._sock.sendall(data, *args)
        if event.delay_s > 0:
            time.sleep(event.delay_s)
        if event.kind == "drop":
            self._poisoned = True
            raise ConnectionResetError(
                f"[fault-injection] dropped send at {self._site}"
            )
        if event.kind == "truncate":
            # transmit a strict prefix, then poison: the peer sees a
            # mid-frame EOF / truncated frame
            cut = max(1, len(data) // 2) if len(data) > 1 else 0
            if cut:
                self._sock.sendall(data[:cut])
            self._poisoned = True
            raise ConnectionResetError(
                f"[fault-injection] truncated send at {self._site}"
            )
        if event.kind == "bitflip" and data:
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x01
            return self._sock.sendall(bytes(flipped), *args)
        return self._sock.sendall(data, *args)

    def send(self, data, *args):
        # route single sends through the same decision stream as sendall
        self.sendall(data, *args)
        return len(data)

    def recv(self, bufsize, *args):
        self._check_poisoned()
        event = self._decide("recv")
        if event is None:
            return self._sock.recv(bufsize, *args)
        if event.delay_s > 0:
            time.sleep(event.delay_s)
        if event.kind == "drop":
            self._poisoned = True
            raise ConnectionResetError(
                f"[fault-injection] dropped recv at {self._site}"
            )
        if event.kind == "truncate":
            self._poisoned = True
            return b""  # mid-stream EOF
        data = self._sock.recv(bufsize, *args)
        if event.kind == "bitflip" and data:
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x01
            return bytes(flipped)
        return data

    def recv_into(self, buffer, nbytes=0, *args):
        # the frame reader uses recv(); keep recv_into simple and honest
        self._check_poisoned()
        return self._sock.recv_into(buffer, nbytes, *args)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSocket(site={self._site!r}, poisoned={self._poisoned})"
