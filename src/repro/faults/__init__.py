"""Deterministic, seeded fault injection for the net/memo/snapshot tier.

The memoization tier is fail-open by construction — a cold recompute is
always correct — which makes it safe to degrade aggressively, but only a
systematic way to *inject* faults proves the degradation paths actually
hold.  This package is that layer:

- :class:`~repro.faults.plan.FaultPlan` — a seeded, rule-driven schedule
  of faults (connection refusals, mid-frame socket drops, injected
  latency, truncated / bit-flipped frames, slow-shard stalls, snapshot
  corruption) whose every decision is recorded in a replayable trace,
- :mod:`repro.faults.runtime` — the process-wide injection seam the
  production code calls (zero-overhead no-ops while no plan is
  installed), wrapping the socket layer of :mod:`repro.net` and the
  snapshot I/O of :mod:`repro.service.snapshot`,
- :mod:`repro.faults.chaos` — in-process replica-set harness (kill /
  restart daemons on schedule) for the chaos suite and demos.

Determinism contract: one :class:`FaultPlan` seed fixes every decision
stream (keyed per injection site), so a single-threaded client replays
the exact same fault trace run after run — asserted by the chaos suite.
"""

from .plan import FaultEvent, FaultPlan, FaultRule
from .runtime import active_plan, install, installed, uninstall

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "install",
    "installed",
    "uninstall",
]
