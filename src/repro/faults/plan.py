"""Seeded fault plans: which fault fires where, decided reproducibly.

A :class:`FaultPlan` is a list of :class:`FaultRule` patterns consulted at
every injection *site* (a string like ``client:127.0.0.1:9876:send`` or
``server:memo-server:shard1:service``).  Decisions are drawn from a
**per-site** seeded RNG stream — site streams are independent, so adding
traffic at one site never perturbs the decisions at another — and every
injected fault is appended to the plan's trace with a global sequence
number.  Replaying the same plan seed against the same (single-threaded)
operation sequence therefore reproduces the same trace, byte for byte.

Fault kinds
-----------
``refuse``    connection attempt raises ``ConnectionRefusedError``
``drop``      the socket operation raises ``ConnectionResetError``
              (mid-frame when it fires inside a send/recv)
``delay``     the operation is delayed by ``delay_s`` seconds first
``truncate``  a send transmits only a prefix, then the stream is poisoned
``bitflip``   one byte of the payload is flipped (caught by the frame crc)
``stall``     a server-side shard handler sleeps ``delay_s`` (slow shard)
``corrupt``   snapshot bytes are truncated or bit-flipped on disk I/O
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import dataclass
from fnmatch import fnmatchcase

__all__ = ["FaultRule", "FaultEvent", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("refuse", "drop", "delay", "truncate", "bitflip", "stall", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One injection pattern.

    site:
        ``fnmatch`` glob over the injection-site string (e.g.
        ``"client:*:send"``, ``"server:*:shard*"``, ``"snapshot:read:*"``).
    kind:
        One of :data:`FAULT_KINDS`.
    prob:
        Per-operation firing probability (1.0 = every matching op).
    delay_s:
        Sleep for ``delay``/``stall`` faults.
    after:
        Skip the first ``after`` matching operations at each site —
        lets a plan allow the handshake through and break later frames.
    max_times:
        Fire at most this many times per site (``None`` = unlimited).
    """

    site: str
    kind: str
    prob: float = 1.0
    delay_s: float = 0.0
    after: int = 0
    max_times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.max_times is not None and self.max_times < 1:
            raise ValueError(f"max_times must be >= 1 or None, got {self.max_times}")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plan's trace."""

    seq: int
    site: str
    op_index: int
    kind: str
    delay_s: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "site": self.site,
            "op_index": self.op_index,
            "kind": self.kind,
            "delay_s": self.delay_s,
            "detail": self.detail,
        }


class _SiteStream:
    """Per-site decision state: its own seeded RNG and operation counter."""

    __slots__ = ("rng_state", "op_count", "fired")

    def __init__(self, plan_seed: int, site: str) -> None:
        import random

        rng = random.Random(f"{plan_seed}:{site}")
        self.rng_state = rng
        self.op_count = 0
        self.fired: dict[int, int] = {}  # rule index -> times fired


class FaultPlan:
    """Deterministic fault schedule + replayable trace.  Thread-safe."""

    def __init__(self, seed: int, rules: list[FaultRule] | tuple = ()) -> None:
        self.seed = int(seed)
        self.rules = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(f"rules must be FaultRule, got {type(rule).__name__}")
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteStream] = {}  # guarded-by: self._lock
        self._trace: list[FaultEvent] = []  # guarded-by: self._lock
        self._seq = 0  # guarded-by: self._lock

    # -- decisions -----------------------------------------------------------------------

    def decide(self, site: str) -> FaultEvent | None:
        """Consult the plan for one operation at ``site``; returns the
        fault to inject (already recorded in the trace) or ``None``."""
        with self._lock:
            stream = self._sites.get(site)
            if stream is None:
                stream = self._sites[site] = _SiteStream(self.seed, site)
            op_index = stream.op_count
            stream.op_count += 1
            for i, rule in enumerate(self.rules):
                if not fnmatchcase(site, rule.site):
                    continue
                if op_index < rule.after:
                    continue
                fired = stream.fired.get(i, 0)
                if rule.max_times is not None and fired >= rule.max_times:
                    continue
                # one draw per (matching rule, operation): the stream stays
                # aligned whether or not earlier rules fired
                draw = stream.rng_state.random()
                if draw >= rule.prob:
                    continue
                stream.fired[i] = fired + 1
                event = FaultEvent(
                    seq=self._seq,
                    site=site,
                    op_index=op_index,
                    kind=rule.kind,
                    delay_s=rule.delay_s,
                )
                self._seq += 1
                self._trace.append(event)
                return event
            return None

    def corrupt_bytes(self, site: str, raw: bytes) -> bytes:
        """Apply a ``corrupt``/``truncate``/``bitflip`` decision to a byte
        payload (snapshot I/O seam); returns ``raw`` unchanged when the
        plan decides not to fire."""
        event = self.decide(site)
        if event is None or not raw:
            return raw
        if event.kind in ("truncate", "corrupt"):
            # deterministic cut/flip position derived from plan seed + seq
            pos = zlib.crc32(f"{self.seed}:{event.seq}".encode()) % max(1, len(raw))
            if event.kind == "truncate" or pos % 2 == 0:
                return raw[: max(1, pos)]
            flipped = bytearray(raw)
            flipped[pos] ^= 0x40
            return bytes(flipped)
        if event.kind == "bitflip":
            pos = zlib.crc32(f"{self.seed}:{event.seq}".encode()) % len(raw)
            flipped = bytearray(raw)
            flipped[pos] ^= 0x01
            return bytes(flipped)
        return raw

    # -- the trace -----------------------------------------------------------------------

    @property
    def trace(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._trace)

    def trace_signature(self) -> list[tuple]:
        """Order-independent, replay-comparable view of the trace: per-site
        (op_index, kind) tuples sorted — identical across replays even when
        thread interleaving reorders global sequence numbers."""
        with self._lock:
            return sorted(
                (ev.site, ev.op_index, ev.kind, ev.delay_s) for ev in self._trace
            )

    def trace_jsonl(self) -> str:
        """The trace as one JSON object per line (the CI chaos artifact)."""
        with self._lock:
            return "".join(json.dumps(ev.as_dict()) + "\n" for ev in self._trace)

    def dump_trace(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.trace_jsonl())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, fired={len(self.trace)})"
