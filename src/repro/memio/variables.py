"""ADMM variable inventory: sizes, alias status, offload candidacy.

The offload planner needs to know, for the paper-scale problem, how many
bytes each ADMM variable occupies and whether it is a legal offload
candidate ("a variable ... that does not have pointer aliases" — paper
Section 5.1).  The sizes below are the true footprints of this repository's
solver state (complex64 everywhere, gradient fields carry 3 components),
evaluated at paper-scale dimensions; Figure 2's memory breakdown is
regenerated from them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrackedVariable", "admm_variables", "total_bytes", "peak_resident_bytes"]

_COMPLEX64 = 8


@dataclass(frozen=True)
class TrackedVariable:
    """One solver-state array."""

    name: str
    nbytes: int
    has_aliases: bool = False  # aliased variables are not offload candidates
    description: str = ""

    @property
    def offload_candidate(self) -> bool:
        return not self.has_aliases


def admm_variables(n: int, n_angles: int | None = None) -> dict[str, TrackedVariable]:
    """Variable table for a cubic ``n^3`` problem (detector ``n x n``,
    ``n_angles`` defaults to ``n``)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    nth = n_angles if n_angles is not None else n
    vol = _COMPLEX64 * n**3
    field3 = 3 * vol
    data = _COMPLEX64 * nth * n * n
    return {
        "u": TrackedVariable(
            "u", vol, has_aliases=True, description="reconstruction (aliased by CG)"
        ),
        "psi": TrackedVariable("psi", field3, description="TV splitting variable"),
        "lam": TrackedVariable("lam", field3, description="Lagrange multipliers"),
        "g": TrackedVariable("g", field3, description="psi - lam/rho (LSP target)"),
        "g_prev": TrackedVariable(
            "g_prev", vol, description="previous CG gradient (Algorithm 1 line 10)"
        ),
        "d": TrackedVariable(
            "d", data, has_aliases=True, description="measured projections"
        ),
        "dhat": TrackedVariable("dhat", data, description="F2D(d), Algorithm 2 line 2"),
        "work": TrackedVariable(
            "work",
            2 * data + vol,
            has_aliases=True,
            description="pipeline intermediates (u1, rhat, G)",
        ),
    }


def total_bytes(variables: dict[str, TrackedVariable]) -> int:
    return sum(v.nbytes for v in variables.values())


_NO_OFFLOAD: frozenset[str] = frozenset()


def peak_resident_bytes(
    variables: dict[str, TrackedVariable], offloaded: set[str] = _NO_OFFLOAD
) -> int:
    """Peak CPU residency if ``offloaded`` variables live on SSD between uses."""
    return sum(v.nbytes for name, v in variables.items() if name not in offloaded)
