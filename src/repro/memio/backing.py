"""Functional SSD backing store: real spill/prefetch of numpy arrays.

The performance side of ADMM-Offload is simulated (:mod:`repro.core.offload`
plans against the cost model), but offloading itself is real: this manager
writes arrays to disk, drops the in-memory reference, and prefetches them
back on a worker thread so the fetch at next use is (ideally) a cache hit —
the exact mechanics of paper Section 5.1 at laptop scale.
"""

from __future__ import annotations

import os
import tempfile
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

__all__ = ["SpillStats", "SpillManager"]


@dataclass
class SpillStats:
    spills: int = 0
    loads: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class SpillManager:
    """Spill numpy arrays to a directory; prefetch them back asynchronously.

    Thread-safety contract: concurrent operations on *distinct* names are
    safe (the pipeline's reader and writer use distinct prefixes), and
    ``close()`` may race any of them.  Re-spilling a name while another
    thread concurrently reads that *same* name is not coordinated — one
    writer per name at a time.
    """

    def __init__(self, directory: str | None = None, workers: int = 2) -> None:
        self._own_dir = directory is None
        self._dir = tempfile.mkdtemp(prefix="mlr-spill-") if directory is None else directory
        os.makedirs(self._dir, exist_ok=True)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="spill")
        self._futures: dict[str, Future] = {}  # guarded-by: self._lock
        self._on_disk: set[str] = set()  # guarded-by: self._lock
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # in-flight spill() writes and fetch() loads
        self._active_io = 0  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock
        self.stats = SpillStats()  # guarded-by: self._lock

    # -- core operations ------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, f"{name}.npy")

    def spill(self, name: str, array: np.ndarray) -> None:
        """Write ``array`` to SSD under ``name`` (synchronous, like the
        paper's offload-after-last-access).

        The closed check and the write are one atomic decision against
        :meth:`close`: a concurrent ``close()`` waits for in-flight spills,
        so their files are registered (and cleaned up) rather than raced.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SpillManager is closed")
            # a re-spill must not race an in-flight load of the same file:
            # retire the old prefetch before rewriting the bytes it reads
            stale = self._futures.pop(name, None)
            self._active_io += 1
        if stale is not None and not stale.cancel():
            try:
                stale.result()
            except (OSError, ValueError, EOFError):
                pass  # the stale load's outcome is irrelevant — it is discarded
        ok = False
        try:
            np.save(self._path(name), array)
            ok = True
        finally:
            with self._lock:
                self._active_io -= 1
                if ok:
                    self._on_disk.add(name)
                    self._futures.pop(name, None)
                    self.stats.spills += 1
                    self.stats.bytes_written += array.nbytes
                self._idle.notify_all()

    def prefetch(self, name: str) -> None:
        """Start loading ``name`` on a background thread.

        Idempotent for an already-in-flight name (no second submission, no
        double-counted statistics) and a no-op on a closed manager — a
        pipeline reader racing the manager's shutdown must not die on it.
        """
        with self._lock:
            if self._closed:
                return
            if name not in self._on_disk:
                raise KeyError(f"{name!r} is not spilled")
            if name in self._futures:
                return
            self._futures[name] = self._pool.submit(np.load, self._path(name))
            self.stats.prefetches += 1

    def fetch(self, name: str) -> np.ndarray:
        """Return the array, waiting on an in-flight prefetch if one exists.

        Counted as in-flight I/O: a concurrent :meth:`close` waits for it
        before deleting an owned directory's files.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SpillManager is closed")
            fut = self._futures.pop(name, None)
            if name not in self._on_disk:
                raise KeyError(f"{name!r} is not spilled")
            self._active_io += 1
        try:
            if fut is not None:
                hit = fut.done()
                arr = fut.result()
            else:
                hit = False
                arr = np.load(self._path(name))
        finally:
            with self._lock:
                self._active_io -= 1
                self._idle.notify_all()
        with self._lock:
            if hit:
                self.stats.prefetch_hits += 1
            self.stats.loads += 1
            self.stats.bytes_read += arr.nbytes
        return arr

    def discard(self, name: str) -> None:
        with self._lock:
            self._futures.pop(name, None)
            self._on_disk.discard(name)
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def is_spilled(self, name: str) -> bool:
        return name in self._on_disk

    def close(self) -> None:
        """Shut down (idempotent): waits out in-flight spills and
        prefetches, then removes an owned spill directory.  Safe to call
        from a second thread while writes/loads are in flight."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._active_io > 0:
                self._idle.wait()
        self._pool.shutdown(wait=True)
        if self._own_dir:
            for name in list(self._on_disk):
                self.discard(name)
            try:
                os.rmdir(self._dir)
            except OSError:
                pass

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
