"""Functional SSD backing store: real spill/prefetch of numpy arrays.

The performance side of ADMM-Offload is simulated (:mod:`repro.core.offload`
plans against the cost model), but offloading itself is real: this manager
writes arrays to disk, drops the in-memory reference, and prefetches them
back on a worker thread so the fetch at next use is (ideally) a cache hit —
the exact mechanics of paper Section 5.1 at laptop scale.
"""

from __future__ import annotations

import os
import tempfile
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SpillStats", "SpillManager"]


@dataclass
class SpillStats:
    spills: int = 0
    loads: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class SpillManager:
    """Spill numpy arrays to a directory; prefetch them back asynchronously."""

    def __init__(self, directory: str | None = None, workers: int = 2) -> None:
        self._own_dir = directory is None
        self._dir = tempfile.mkdtemp(prefix="mlr-spill-") if directory is None else directory
        os.makedirs(self._dir, exist_ok=True)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="spill")
        self._futures: dict[str, Future] = {}
        self._on_disk: set[str] = set()
        self._lock = threading.Lock()
        self.stats = SpillStats()

    # -- core operations ------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, f"{name}.npy")

    def spill(self, name: str, array: np.ndarray) -> None:
        """Write ``array`` to SSD under ``name`` (synchronous, like the
        paper's offload-after-last-access)."""
        np.save(self._path(name), array)
        with self._lock:
            self._on_disk.add(name)
            self._futures.pop(name, None)
        self.stats.spills += 1
        self.stats.bytes_written += array.nbytes

    def prefetch(self, name: str) -> None:
        """Start loading ``name`` on a background thread."""
        with self._lock:
            if name not in self._on_disk:
                raise KeyError(f"{name!r} is not spilled")
            if name in self._futures:
                return
            self._futures[name] = self._pool.submit(np.load, self._path(name))
        self.stats.prefetches += 1

    def fetch(self, name: str) -> np.ndarray:
        """Return the array, waiting on an in-flight prefetch if one exists."""
        with self._lock:
            fut = self._futures.pop(name, None)
            if name not in self._on_disk:
                raise KeyError(f"{name!r} is not spilled")
        if fut is not None:
            if fut.done():
                self.stats.prefetch_hits += 1
            arr = fut.result()
        else:
            arr = np.load(self._path(name))
        self.stats.loads += 1
        self.stats.bytes_read += arr.nbytes
        return arr

    def discard(self, name: str) -> None:
        with self._lock:
            self._futures.pop(name, None)
            self._on_disk.discard(name)
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def is_spilled(self, name: str) -> bool:
        return name in self._on_disk

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        if self._own_dir:
            for name in list(self._on_disk):
                self.discard(name)
            try:
                os.rmdir(self._dir)
            except OSError:
                pass

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
