"""Offload substrate: variable inventory, phase tracing, SSD backing."""

from .backing import SpillManager, SpillStats
from .tracer import Access, PhaseTrace
from .variables import (
    TrackedVariable,
    admm_variables,
    peak_resident_bytes,
    total_bytes,
)

__all__ = [
    "SpillManager",
    "SpillStats",
    "Access",
    "PhaseTrace",
    "TrackedVariable",
    "admm_variables",
    "peak_resident_bytes",
    "total_bytes",
]
