"""Phase-level variable-access tracing of an ADMM iteration.

The offload planner's constraints are expressed in terms of *first and last
accesses of a variable within each execution phase* (LSP, RSP, lambda
update, penalty update).  :class:`PhaseTrace` is the tracer object the
solver accepts: the solver calls ``begin_iteration`` / ``begin_phase`` /
``touch`` at its honest instrumentation points, and the planner reads the
ordered access log back.  "This requires profiling only a single ADMM-FFT
iteration" (Section 5.1) — one traced iteration is enough because the
pattern repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Access", "PhaseTrace"]


@dataclass(frozen=True)
class Access:
    iteration: int
    phase: str
    variable: str
    mode: str  # 'r' | 'w' | 'rw'
    seq: int


@dataclass
class PhaseTrace:
    """Ordered access log across iterations."""

    accesses: list[Access] = field(default_factory=list)
    _iteration: int = -1
    _phase: str = ""
    _seq: int = 0

    # -- solver-facing hooks ---------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        self._iteration = iteration

    def begin_phase(self, phase: str) -> None:
        self._phase = phase

    def touch(self, variable: str, mode: str) -> None:
        if mode not in ("r", "w", "rw"):
            raise ValueError(f"mode must be r/w/rw, got {mode!r}")
        self.accesses.append(
            Access(self._iteration, self._phase, variable, mode, self._seq)
        )
        self._seq += 1

    def end_iteration(self) -> None:
        self._phase = ""

    # -- planner-facing queries --------------------------------------------------------

    def iterations(self) -> list[int]:
        return sorted({a.iteration for a in self.accesses})

    def phases(self, iteration: int) -> list[str]:
        seen: list[str] = []
        for a in self.accesses:
            if a.iteration == iteration and a.phase not in seen:
                seen.append(a.phase)
        return seen

    def variables(self) -> list[str]:
        return sorted({a.variable for a in self.accesses})

    def accesses_in(self, iteration: int, phase: str) -> list[Access]:
        return [
            a for a in self.accesses if a.iteration == iteration and a.phase == phase
        ]

    def phase_access_map(self, iteration: int) -> dict[str, set[str]]:
        """phase -> set of variables it touches, for one iteration."""
        out: dict[str, set[str]] = {}
        for a in self.accesses:
            if a.iteration == iteration:
                out.setdefault(a.phase, set()).add(a.variable)
        return out

    def last_access_phase(self, iteration: int, variable: str) -> str | None:
        last = None
        for a in self.accesses:
            if a.iteration == iteration and a.variable == variable:
                last = a.phase
        return last
