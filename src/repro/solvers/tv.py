"""Total-variation pieces: the TV seminorm and the RSP proximal update.

The regularization subproblem (RSP) of the paper's ADMM splitting is

    min_psi  alpha*||psi||_1,iso + rho/2 * ||grad(u) + lambda/rho - psi||^2

whose closed-form solution is the isotropic vector soft-threshold
(:func:`shrink_isotropic`) applied to ``grad(u) + lambda/rho`` with threshold
``alpha/rho`` — computationally lightweight, as Section 2 notes.
"""

from __future__ import annotations

import numpy as np

from .grad import grad3, grad_norm

__all__ = ["tv_norm", "shrink_isotropic", "rsp_update"]


def tv_norm(u: np.ndarray) -> float:
    """Isotropic total variation ``sum_x |grad u|_2`` of a volume."""
    return float(np.sum(grad_norm(grad3(u))))


def shrink_isotropic(z: np.ndarray, kappa: float) -> np.ndarray:
    """Isotropic (grouped) soft-threshold of a gradient field.

    Shrinks the pointwise vector magnitude by ``kappa``:
    ``z * max(1 - kappa/|z|, 0)``; complex fields shrink by magnitude, which
    is the correct prox of the modulus-l1 norm.
    """
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    mag = grad_norm(z)
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = np.where(mag > 0.0, np.maximum(1.0 - kappa / mag, 0.0), 0.0)
    return (z * factor[None]).astype(z.dtype)


def rsp_update(
    u: np.ndarray, lam: np.ndarray, alpha: float, rho: float
) -> np.ndarray:
    """One RSP step: ``psi = shrink(grad u + lam/rho, alpha/rho)``."""
    if rho <= 0:
        raise ValueError(f"rho must be > 0, got {rho}")
    return shrink_isotropic(grad3(u) + lam / rho, alpha / rho)
