"""The laminography subproblem (LSP) — Algorithms 1 and 2 of the paper.

LSP refines the reconstruction ``u`` by ``n_inner`` gradient-only CG steps on

    f(u) = 1/2 ||L u - d||^2  +  rho/2 ||grad(u) - g||^2,    g = psi - lam/rho

Two operator pipelines are supported:

``cancellation=False`` (Algorithm 1)
    six FFT ops per inner iteration — forward ``Fu1D, Fu2D, F2D*`` and
    adjoint ``F2D, Fu2D*, Fu1D*`` — with the residual formed in the *space*
    domain.

``cancellation=True`` (Algorithm 2)
    the detector-plane pair ``F2D*``/``F2D`` cancels (they are unitary
    inverses), ``d`` is mapped once to ``dhat = F2D d``, and the residual is
    formed in the *frequency* domain: four FFT ops per inner iteration.
    With ``fusion=True`` the subtraction rides inside the ``Fu2D`` kernel
    call (Figure 5b), saving a kernel launch and keeping the subtraction on
    the GPU.

Both paths produce identical gradients to rounding error (``F2D`` is
unitary), which ``tests/solvers/test_lsp.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cg import NCGState
from .grad import div3, grad3

__all__ = ["LSPResult", "LSP", "estimate_normal_lipschitz"]


def estimate_normal_lipschitz(ops, n_iters: int = 8, seed: int = 0) -> float:
    """Power-iteration estimate of ``lambda_max(L* L)`` for step sizing."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(ops.geometry.vol_shape).astype(np.complex64)
    x /= np.linalg.norm(x)
    sigma = 1.0
    for _ in range(n_iters):
        y = ops.adjoint_freq(ops.forward_freq(x))
        sigma = float(np.linalg.norm(y))
        if sigma == 0.0:
            return 1.0
        x = y / sigma
    return sigma


@dataclass
class LSPResult:
    """Outcome of one LSP solve (one outer ADMM iteration's u-update)."""

    u: np.ndarray
    grad_norms: list[float] = field(default_factory=list)
    data_loss: float = 0.0  # 1/2 ||Lu - d||^2 at the last inner iterate


class LSP:
    """Laminography subproblem solver operating through an executor."""

    def __init__(
        self,
        executor,
        n_inner: int = 4,
        cancellation: bool = True,
        fusion: bool = True,
        lipschitz_data: float | None = None,
        step_max_rel: float = 8.0,
    ) -> None:
        if n_inner < 1:
            raise ValueError(f"n_inner must be >= 1, got {n_inner}")
        if fusion and not cancellation:
            raise ValueError("fusion requires cancellation (Algorithm 2 pipeline)")
        self.executor = executor
        self.n_inner = n_inner
        self.cancellation = cancellation
        self.fusion = fusion
        self.step_max_rel = step_max_rel
        self._sigma = (
            lipschitz_data
            if lipschitz_data is not None
            else estimate_normal_lipschitz(executor.ops)
        )

    def lipschitz(self, rho: float) -> float:
        # lambda_max(grad^T grad) = 4 * ndim = 12 for periodic differences.
        return self._sigma + 12.0 * rho

    def solve(
        self,
        u: np.ndarray,
        g: np.ndarray,
        rho: float,
        d: np.ndarray | None = None,
        dhat: np.ndarray | None = None,
        tracer=None,
    ) -> LSPResult:
        """Run ``n_inner`` CG steps from ``u`` (Algorithm 1 lines 2--11).

        Exactly one of ``d`` (space domain, Algorithm 1) or ``dhat``
        (frequency domain, Algorithm 2 — requires ``cancellation=True``)
        must be provided.
        """
        ex = self.executor
        if self.cancellation:
            if dhat is None:
                raise ValueError("cancellation pipeline needs dhat = F2D(d)")
        elif d is None:
            raise ValueError("Algorithm 1 pipeline needs space-domain data d")
        ncg = NCGState(lipschitz=self.lipschitz(rho), step_max_rel=self.step_max_rel)
        result = LSPResult(u=u.astype(np.complex64, copy=True))
        for inner in range(self.n_inner):
            ex.begin_inner(inner)
            if tracer is not None:
                tracer.touch("u", "r")
                tracer.touch("g", "r")
            if self.cancellation:
                # Forward pass (Algorithm 2 line 5) with optional fused subtract.
                if self.fusion:
                    rhat = ex.fu2d(ex.fu1d(result.u), subtract=dhat)
                else:
                    rhat = ex.fu2d(ex.fu1d(result.u)) - dhat
                data_grad = ex.fu1d_adj(ex.fu2d_adj(rhat))
                residual_sq = float(np.vdot(rhat, rhat).real)
            else:
                # Forward pass (Algorithm 1 line 4), residual in space domain.
                dprime = ex.f2d_adj(ex.fu2d(ex.fu1d(result.u)))
                r = dprime - d
                data_grad = ex.fu1d_adj(ex.fu2d_adj(ex.f2d(r)))
                residual_sq = float(np.vdot(r, r).real)
            gp = grad3(result.u)  # g' <- grad u (line 5/6)
            G = data_grad - rho * div3(gp - g)  # adjoint pass (line 7/8)
            if tracer is not None:
                tracer.touch("g_prev", "rw")
                tracer.touch("u", "w")
            result.u = ncg.step(result.u, G)  # CG update (line 9)
            result.grad_norms.append(float(np.linalg.norm(G)))
            result.data_loss = 0.5 * residual_sq
        return result
