"""Conjugate-gradient machinery for the laminography subproblem.

Two flavors:

- :func:`cg_linear` — textbook CG on a positive (semi)definite operator,
  used as a reference and in unit tests;
- :class:`NCGState` — the gradient-only update the paper's Algorithm 1 line 9
  performs (``u <- CG(u, G, G_prev)``): a Dai--Yuan conjugate direction with a
  Barzilai--Borwein step length.  It needs exactly one gradient evaluation
  (one forward + one adjoint pass) per inner iteration, which is what gives
  LSP its fixed six-FFT-ops (four after cancellation) cost per iteration —
  the quantity mLR's memoization engine and the cost model both count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["cg_linear", "NCGState"]


def _vdot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.real(np.vdot(a, b)))


def cg_linear(
    apply_A: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: np.ndarray,
    n_iters: int,
    tol: float = 0.0,
) -> tuple[np.ndarray, list[float]]:
    """Solve ``A x = b`` with ``n_iters`` CG steps; returns (x, residual norms)."""
    x = x0.copy()
    r = b - apply_A(x)
    p = r.copy()
    rs = _vdot(r, r)
    history = [np.sqrt(rs)]
    for _ in range(n_iters):
        if history[-1] <= tol:
            break
        Ap = apply_A(p)
        denom = _vdot(p, Ap)
        if denom <= 0.0:
            break  # numerical breakdown / semidefinite direction
        alpha = rs / denom
        x += alpha * p
        r -= alpha * Ap
        rs_new = _vdot(r, r)
        history.append(np.sqrt(rs_new))
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, history


@dataclass
class NCGState:
    """Stateful gradient-only update (Barzilai--Borwein steepest descent).

    Usage per inner iteration::

        G = gradient(u)
        u = state.step(u, G)

    The first step uses ``1/lipschitz`` as the step length (callers estimate
    the Lipschitz constant once per solve, e.g. by power iteration on the
    normal operator); subsequent steps use the Barzilai--Borwein BB1 length
    ``<s,s>/<s,y>`` from consecutive iterates/gradients.  For strictly convex
    quadratics — which LSP is — BB steepest descent is globally convergent
    without any line search (Raydan 1993), so the update needs exactly one
    gradient (one forward + one adjoint operator pass) per iteration; that is
    the fixed per-iteration FFT-operation budget the paper's Algorithm 1
    line 9 (``u <- CG(u, G, G_prev)``) assumes.  The BB length is clipped to
    ``[step_min, step_max]`` for robustness on nearly flat directions.
    """

    lipschitz: float
    step_min: float = 1e-8
    #: upper clamp as a multiple of the safe 1/L gradient step.  BB steps can
    #: legitimately exceed 1/L (that is their point), but with *approximate*
    #: gradients — memoized FFT results — unbounded BB steps diverge, so the
    #: clamp bounds the damage while preserving most of BB's acceleration.
    step_max_rel: float = 25.0
    _prev_g: np.ndarray | None = field(default=None, repr=False)
    _prev_u: np.ndarray | None = field(default=None, repr=False)

    def reset(self) -> None:
        self._prev_g = None
        self._prev_u = None

    def step(self, u: np.ndarray, g: np.ndarray) -> np.ndarray:
        if self.lipschitz <= 0:
            raise ValueError(f"lipschitz must be > 0, got {self.lipschitz}")
        if self._prev_g is None:
            step = 1.0 / self.lipschitz
        else:
            y = g - self._prev_g
            s = u - self._prev_u
            sy = _vdot(s, y)
            ss = _vdot(s, s)
            # BB1; fall back to the safe Lipschitz step on negative curvature.
            step = ss / sy if sy > 1e-30 else 1.0 / self.lipschitz
            step = float(
                np.clip(step, self.step_min, self.step_max_rel / self.lipschitz)
            )
        self._prev_g = g.copy()
        self._prev_u = u.copy()
        return u - step * g
