"""Discrete gradient / divergence with an exact adjoint pair.

ADMM's convergence analysis (and the CG inner solver) require ``div`` to be
the exact negative adjoint of ``grad``; we use periodic forward differences,
for which ``<grad u, p> == <u, -div p>`` holds to rounding error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grad3", "div3", "grad_norm"]


def grad3(u: np.ndarray) -> np.ndarray:
    """Forward-difference gradient, periodic BC.  ``(…) -> (3, …)``."""
    g = np.empty((3,) + u.shape, dtype=u.dtype)
    for c in range(3):
        g[c] = np.roll(u, -1, axis=c) - u
    return g


def div3(p: np.ndarray) -> np.ndarray:
    """Divergence (negative adjoint of :func:`grad3`).  ``(3, …) -> (…)``."""
    if p.shape[0] != 3:
        raise ValueError(f"expected leading axis of size 3, got {p.shape}")
    out = np.zeros(p.shape[1:], dtype=p.dtype)
    for c in range(3):
        out += p[c] - np.roll(p[c], 1, axis=c)
    return out


def grad_norm(g: np.ndarray) -> np.ndarray:
    """Pointwise Euclidean magnitude of a gradient field ``(3, …) -> (…)``."""
    return np.sqrt(np.sum(np.abs(g) ** 2, axis=0))
