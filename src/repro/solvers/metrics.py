"""Quality metrics: the paper's E / Accuracy (Eqs. 4--5) and friends."""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_error",
    "accuracy",
    "cosine_similarity",
    "psnr",
    "rmse",
]


def relative_error(r_comp: np.ndarray, r_lb: np.ndarray) -> float:
    """Paper Eq. 4: ``E = ||R_comp - R_LB||_F / ||R_comp||_F``.

    ``r_comp`` is the reference reconstruction (original ADMM-FFT), ``r_lb``
    the memoized one.
    """
    denom = float(np.linalg.norm(r_comp))
    if denom == 0.0:
        raise ValueError("reference reconstruction has zero norm")
    return float(np.linalg.norm(r_comp - r_lb)) / denom


def accuracy(r_comp: np.ndarray, r_lb: np.ndarray) -> float:
    """Paper Eq. 5: ``Accuracy = 1 - E``."""
    return 1.0 - relative_error(r_comp, r_lb)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Paper Eq. 3 on flattened arrays (complex-safe: real part of the
    normalized inner product)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.real(np.vdot(a, b))) / (na * nb)


def rmse(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.sqrt(np.mean(np.abs(a - b) ** 2)))


def psnr(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB against ``reference``'s dynamic range."""
    peak = float(np.max(np.abs(reference)))
    if peak == 0.0:
        raise ValueError("reference has zero dynamic range")
    err = rmse(reference, estimate)
    if err == 0.0:
        return float("inf")
    return 20.0 * np.log10(peak / err)
