"""Full ADMM-FFT driver for TV-regularized laminography (paper Section 2).

Solves::

    min_u  1/2 ||L u - d||^2 + alpha * ||u||_TV

via the splitting ``psi = grad(u)`` with scaled updates:

- **LSP**   (heavy)  : u-update by ``n_inner`` CG steps (:mod:`.lsp`),
- **RSP**   (light)  : psi-update by isotropic soft-threshold (:mod:`.tv`),
- **lambda update**  : ``lam += rho * (grad u - psi)``,
- **penalty update** : residual-balancing adaptation of ``rho``.

Those four named *execution phases* per iteration are exactly the phase
structure ADMM-Offload (paper Section 5.1) schedules variable offload and
prefetch around; the solver reports a per-phase access trace through the
optional ``tracer``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..lamino.operators import LaminoOperators
from ..obs import runtime as obs
from .executor import DirectExecutor
from .grad import div3, grad3, grad_norm
from .lsp import LSP
from .tv import shrink_isotropic

__all__ = ["ADMMConfig", "ADMMResult", "ADMMSolver", "PHASES"]

#: Execution phases of one ADMM iteration, in order (Figure 7).
PHASES = ("lsp", "rsp", "lambda_update", "penalty_update")


@dataclass
class ADMMConfig:
    """Hyper-parameters of the ADMM-FFT reconstruction."""

    alpha: float = 1e-3
    rho: float = 0.5
    n_outer: int = 60
    n_inner: int = 4
    cancellation: bool = True
    fusion: bool = True
    adaptive_rho: bool = True
    rho_mu: float = 10.0
    rho_scale: float = 2.0
    track_loss: bool = True
    #: BB step clamp (multiple of the safe 1/L step) passed to the inner CG.
    #: Large values give the fastest exact-arithmetic convergence; when the
    #: executor serves approximate (memoized) gradients, smaller clamps damp
    #: the injected errors instead of amplifying them.
    step_max_rel: float = 8.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.rho <= 0:
            raise ValueError(f"rho must be > 0, got {self.rho}")
        if self.n_outer < 1:
            raise ValueError(f"n_outer must be >= 1, got {self.n_outer}")
        if self.n_inner < 1:
            raise ValueError(f"n_inner must be >= 1, got {self.n_inner}")
        if self.rho_mu <= 0:
            raise ValueError(f"rho_mu must be > 0, got {self.rho_mu}")
        if self.rho_scale <= 1.0:
            raise ValueError(f"rho_scale must be > 1, got {self.rho_scale}")
        if self.step_max_rel <= 0:
            raise ValueError(f"step_max_rel must be > 0, got {self.step_max_rel}")
        if self.fusion and not self.cancellation:
            raise ValueError("fusion requires cancellation")


@dataclass
class ADMMResult:
    """Reconstruction plus per-iteration history."""

    u: np.ndarray
    history: dict[str, list[float]] = field(default_factory=dict)
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def loss(self) -> list[float]:
        return self.history.get("loss", [])


class ADMMSolver:
    """ADMM-FFT with pluggable operation executor (the mLR insertion point)."""

    def __init__(
        self,
        ops: LaminoOperators,
        config: ADMMConfig | None = None,
        executor=None,
    ) -> None:
        self.ops = ops
        self.config = config or ADMMConfig()
        self.executor = executor if executor is not None else DirectExecutor(ops)
        self.lsp = LSP(
            self.executor,
            n_inner=self.config.n_inner,
            cancellation=self.config.cancellation,
            fusion=self.config.fusion,
            step_max_rel=self.config.step_max_rel,
        )

    def run(
        self,
        d: np.ndarray,
        u0: np.ndarray | None = None,
        callback: Callable[[int, np.ndarray, dict], None] | None = None,
        tracer=None,
        dhat: np.ndarray | None = None,
    ) -> ADMMResult:
        """Reconstruct from projections ``d`` (real or complex, paper shape
        ``(n_angles, h, w)``).

        ``dhat`` optionally supplies a precomputed ``F2D d`` (used only
        under operation cancellation) — the streaming-ingest path computes
        it chunk by chunk while the scan is still arriving.
        """
        cfg = self.config
        geometry = self.ops.geometry
        if d.shape != geometry.data_shape:
            raise ValueError(f"data shape {d.shape} != {geometry.data_shape}")
        if dhat is not None and dhat.shape != geometry.data_shape:
            raise ValueError(f"dhat shape {dhat.shape} != {geometry.data_shape}")
        d = np.ascontiguousarray(d, dtype=np.complex64)
        u = (
            u0.astype(np.complex64, copy=True)
            if u0 is not None
            else np.zeros(geometry.vol_shape, dtype=np.complex64)
        )
        psi = np.zeros((3,) + geometry.vol_shape, dtype=np.complex64)
        lam = np.zeros_like(psi)
        rho = cfg.rho
        # Algorithm 2 line 2: map the data to the frequency domain once.
        if cfg.cancellation:
            dhat = dhat if dhat is not None else self.executor.f2d(d)
        else:
            dhat = None

        history: dict[str, list[float]] = {
            k: [] for k in ("loss", "data_loss", "tv", "primal_res", "dual_res", "rho")
        }
        for it in range(cfg.n_outer):
            with obs.span("admm.outer", iteration=it):
                self.executor.begin_outer(it)
                if tracer is not None:
                    tracer.begin_iteration(it)

                # -- LSP phase (u update) -----------------------------------------
                if tracer is not None:
                    tracer.begin_phase("lsp")
                    tracer.touch("psi", "r")
                    tracer.touch("lam", "r")
                    tracer.touch("g", "w")
                g = psi - lam / rho  # Algorithm 1 line 1
                lsp_res = self.lsp.solve(
                    u, g, rho, d=None if cfg.cancellation else d, dhat=dhat,
                    tracer=tracer,
                )
                u = lsp_res.u

                # -- RSP phase (psi update) ---------------------------------------
                if tracer is not None:
                    tracer.begin_phase("rsp")
                    tracer.touch("u", "r")
                    tracer.touch("lam", "r")
                    tracer.touch("psi", "rw")
                gu = grad3(u)
                psi_prev = psi
                psi = shrink_isotropic(gu + lam / rho, cfg.alpha / rho)

                # -- lambda update phase ------------------------------------------
                if tracer is not None:
                    tracer.begin_phase("lambda_update")
                    tracer.touch("psi", "r")
                    tracer.touch("lam", "rw")
                lam = lam + rho * (gu - psi)

                # -- penalty update phase -----------------------------------------
                if tracer is not None:
                    tracer.begin_phase("penalty_update")
                    tracer.touch("psi", "r")
                    tracer.touch("lam", "r")
                primal = float(np.linalg.norm(gu - psi))
                dual = float(rho * np.linalg.norm(div3(psi - psi_prev)))
                if cfg.adaptive_rho:
                    if primal > cfg.rho_mu * dual:
                        rho *= cfg.rho_scale
                    elif dual > cfg.rho_mu * primal:
                        rho /= cfg.rho_scale

                # -- bookkeeping --------------------------------------------------
                tv_val = float(np.sum(grad_norm(gu)))
                history["data_loss"].append(lsp_res.data_loss)
                history["tv"].append(tv_val)
                history["loss"].append(lsp_res.data_loss + cfg.alpha * tv_val)
                history["primal_res"].append(primal)
                history["dual_res"].append(dual)
                history["rho"].append(rho)
                if tracer is not None:
                    tracer.end_iteration()
                if callback is not None:
                    callback(it, u, {k: v[-1] for k, v in history.items()})

        return ADMMResult(
            u=u, history=history, op_counts=dict(self.executor.op_counts)
        )
