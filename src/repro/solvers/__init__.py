"""ADMM-TV solver machinery for laminography reconstruction."""

from .admm import PHASES, ADMMConfig, ADMMResult, ADMMSolver
from .cg import NCGState, cg_linear
from .executor import DirectExecutor
from .grad import div3, grad3, grad_norm
from .lsp import LSP, LSPResult, estimate_normal_lipschitz
from .metrics import accuracy, cosine_similarity, psnr, relative_error, rmse
from .tv import rsp_update, shrink_isotropic, tv_norm

__all__ = [
    "PHASES",
    "ADMMConfig",
    "ADMMResult",
    "ADMMSolver",
    "NCGState",
    "cg_linear",
    "DirectExecutor",
    "div3",
    "grad3",
    "grad_norm",
    "LSP",
    "LSPResult",
    "estimate_normal_lipschitz",
    "accuracy",
    "cosine_similarity",
    "psnr",
    "relative_error",
    "rmse",
    "rsp_update",
    "shrink_isotropic",
    "tv_norm",
]
