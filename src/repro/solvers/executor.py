"""Operation-executor abstraction: where memoization plugs into the solver.

The LSP inner loop never calls :class:`~repro.lamino.operators.LaminoOperators`
directly; it goes through an *executor* so that mLR's memoization engine can
intercept each FFT operation chunk-by-chunk without touching solver code.
The contract (duck-typed; :class:`DirectExecutor` is the reference
implementation) is:

- ``fu1d / fu1d_adj / fu2d / fu2d_adj / f2d / f2d_adj`` — the six operations
  of Algorithm 1, full-array in/out; implementations are free to partition
  the work into chunks internally,
- ``fu2d(..., subtract=dhat)`` — the fused subtract-in-kernel variant of
  Section 4.2 (Figure 5b): returns ``Fu2D(x) - dhat`` from a single call,
- ``begin_outer / begin_inner`` — iteration markers used by memoization to
  distinguish revisits of the same chunk location,
- ``op_counts`` — dict op-name -> number of chunk-level invocations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..lamino.chunking import iter_chunks
from ..lamino.operators import LaminoOperators

__all__ = ["DirectExecutor"]


class DirectExecutor:
    """Chunk-streaming executor with no memoization (the paper's baseline).

    ``chunk_size`` mirrors the GPU pipeline granularity: ``fu1d`` partitions
    along the volume x-axis, ``fu2d``/``fu2d_adj`` along the detector
    row-frequency axis, ``f2d``/``f2d_adj`` along the angle axis.  Setting
    ``chunk_size=None`` disables chunking (single full-array call).
    """

    def __init__(self, ops: LaminoOperators, chunk_size: int | None = None) -> None:
        self.ops = ops
        self.chunk_size = chunk_size
        self.op_counts: Counter[str] = Counter()
        self.outer_iteration = -1
        self.inner_iteration = -1

    # -- iteration markers ---------------------------------------------------------

    def begin_outer(self, iteration: int) -> None:
        self.outer_iteration = iteration

    def begin_inner(self, iteration: int) -> None:
        self.inner_iteration = iteration

    # -- chunk helpers ---------------------------------------------------------------

    def _chunks(self, n: int):
        size = self.chunk_size if self.chunk_size is not None else n
        return iter_chunks(n, size)

    # -- the six operations ----------------------------------------------------------

    def fu1d(self, u: np.ndarray) -> np.ndarray:
        parts = []
        for chunk in self._chunks(u.shape[0]):
            self.op_counts["Fu1D"] += 1
            parts.append(self._run_fu1d(chunk, u[chunk.slice]))
        return np.concatenate(parts, axis=0)

    def fu1d_adj(self, u1: np.ndarray) -> np.ndarray:
        parts = []
        for chunk in self._chunks(u1.shape[0]):
            self.op_counts["Fu1D*"] += 1
            parts.append(self._run_fu1d_adj(chunk, u1[chunk.slice]))
        return np.concatenate(parts, axis=0)

    def fu2d(self, u1: np.ndarray, subtract: np.ndarray | None = None) -> np.ndarray:
        h = u1.shape[1]
        parts = []
        for chunk in self._chunks(h):
            self.op_counts["Fu2D"] += 1
            sub = subtract[:, chunk.slice, :] if subtract is not None else None
            parts.append(self._run_fu2d(chunk, u1[:, chunk.slice, :], sub))
        return np.concatenate(parts, axis=1)

    def fu2d_adj(self, r: np.ndarray) -> np.ndarray:
        h = r.shape[1]
        parts = []
        for chunk in self._chunks(h):
            self.op_counts["Fu2D*"] += 1
            parts.append(self._run_fu2d_adj(chunk, r[:, chunk.slice, :]))
        return np.concatenate(parts, axis=1)

    def f2d(self, d: np.ndarray) -> np.ndarray:
        parts = []
        for chunk in self._chunks(d.shape[0]):
            self.op_counts["F2D"] += 1
            parts.append(self.ops.f2d(d[chunk.slice]))
        return np.concatenate(parts, axis=0)

    def f2d_adj(self, dhat: np.ndarray) -> np.ndarray:
        parts = []
        for chunk in self._chunks(dhat.shape[0]):
            self.op_counts["F2D*"] += 1
            parts.append(self.ops.f2d_adj(dhat[chunk.slice]))
        return np.concatenate(parts, axis=0)

    # -- single-chunk kernels (overridden by the memoized executor) -------------------

    def _run_fu1d(self, chunk, u_c: np.ndarray) -> np.ndarray:
        return self.ops.fu1d(u_c)

    def _run_fu1d_adj(self, chunk, u1_c: np.ndarray) -> np.ndarray:
        return self.ops.fu1d_adj(u1_c)

    def _run_fu2d(self, chunk, u1_c: np.ndarray, sub: np.ndarray | None) -> np.ndarray:
        out = self.ops.fu2d(u1_c, rows=chunk.slice)
        if sub is not None:
            out = out - sub  # the fused kernel's extra argument (Fig. 5b)
        return out

    def _run_fu2d_adj(self, chunk, r_c: np.ndarray) -> np.ndarray:
        return self.ops.fu2d_adj(r_c, rows=chunk.slice)
