"""Operation-executor abstraction: where memoization plugs into the solver.

The LSP inner loop never calls :class:`~repro.lamino.operators.LaminoOperators`
directly; it goes through an *executor* so that mLR's memoization engine can
intercept each FFT operation chunk-by-chunk without touching solver code.
The contract (duck-typed; :class:`DirectExecutor` is the reference
implementation) is:

- ``fu1d / fu1d_adj / fu2d / fu2d_adj / f2d / f2d_adj`` — the six operations
  of Algorithm 1, full-array in/out; implementations are free to partition
  the work into chunks internally,
- ``fu2d(..., subtract=dhat)`` — the fused subtract-in-kernel variant of
  Section 4.2 (Figure 5b): returns ``Fu2D(x) - dhat`` from a single call,
- ``begin_outer / begin_inner`` — iteration markers used by memoization to
  distinguish revisits of the same chunk location,
- ``op_counts`` — dict op-name -> number of chunk-level invocations,
- ``sweep_stream`` — the *streaming* form of one op sweep: consume
  ``(chunk, payload)`` items in chunk order, yield ``(chunk, output)`` pairs.
  The full-array methods are thin drivers over it, and the pipelined
  execution mode (:mod:`repro.pipeline`) feeds it from a reader stage.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..lamino.chunking import iter_chunks
from ..lamino.operators import LaminoOperators
from ..obs import runtime as obs

__all__ = ["DirectExecutor", "SWEEP_AXIS", "SWEEP_KERNELS"]

#: Partition axis of each operation's operand (and of its output slab).
SWEEP_AXIS = {
    "Fu1D": 0,
    "Fu1D*": 0,
    "Fu2D": 1,
    "Fu2D*": 1,
    "F2D": 0,
    "F2D*": 0,
}

#: Sweep-scheduled (memoizable) op -> its single-chunk kernel method.  The
#: one dispatch table: ``chunk_kernel`` binds these on ``self`` (reaching
#: memoizing overrides) and the distributed executor's raw dispatch binds
#: them past :class:`~repro.core.memo_engine.MemoizedExecutor`.
SWEEP_KERNELS = {
    "Fu1D": "_run_fu1d",
    "Fu1D*": "_run_fu1d_adj",
    "Fu2D": "_run_fu2d",
    "Fu2D*": "_run_fu2d_adj",
}


class DirectExecutor:
    """Chunk-streaming executor with no memoization (the paper's baseline).

    ``chunk_size`` mirrors the GPU pipeline granularity: ``fu1d`` partitions
    along the volume x-axis, ``fu2d``/``fu2d_adj`` along the detector
    row-frequency axis, ``f2d``/``f2d_adj`` along the angle axis.  Setting
    ``chunk_size=None`` disables chunking (single full-array call).
    """

    def __init__(self, ops: LaminoOperators, chunk_size: int | None = None) -> None:
        self.ops = ops
        self.chunk_size = chunk_size
        self.op_counts: Counter[str] = Counter()
        self.outer_iteration = -1
        self.inner_iteration = -1

    # -- iteration markers ---------------------------------------------------------

    def begin_outer(self, iteration: int) -> None:
        self.outer_iteration = iteration

    def begin_inner(self, iteration: int) -> None:
        self.inner_iteration = iteration

    # -- chunk helpers ---------------------------------------------------------------

    def _chunks(self, n: int):
        size = self.chunk_size if self.chunk_size is not None else n
        return iter_chunks(n, size)

    # -- streaming sweep API (consumed by repro.pipeline) ------------------------------

    def chunk_kernel(self, op: str):
        """Per-chunk kernel of ``op``: ``(chunk, payload) -> output slab``.

        The payload is the operation's input slab, except for ``Fu2D`` whose
        payload is ``(input_slab, subtract_slab | None)`` — the fused
        kernel's extra argument travels with the chunk.
        """
        name = SWEEP_KERNELS.get(op)
        if name is not None:
            kernel = getattr(self, name)
            if op == "Fu2D":
                return lambda chunk, payload: kernel(chunk, payload[0], payload[1])
            return kernel
        if op == "F2D":
            return lambda chunk, d_c: self.ops.f2d(d_c)
        if op == "F2D*":
            return lambda chunk, dhat_c: self.ops.f2d_adj(dhat_c)
        raise ValueError(f"unknown op {op!r}")

    def sweep_stream(self, op: str, items, n_chunks: int | None = None):
        """Streaming chunk sweep: consume ``(chunk, payload)`` in chunk
        order, yield ``(chunk, output)`` as each chunk completes.

        Processing is strictly in arrival order on the calling thread, so a
        pipelined run produces bit-identical numerics to the monolithic
        full-array path.  ``n_chunks`` is accepted for interface parity with
        the distributed executor (which needs the sweep size up front).
        """
        del n_chunks  # chunk-at-a-time execution needs no lookahead
        kernel = self.chunk_kernel(op)
        for chunk, payload in items:
            self.op_counts[op] += 1
            with obs.span(f"sweep.{op}", chunk=chunk.index):
                out = kernel(chunk, payload)
            yield chunk, out

    # -- the six operations (thin drivers over the streaming sweep, so the
    # monolithic and pipelined paths share one chunk loop) -----------------------------

    def _sweep(self, op: str, items, n_chunks: int, axis: int) -> np.ndarray:
        parts = [out for _, out in self.sweep_stream(op, items, n_chunks)]
        return np.concatenate(parts, axis=axis)

    def fu1d(self, u: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(u.shape[0]))
        return self._sweep(
            "Fu1D", ((c, u[c.slice]) for c in chunks), len(chunks), axis=0
        )

    def fu1d_adj(self, u1: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(u1.shape[0]))
        return self._sweep(
            "Fu1D*", ((c, u1[c.slice]) for c in chunks), len(chunks), axis=0
        )

    def fu2d(self, u1: np.ndarray, subtract: np.ndarray | None = None) -> np.ndarray:
        chunks = list(self._chunks(u1.shape[1]))
        items = (
            (c, (u1[:, c.slice, :],
                 subtract[:, c.slice, :] if subtract is not None else None))
            for c in chunks
        )
        return self._sweep("Fu2D", items, len(chunks), axis=1)

    def fu2d_adj(self, r: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(r.shape[1]))
        return self._sweep(
            "Fu2D*", ((c, r[:, c.slice, :]) for c in chunks), len(chunks), axis=1
        )

    def f2d(self, d: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(d.shape[0]))
        return self._sweep(
            "F2D", ((c, d[c.slice]) for c in chunks), len(chunks), axis=0
        )

    def f2d_adj(self, dhat: np.ndarray) -> np.ndarray:
        chunks = list(self._chunks(dhat.shape[0]))
        return self._sweep(
            "F2D*", ((c, dhat[c.slice]) for c in chunks), len(chunks), axis=0
        )

    # -- single-chunk kernels (overridden by the memoized executor) -------------------

    def _run_fu1d(self, chunk, u_c: np.ndarray) -> np.ndarray:
        return self.ops.fu1d(u_c)

    def _run_fu1d_adj(self, chunk, u1_c: np.ndarray) -> np.ndarray:
        return self.ops.fu1d_adj(u1_c)

    def _run_fu2d(self, chunk, u1_c: np.ndarray, sub: np.ndarray | None) -> np.ndarray:
        out = self.ops.fu2d(u1_c, rows=chunk.slice)
        if sub is not None:
            out = out - sub  # the fused kernel's extra argument (Fig. 5b)
        return out

    def _run_fu2d_adj(self, chunk, r_c: np.ndarray) -> np.ndarray:
        return self.ops.fu2d_adj(r_c, rows=chunk.slice)
