"""NumPy CNN substrate: the chunk key encoder and its training/quantization."""

from .cnn import ChunkEncoder, complex_to_channels
from .contrastive import SGD, TrainReport, make_pairs, pair_loss, train_contrastive
from .layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    Param,
    ReLU,
    Sequential,
)
from .quantize import QuantizedEncoder, QuantizedTensor, quantize_tensor

__all__ = [
    "ChunkEncoder",
    "complex_to_channels",
    "SGD",
    "TrainReport",
    "make_pairs",
    "pair_loss",
    "train_contrastive",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "Param",
    "ReLU",
    "Sequential",
    "QuantizedEncoder",
    "QuantizedTensor",
    "quantize_tensor",
]
