"""The paper's chunk-encoder CNN (Section 4.3.1).

Architecture, verbatim from the paper: "Our CNN has three layers.  The first
layer has 32 filters, each with the size of 5x5.  The second layer has 64
filters, each with the size of 3x3.  The third layer is a fully connected
layer which embeds the features extracted by the prior layers into a
lower-dimensional space."  Inputs are two-channel (real/imaginary) images —
the decomposition the paper uses because DL frameworks do not support
COMPLEX64 tensors — and the default embedding dimensionality is 60, matching
the index-database example of Section 4.3.2.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

__all__ = ["ChunkEncoder", "complex_to_channels"]


def complex_to_channels(img: np.ndarray) -> np.ndarray:
    """Split a complex image batch ``(B, H, W)`` into ``(B, 2, H, W)``.

    "the COMPLEX64-typed matrix is decomposed into two matrices,
    corresponding to the real and imaginary components" — this preserves
    magnitude and phase exactly.
    """
    if img.ndim != 3:
        raise ValueError(f"expected (B, H, W), got {img.shape}")
    return np.stack([img.real, img.imag], axis=1).astype(np.float32)


class ChunkEncoder:
    """3-layer CNN mapping ``(B, 2, hw, hw)`` chunk images to ``(B, dim)`` keys."""

    def __init__(self, input_hw: int = 32, embed_dim: int = 60, seed: int = 0) -> None:
        if input_hw % 4:
            raise ValueError(f"input_hw must be divisible by 4, got {input_hw}")
        self.input_hw = input_hw
        self.embed_dim = embed_dim
        feat = 64 * (input_hw // 4) * (input_hw // 4)
        self.net = Sequential(
            Conv2D(2, 32, 5, seed=seed),
            ReLU(),
            MaxPool2D(),
            Conv2D(32, 64, 3, seed=seed + 1),
            ReLU(),
            MaxPool2D(),
            Flatten(),
            Dense(feat, embed_dim, seed=seed + 2),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1:] != (2, self.input_hw, self.input_hw):
            raise ValueError(
                f"expected (B, 2, {self.input_hw}, {self.input_hw}), got {x.shape}"
            )
        return self.net.forward(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.net.backward(grad)

    def encode(self, img: np.ndarray) -> np.ndarray:
        """Encode a batch of complex images ``(B, H, W)`` to keys ``(B, dim)``."""
        return self.forward(complex_to_channels(img))

    def params(self):
        return self.net.params()

    def zero_grad(self) -> None:
        self.net.zero_grad()

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params())

    # -- snapshot hooks ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Architecture hyper-parameters plus every trainable tensor, in the
        deterministic ``params()`` order."""
        return {
            "input_hw": self.input_hw,
            "embed_dim": self.embed_dim,
            "params": [np.array(p.value, copy=True) for p in self.params()],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ChunkEncoder":
        """Rebuild an encoder whose ``encode`` is bit-identical to the
        instance that produced ``state`` (and whose INT8 quantization —
        deterministic in the float weights — is therefore identical too)."""
        enc = cls(input_hw=int(state["input_hw"]), embed_dim=int(state["embed_dim"]))
        params = enc.params()
        if len(params) != len(state["params"]):
            raise ValueError(
                f"state has {len(state['params'])} tensors, encoder needs {len(params)}"
            )
        for p, saved in zip(params, state["params"]):
            saved = np.asarray(saved, dtype=np.float32)
            if saved.shape != p.shape:
                raise ValueError(f"tensor shape {saved.shape} != expected {p.shape}")
            p.value[...] = saved
            p.grad[...] = 0.0
        return enc
