"""Contrastive training of the chunk encoder (paper Section 4.3.1, Eq. 2).

There are no similarity labels for FFT-input chunks, so the paper trains the
encoder to make *embedding distances mirror chunk distances*::

    L = | ||z_a - z_b||_2  -  ||Ch_a - Ch_b||_2 |            (Eq. 2)

where the L2 distance between the raw chunks serves as the ground-truth
label.  An encoder trained this way lets the memoization database translate
its key-space distance threshold directly into a chunk-space similarity
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cnn import ChunkEncoder

__all__ = ["pair_loss", "SGD", "train_contrastive", "TrainReport"]


def pair_loss(
    za: np.ndarray, zb: np.ndarray, label: float
) -> tuple[float, np.ndarray, np.ndarray]:
    """Eq. 2 loss for one pair plus gradients w.r.t. both embeddings."""
    diff = za - zb
    dist = float(np.linalg.norm(diff))
    r = dist - label
    loss = abs(r)
    if dist < 1e-12:
        # degenerate pair: subgradient 0 for the distance term
        return loss, np.zeros_like(za), np.zeros_like(zb)
    g = np.sign(r) * diff / dist
    return loss, g.astype(np.float32), (-g).astype(np.float32)


class SGD:
    """Plain SGD with momentum over :class:`~repro.nn.layers.Param` lists."""

    def __init__(self, params, lr: float = 1e-3, momentum: float = 0.9) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._vel = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._vel):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v


@dataclass
class TrainReport:
    """Loss trajectory of a contrastive training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def make_pairs(images: np.ndarray, n_pairs: int, rng: np.random.Generator):
    """Sample index pairs and their chunk-space L2 labels."""
    n = images.shape[0]
    ia = rng.integers(0, n, size=n_pairs)
    ib = rng.integers(0, n, size=n_pairs)
    labels = np.array(
        [float(np.linalg.norm(images[a] - images[b])) for a, b in zip(ia, ib)]
    )
    return ia, ib, labels


def train_contrastive(
    encoder: ChunkEncoder,
    images: np.ndarray,
    n_epochs: int = 5,
    batch_pairs: int = 16,
    lr: float = 1e-3,
    seed: int = 0,
) -> TrainReport:
    """Train the encoder on complex chunk images ``(N, H, W)``.

    Per step, ``batch_pairs`` pairs are embedded in one batched forward pass
    (both pair members concatenated) and the Eq. 2 gradient is backpropagated.
    """
    from .cnn import complex_to_channels

    rng = np.random.default_rng(seed)
    opt = SGD(encoder.params(), lr=lr)
    report = TrainReport()
    steps = max(1, images.shape[0] // batch_pairs)
    for _ in range(n_epochs):
        epoch_loss = 0.0
        for _ in range(steps):
            ia, ib, labels = make_pairs(images, batch_pairs, rng)
            x = complex_to_channels(np.concatenate([images[ia], images[ib]], axis=0))
            z = encoder.forward(x)
            za, zb = z[:batch_pairs], z[batch_pairs:]
            gz = np.zeros_like(z)
            batch_loss = 0.0
            for i in range(batch_pairs):
                loss, ga, gb = pair_loss(za[i], zb[i], labels[i])
                batch_loss += loss
                gz[i] = ga / batch_pairs
                gz[batch_pairs + i] = gb / batch_pairs
            encoder.zero_grad()
            encoder.backward(gz)
            opt.step()
            epoch_loss += batch_loss / batch_pairs
        report.losses.append(epoch_loss / steps)
    return report
