"""Minimal NumPy neural-network layers with exact backward passes.

The paper trains its key encoder with PyTorch on a GPU; this module is the
offline-environment substitute: conv/pool/dense layers implemented with
im2col (``sliding_window_view``) whose gradients are verified against
numerical differentiation in the test suite.  Only what the 3-layer chunk
encoder needs is provided — this is not a general DL framework.

All layers operate on ``(batch, channels, height, width)`` float32 tensors
(dense layers on ``(batch, features)``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Param", "Layer", "Conv2D", "ReLU", "MaxPool2D", "Flatten", "Dense", "Sequential"]


class Param:
    """A trainable tensor with its accumulated gradient."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = value.astype(np.float32)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape


class Layer:
    """Base layer: ``forward`` caches what ``backward`` needs."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def params(self) -> list[Param]:
        return []


class Conv2D(Layer):
    """`same`-padded 2-D convolution (stride 1) via im2col."""

    def __init__(self, in_ch: int, out_ch: int, ksize: int, seed: int = 0) -> None:
        if ksize % 2 == 0:
            raise ValueError(f"ksize must be odd for same padding, got {ksize}")
        rng = np.random.default_rng(seed)
        fan_in = in_ch * ksize * ksize
        self.ksize = ksize
        self.in_ch = in_ch
        self.out_ch = out_ch
        self.weight = Param(
            rng.standard_normal((out_ch, in_ch, ksize, ksize)) * np.sqrt(2.0 / fan_in)
        )
        self.bias = Param(np.zeros(out_ch))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_ch:
            raise ValueError(f"expected (B,{self.in_ch},H,W), got {x.shape}")
        k = self.ksize
        p = k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        # windows: (B, C, H, W, k, k)
        win = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(2, 3))
        B, C, H, W = x.shape
        cols = win.reshape(B, C, H, W, k * k).transpose(0, 2, 3, 1, 4).reshape(
            B * H * W, C * k * k
        )
        wmat = self.weight.value.reshape(self.out_ch, C * k * k)
        out = cols @ wmat.T + self.bias.value
        self._cache = (x.shape, cols)
        return out.reshape(B, H, W, self.out_ch).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        (B, C, H, W), cols = self._cache
        k = self.ksize
        p = k // 2
        gflat = grad.transpose(0, 2, 3, 1).reshape(B * H * W, self.out_ch)
        self.weight.grad += (gflat.T @ cols).reshape(self.weight.shape)
        self.bias.grad += gflat.sum(axis=0)
        # grad wrt input: correlate grad with flipped kernels == scatter cols
        gcols = gflat @ self.weight.value.reshape(self.out_ch, C * k * k)
        gcols = gcols.reshape(B, H, W, C, k, k)
        gx = np.zeros((B, C, H + 2 * p, W + 2 * p), dtype=grad.dtype)
        for i in range(k):
            for j in range(k):
                gx[:, :, i : i + H, j : j + W] += gcols[:, :, :, :, i, j].transpose(
                    0, 3, 1, 2
                )
        return gx[:, :, p : p + H, p : p + W]

    def params(self) -> list[Param]:
        return [self.weight, self.bias]


class ReLU(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool2D(Layer):
    """2x2 max pooling (the only size the encoder needs)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        B, C, H, W = x.shape
        if H % 2 or W % 2:
            raise ValueError(f"H and W must be even for 2x2 pooling, got {x.shape}")
        blocks = x.reshape(B, C, H // 2, 2, W // 2, 2)
        out = blocks.max(axis=(3, 5))
        # distribute ties evenly so backward remains a true subgradient
        mask = blocks == out[:, :, :, None, :, None]
        self._mask = mask / mask.sum(axis=(3, 5), keepdims=True)
        self._in_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad[:, :, :, None, :, None] * self._mask
        return g.reshape(self._in_shape)


class Flatten(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._in_shape)


class Dense(Layer):
    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.weight = Param(
            rng.standard_normal((out_features, in_features))
            * np.sqrt(2.0 / in_features)
        )
        self.bias = Param(np.zeros(out_features))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.weight.grad += grad.T @ self._x
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value

    def params(self) -> list[Param]:
        return [self.weight, self.bias]


class Sequential(Layer):
    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[Param]:
        return [p for layer in self.layers for p in layer.params()]

    def zero_grad(self) -> None:
        for p in self.params():
            p.grad[...] = 0.0
