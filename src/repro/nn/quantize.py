"""INT8 weight quantization for the key encoder (paper Section 4.3.1).

"We apply INT8 quantization to the weights of the CNN model, and optimize
its performance using vectorization (AVX512 instructions)."  Here the
AVX512 kernels become NumPy's vectorized integer GEMMs: weights are stored
as symmetric per-tensor int8 with a float scale, activations are quantized
per batch, and matrix products accumulate in int32 before a single
dequantization multiply — the standard int8 inference recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cnn import ChunkEncoder
from .layers import Conv2D, Dense

__all__ = ["QuantizedTensor", "quantize_tensor", "QuantizedEncoder"]


@dataclass(frozen=True)
class QuantizedTensor:
    """Symmetric per-tensor int8 quantization of a float array."""

    q: np.ndarray  # int8
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.q.astype(np.float32) * self.scale


def quantize_tensor(x: np.ndarray) -> QuantizedTensor:
    """Symmetric int8: ``q = round(x / scale)`` with ``scale = max|x| / 127``."""
    amax = float(np.max(np.abs(x)))
    scale = amax / 127.0 if amax > 0 else 1.0
    q = np.clip(np.rint(x / scale), -127, 127).astype(np.int8)
    return QuantizedTensor(q=q, scale=scale)


def _int8_gemm(xq: np.ndarray, sx: float, wq: np.ndarray, sw: float) -> np.ndarray:
    """``(x @ w.T)`` with int32 accumulation and one dequantize multiply."""
    acc = xq.astype(np.int32) @ wq.astype(np.int32).T
    return acc.astype(np.float32) * (sx * sw)


class QuantizedEncoder:
    """Int8-weight inference path for a trained :class:`ChunkEncoder`.

    Convolutions run as quantized GEMMs over im2col patches; activations are
    re-quantized per layer (dynamic quantization).  ``forward`` mirrors the
    float encoder within the usual int8 error envelope (see tests).
    """

    def __init__(self, encoder: ChunkEncoder) -> None:
        self.input_hw = encoder.input_hw
        self.embed_dim = encoder.embed_dim
        self._layers: list[tuple] = []
        for layer in encoder.net.layers:
            if isinstance(layer, Conv2D):
                wq = quantize_tensor(layer.weight.value)
                self._layers.append(("conv", layer.ksize, wq, layer.bias.value.copy()))
            elif isinstance(layer, Dense):
                wq = quantize_tensor(layer.weight.value)
                self._layers.append(("dense", None, wq, layer.bias.value.copy()))
            else:
                self._layers.append(("passthrough", layer, None, None))

    @property
    def nbytes_weights(self) -> int:
        """Quantized weight footprint (what the paper's INT8 step saves)."""
        return sum(
            entry[2].q.nbytes for entry in self._layers if entry[0] in ("conv", "dense")
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        for kind, meta, wq, bias in self._layers:
            if kind == "conv":
                x = self._conv_int8(x, meta, wq, bias)
            elif kind == "dense":
                xq = quantize_tensor(x)
                x = _int8_gemm(
                    xq.q, xq.scale, wq.q.reshape(wq.q.shape[0], -1), wq.scale
                ) + bias
            else:
                x = meta.forward(x)
        return x.astype(np.float32)

    def encode(self, img: np.ndarray) -> np.ndarray:
        from .cnn import complex_to_channels

        return self.forward(complex_to_channels(img))

    @staticmethod
    def _im2col(x: np.ndarray, k: int) -> np.ndarray:
        B, C, H, W = x.shape
        p = k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        win = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(2, 3))
        return win.reshape(B, C, H, W, k * k).transpose(0, 2, 3, 1, 4).reshape(
            B * H * W, C * k * k
        )

    def _conv_int8(
        self, x: np.ndarray, k: int, wq: QuantizedTensor, bias: np.ndarray
    ) -> np.ndarray:
        B, _, H, W = x.shape
        cols = self._im2col(x, k)
        cq = quantize_tensor(cols)
        out_ch = wq.q.shape[0]
        out = _int8_gemm(cq.q, cq.scale, wq.q.reshape(out_ch, -1), wq.scale) + bias
        return out.reshape(B, H, W, out_ch).transpose(0, 3, 1, 2)
