"""In-memory key-value store — the Redis stand-in for the value database.

Functional subset the memoization system needs: byte-string values under
integer/str keys, capacity-bounded with FIFO or LRU eviction, and the
hit/miss/bytes statistics the evaluation reports.  Latency is *not* modeled
here — the discrete-event cluster simulation (:mod:`repro.cluster`) owns all
timing; this class is purely functional so it can also run inside the DES.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["KVStats", "KVStore"]


@dataclass
class KVStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class KVStore:
    """Capacity-bounded byte store with FIFO/LRU eviction.

    ``capacity_bytes=None`` means unbounded (the paper's memory node holds
    the whole database; bounded mode exists for the local-cache experiments
    and for failure-injection tests).
    """

    capacity_bytes: int | None = None
    eviction: str = "fifo"
    _data: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _nbytes: int = 0
    stats: KVStats = field(default_factory=KVStats)

    def __post_init__(self) -> None:
        if self.eviction not in ("fifo", "lru"):
            raise ValueError(f"eviction must be 'fifo' or 'lru', got {self.eviction!r}")
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive or None")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def put(self, key, value: bytes) -> None:
        """Insert/overwrite; evicts oldest (FIFO) or least-recent (LRU) entries
        until the new value fits."""
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"value must be bytes-like, got {type(value).__name__}")
        value = bytes(value)
        if self.capacity_bytes is not None and len(value) > self.capacity_bytes:
            raise ValueError("value larger than store capacity")
        if key in self._data:
            self._nbytes -= len(self._data.pop(key))
        while self.capacity_bytes is not None and self._nbytes + len(value) > self.capacity_bytes:
            _, old = self._data.popitem(last=False)
            self._nbytes -= len(old)
            self.stats.evictions += 1
        self._data[key] = value
        self._nbytes += len(value)
        self.stats.puts += 1
        self.stats.bytes_in += len(value)

    def get(self, key) -> bytes | None:
        """Fetch; returns ``None`` on miss (and counts it)."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        if self.eviction == "lru":
            self._data.move_to_end(key)
        self.stats.hits += 1
        self.stats.bytes_out += len(value)
        return value

    def delete(self, key) -> bool:
        value = self._data.pop(key, None)
        if value is None:
            return False
        self._nbytes -= len(value)
        return True

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()
        self._nbytes = 0
