"""In-memory key-value store — the Redis stand-in for the value database.

Functional subset the memoization system needs: byte-string values under
integer/str keys, capacity-bounded with FIFO or LRU eviction, and the
hit/miss/bytes statistics the evaluation reports.  Latency is *not* modeled
here — the discrete-event cluster simulation (:mod:`repro.cluster`) owns all
timing; this class is purely functional so it can also run inside the DES.

Two value representations share the bookkeeping:

- :class:`KVStore` holds opaque byte strings (the serialized wire format —
  what the spill/offload paths and a real Redis would carry),
- :class:`ArrayStore` holds ndarrays directly (the zero-copy in-memory mode
  of the memoization value database) while *accounting* every byte exactly
  as if the value had been serialized, so traffic statistics are identical
  between the two modes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .serialization import encoded_nbytes

__all__ = [
    "KVStats",
    "KVStore",
    "ArrayStore",
    "store_from_state",
    "heat_now",
    "merge_heat_states",
]

#: wall-clock source for per-entry heat ticks; a module global so tests can
#: monkeypatch it (``store._heat_clock = fake``) without touching time.time
_heat_clock = time.time


def heat_now() -> float:
    """The heat tick for 'this entry was touched now' (unix seconds)."""
    return _heat_clock()


@dataclass
class KVStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class KVStore:
    """Capacity-bounded byte store with FIFO/LRU eviction.

    ``capacity_bytes=None`` means unbounded (the paper's memory node holds
    the whole database; bounded mode exists for the local-cache experiments
    and for failure-injection tests).
    """

    capacity_bytes: int | None = None
    eviction: str = "fifo"
    _data: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _nbytes: int = 0
    stats: KVStats = field(default_factory=KVStats)
    #: per-entry heat metadata: key -> [last_hit_unix_s, hit_count].  An
    #: entry is born with hits=0 and last_hit at insert time; every get()
    #: hit refreshes it.  This is the measurement layer eviction policies
    #: act on (cold-entry detection, reclaimable-bytes projection).
    _heat: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.eviction not in ("fifo", "lru"):
            raise ValueError(f"eviction must be 'fifo' or 'lru', got {self.eviction!r}")
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive or None")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    @property
    def nbytes(self) -> int:
        return self._nbytes

    # -- value representation hooks (overridden by ArrayStore) -------------------------

    def _coerce(self, value):
        """Validate and normalize a value for storage."""
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"value must be bytes-like, got {type(value).__name__}")
        return bytes(value)

    @staticmethod
    def _value_nbytes(value) -> int:
        """Accounted size of a stored value."""
        return len(value)

    # -- operations --------------------------------------------------------------------

    def put(self, key, value) -> None:
        """Insert/overwrite; evicts oldest (FIFO) or least-recent (LRU) entries
        until the new value fits."""
        value = self._coerce(value)
        size = self._value_nbytes(value)
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            raise ValueError("value larger than store capacity")
        if key in self._data:
            self._nbytes -= self._value_nbytes(self._data.pop(key))
        while self.capacity_bytes is not None and self._nbytes + size > self.capacity_bytes:
            old_key, old = self._data.popitem(last=False)
            self._nbytes -= self._value_nbytes(old)
            self._heat.pop(old_key, None)
            self.stats.evictions += 1
        self._data[key] = value
        self._nbytes += size
        # an overwrite is new data: its heat starts over
        self._heat[key] = [heat_now(), 0]
        self.stats.puts += 1
        self.stats.bytes_in += size

    def get(self, key):
        """Fetch; returns ``None`` on miss (and counts it)."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        if self.eviction == "lru":
            self._data.move_to_end(key)
        ent = self._heat.get(key)
        if ent is not None:
            ent[0] = heat_now()
            ent[1] += 1
        self.stats.hits += 1
        self.stats.bytes_out += self._value_nbytes(value)
        return value

    def delete(self, key) -> bool:
        value = self._data.pop(key, None)
        if value is None:
            return False
        self._nbytes -= self._value_nbytes(value)
        self._heat.pop(key, None)
        return True

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()
        self._heat.clear()
        self._nbytes = 0

    # -- heat metadata -------------------------------------------------------------------

    def heat(self, key) -> tuple[float, int] | None:
        """``(last_hit_unix_s, hit_count)`` of a stored entry, or ``None``."""
        ent = self._heat.get(key)
        return None if ent is None else (ent[0], ent[1])

    def heat_entries(self) -> list[tuple]:
        """``(key, last_hit_unix_s, hit_count, accounted_nbytes)`` for every
        stored entry — the heat analytics / eviction-planning read surface.
        Entries restored from a pre-heat snapshot carry ``(0.0, 0)``."""
        out = []
        for key, value in self._data.items():
            last, hits = self._heat.get(key) or (0.0, 0)
            out.append((key, last, hits, self._value_nbytes(value)))
        return out

    def heat_map(self) -> dict:
        """``{key: (last_hit, hits)}`` copy, for merging into another store."""
        return {k: (ent[0], ent[1]) for k, ent in self._heat.items()}

    def merge_heat(self, other: "dict | KVStore") -> None:
        """Fold another replica's heat for the *same* logical entries into
        this store: for keys both sides hold, last-hit takes the max and hit
        counts sum — the partition-level absorb-merge semantics.  Keys only
        the other side holds are ignored (we don't store their values)."""
        mapping = other.heat_map() if isinstance(other, KVStore) else other
        for key, ent in self._heat.items():
            theirs = mapping.get(key)
            if theirs is not None:
                ent[0] = max(ent[0], float(theirs[0]))
                ent[1] += int(theirs[1])

    # -- snapshot hooks -----------------------------------------------------------------

    _STORE_TYPE = "bytes"

    def state_dict(self) -> dict:
        """Complete, restorable state.  Entry order is preserved (it *is*
        the FIFO/LRU eviction order), keys carry an explicit int/str type
        tag, and statistics travel along so a restored store accounts
        exactly like the live one."""
        keys = []
        for key in self._data:
            if isinstance(key, bool) or not isinstance(key, (int, str)):
                raise TypeError(f"unsupported key type for snapshot: {type(key).__name__}")
            keys.append(["i", int(key)] if isinstance(key, int) else ["s", key])
        heat = [self._heat.get(key) or (0.0, 0) for key in self._data]
        return {
            "store_type": self._STORE_TYPE,
            "capacity_bytes": self.capacity_bytes,
            "eviction": self.eviction,
            "keys": keys,
            "vals": list(self._data.values()),
            "heat_last": [float(h[0]) for h in heat],
            "heat_hits": [int(h[1]) for h in heat],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "evictions": self.stats.evictions,
                "bytes_in": self.stats.bytes_in,
                "bytes_out": self.stats.bytes_out,
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "KVStore":
        """Rebuild a store whose ``get``/``put``/eviction behavior is
        bit-identical to the instance that produced ``state``."""
        if state["store_type"] != cls._STORE_TYPE:
            raise ValueError(
                f"state is a {state['store_type']!r} store, expected {cls._STORE_TYPE!r}"
            )
        cap = state["capacity_bytes"]
        store = cls(
            capacity_bytes=None if cap is None else int(cap),
            eviction=str(state["eviction"]),
        )
        # pre-heat snapshots (older schema) carry no heat arrays: every
        # restored entry then reads as never-hit since the epoch — maximally
        # cold, which is the conservative answer for eviction planning
        n = len(state["keys"])
        heat_last = state.get("heat_last") or [0.0] * n
        heat_hits = state.get("heat_hits") or [0] * n
        for tagged, value, last, hits in zip(
            state["keys"], state["vals"], heat_last, heat_hits
        ):
            tag, key = tagged
            key = int(key) if tag == "i" else str(key)
            value = store._coerce(value)
            store._data[key] = value
            store._nbytes += store._value_nbytes(value)
            store._heat[key] = [float(last), int(hits)]
        st = state["stats"]
        store.stats = KVStats(**{k: int(v) for k, v in st.items()})
        return store


@dataclass
class ArrayStore(KVStore):
    """Zero-copy ndarray value store with serialized-size accounting.

    Values are kept as read-only contiguous ndarrays: a ``put`` copies the
    caller's array once (detaching it from any buffer the caller may
    reuse), and a ``get`` returns the stored array itself — no
    ``encode_array``/``decode_array`` round-trip on the hot path.  All byte
    accounting (``nbytes``, capacity, eviction, ``bytes_in``/``bytes_out``)
    uses :func:`~repro.kvstore.serialization.encoded_nbytes`, the exact
    length ``encode_array`` would produce, so every statistic matches a
    serialized :class:`KVStore` bit for bit.
    """

    _STORE_TYPE = "array"

    def _coerce(self, value):
        if not isinstance(value, np.ndarray):
            raise TypeError(f"value must be an ndarray, got {type(value).__name__}")
        arr = np.array(value, order="C", copy=True)
        arr.setflags(write=False)
        return arr

    @staticmethod
    def _value_nbytes(value) -> int:
        return encoded_nbytes(value)


def store_from_state(state: dict) -> KVStore:
    """Restore a :class:`KVStore` or :class:`ArrayStore` from its
    ``state_dict`` by its ``store_type`` tag."""
    for cls in (KVStore, ArrayStore):
        if state["store_type"] == cls._STORE_TYPE:
            return cls.from_state(state)
    raise ValueError(f"unknown store_type {state['store_type']!r}")


def merge_heat_states(new_state: dict, old_state: dict) -> None:
    """Entry-level heat union of two value-store *states* holding the same
    partition (the state-tree mirror of :meth:`KVStore.merge_heat`): for
    keys both hold, ``new_state`` takes max(last-hit) / sum(hits), in
    place.  Both sides tolerate the pre-heat schema (missing arrays read as
    all-cold and contribute nothing)."""
    old_keys = old_state.get("keys") or []
    old_last = old_state.get("heat_last") or [0.0] * len(old_keys)
    old_hits = old_state.get("heat_hits") or [0] * len(old_keys)
    theirs = {
        (tagged[0], tagged[1]): (float(last), int(hits))
        for tagged, last, hits in zip(old_keys, old_last, old_hits)
    }
    if not theirs:
        return
    keys = new_state.get("keys") or []
    last = [float(v) for v in (new_state.get("heat_last") or [0.0] * len(keys))]
    hits = [int(v) for v in (new_state.get("heat_hits") or [0] * len(keys))]
    for i, tagged in enumerate(keys):
        got = theirs.get((tagged[0], tagged[1]))
        if got is not None:
            last[i] = max(last[i], got[0])
            hits[i] += got[1]
    new_state["heat_last"] = last
    new_state["heat_hits"] = hits
