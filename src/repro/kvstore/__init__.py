"""Value-database substrate (Redis substitute)."""

from .serialization import decode_array, encode_array, encoded_nbytes
from .store import KVStats, KVStore

__all__ = ["decode_array", "encode_array", "encoded_nbytes", "KVStats", "KVStore"]
