"""Value-database substrate (Redis substitute)."""

from .serialization import decode_array, encode_array, encoded_nbytes
from .store import ArrayStore, KVStats, KVStore, store_from_state

__all__ = [
    "ArrayStore",
    "decode_array",
    "encode_array",
    "encoded_nbytes",
    "KVStats",
    "KVStore",
    "store_from_state",
]
