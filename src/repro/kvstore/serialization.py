"""Self-describing binary codec for numpy arrays.

The value database stores FFT-operation outputs as opaque byte strings (the
way Redis would); this codec frames dtype/shape so arrays round-trip exactly.
It is also the array payload format of the remote memoization transport
(:mod:`repro.net`), so frames must be portable across hosts: payload bytes
are always little-endian (big-endian and byte-swapped inputs are normalized
on encode), 0-d and Fortran-order arrays round-trip, and object dtypes —
which have no stable byte representation — are rejected loudly on both ends.

Wire format::

    magic (4s) | version (u8) | dtype-string length (u8) | ndim (u8) | pad (u8)
    | shape (ndim * u64) | dtype string | raw bytes (C order, little-endian)
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["encode_array", "decode_array", "encoded_nbytes"]

_MAGIC = b"mLRv"
_HEADER = struct.Struct("<4sBBBB")

_LITTLE_ENDIAN = np.dtype("<i4").isnative


def _wire_dtype(dtype: np.dtype) -> np.dtype:
    """The (little-endian) dtype an array travels as; rejects object dtypes."""
    if dtype.hasobject:
        raise TypeError(
            f"cannot serialize object dtype {dtype!r}: object arrays have no "
            "stable byte representation (convert to a numeric/bytes dtype first)"
        )
    # '>' is big-endian; '=' is native, which is '>' on big-endian hosts.
    # Normalizing to explicit little-endian makes the payload portable:
    # frames written on any host decode identically on any other.
    if dtype.byteorder == ">" or (dtype.byteorder == "=" and not _LITTLE_ENDIAN):
        return dtype.newbyteorder("<")
    return dtype


def encode_array(a: np.ndarray) -> bytes:
    """Serialize an array (any dtype/shape) to a self-describing byte string."""
    a = np.asarray(a)
    # asarray (not ascontiguousarray, which promotes 0-d to 1-d) so scalar
    # arrays keep their shape; order="C" linearizes Fortran-order inputs
    a = np.asarray(a, dtype=_wire_dtype(a.dtype), order="C")
    dtype_str = a.dtype.str.encode("ascii")
    if len(dtype_str) > 255:
        raise ValueError(f"dtype string too long: {a.dtype}")
    if a.ndim > 255:
        raise ValueError(f"too many dimensions: {a.ndim}")
    header = _HEADER.pack(_MAGIC, 1, len(dtype_str), a.ndim, 0)
    shape = struct.pack(f"<{a.ndim}Q", *a.shape)
    return header + shape + dtype_str + a.tobytes()


def decode_array(raw: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    if len(raw) < _HEADER.size:
        raise ValueError("buffer too short for header")
    magic, version, dlen, ndim, _ = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != 1:
        raise ValueError(f"unsupported version {version}")
    off = _HEADER.size
    if len(raw) < off + 8 * ndim + dlen:
        raise ValueError("buffer too short for shape/dtype header")
    shape = struct.unpack_from(f"<{ndim}Q", raw, off)
    off += 8 * ndim
    try:
        dtype = np.dtype(raw[off : off + dlen].decode("ascii"))
    except (TypeError, ValueError, UnicodeDecodeError) as exc:
        raise ValueError(f"undecodable dtype string: {exc}") from None
    if dtype.hasobject:
        # an object dtype string on the wire is either corruption or an
        # attempt to smuggle pickled payloads — never frombuffer it
        raise ValueError(f"refusing to decode object dtype {dtype!r}")
    off += dlen
    a = np.frombuffer(raw, dtype=dtype, offset=off)
    expect = int(np.prod(shape)) if ndim else 1
    if a.size != expect:
        raise ValueError(f"payload size {a.size} != shape product {expect}")
    return a.reshape(shape).copy()


def encoded_nbytes(a: np.ndarray) -> int:
    """Size in bytes :func:`encode_array` would produce (without encoding)."""
    return _HEADER.size + 8 * a.ndim + len(a.dtype.str) + a.nbytes
