"""Self-describing binary codec for numpy arrays.

The value database stores FFT-operation outputs as opaque byte strings (the
way Redis would); this codec frames dtype/shape so arrays round-trip exactly.

Wire format::

    magic (4s) | version (u8) | dtype-string length (u8) | ndim (u8) | pad (u8)
    | shape (ndim * u64) | dtype string | raw bytes (C order)
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["encode_array", "decode_array", "encoded_nbytes"]

_MAGIC = b"mLRv"
_HEADER = struct.Struct("<4sBBBB")


def encode_array(a: np.ndarray) -> bytes:
    """Serialize an array (any dtype/shape) to a self-describing byte string."""
    a = np.ascontiguousarray(a)
    dtype_str = a.dtype.str.encode("ascii")
    if len(dtype_str) > 255:
        raise ValueError(f"dtype string too long: {a.dtype}")
    if a.ndim > 255:
        raise ValueError(f"too many dimensions: {a.ndim}")
    header = _HEADER.pack(_MAGIC, 1, len(dtype_str), a.ndim, 0)
    shape = struct.pack(f"<{a.ndim}Q", *a.shape)
    return header + shape + dtype_str + a.tobytes()


def decode_array(raw: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    if len(raw) < _HEADER.size:
        raise ValueError("buffer too short for header")
    magic, version, dlen, ndim, _ = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != 1:
        raise ValueError(f"unsupported version {version}")
    off = _HEADER.size
    shape = struct.unpack_from(f"<{ndim}Q", raw, off)
    off += 8 * ndim
    dtype = np.dtype(raw[off : off + dlen].decode("ascii"))
    off += dlen
    a = np.frombuffer(raw, dtype=dtype, offset=off)
    expect = int(np.prod(shape)) if ndim else 1
    if a.size != expect:
        raise ValueError(f"payload size {a.size} != shape product {expect}")
    return a.reshape(shape).copy()


def encoded_nbytes(a: np.ndarray) -> int:
    """Size in bytes :func:`encode_array` would produce (without encoding)."""
    return _HEADER.size + 8 * a.ndim + len(a.dtype.str) + a.nbytes
