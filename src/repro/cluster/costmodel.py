"""Analytic cost model for paper-scale operation timings.

All performance experiments run the *numerics* at simulation scale but
replay timing at *paper scale*; this module supplies the per-task durations
the discrete-event timeline schedules.  Costs are first-order analytic
models (elements x work-per-element / device-throughput + latency) with two
fitted constants, calibrated so the baseline pipeline reproduces the
paper's headline numbers:

- original ADMM-FFT on ``(1K)^3``, 60 iterations  ->  ~68 s      (Fig. 8a)
- exposed CPU-GPU transfer share on ``(1K)^3``    ->  ~47 %      (Sec. 2)
- index query on 1M keys, dim 60                  ->  ~0.2 ms    (Sec. 4.3.2)
- value-database P99                              ->  <0.5 ms    (Sec. 4.3.2)

The fit is recorded in EXPERIMENTS.md; no experiment consumes absolute
seconds beyond these anchors — the figures report normalized times, ratios
and distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .devices import POLARIS, NodeSpec

__all__ = ["ProblemDims", "CostModel"]


@dataclass(frozen=True)
class ProblemDims:
    """Paper-scale problem: cubic volume ``n^3``, ``n`` angles, ``n^2`` detector."""

    n: int
    n_chunks: int = 64

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if not (1 <= self.n_chunks <= self.n):
            raise ValueError(f"n_chunks must be in [1, n], got {self.n_chunks}")

    @property
    def chunk_slices(self) -> int:
        return max(1, self.n // self.n_chunks)

    @property
    def chunk_elems(self) -> int:
        """Elements of one chunk operand (a slab of an n^3 array)."""
        return self.chunk_slices * self.n * self.n

    @property
    def chunk_bytes(self) -> int:
        """COMPLEX64 chunk payload."""
        return 8 * self.chunk_elems

    @property
    def volume_bytes(self) -> int:
        return 8 * self.n**3


@dataclass
class CostModel:
    """Durations (seconds) for every schedulable unit of work."""

    node: NodeSpec = POLARIS
    #: effective GPU throughput for gridding-FFT work, elements/s; fitted.
    gpu_fft_elems_per_s: float = 16.0e9
    #: relative op weights: F_u2D's per-element work is dominated by the
    #: per-point Gaussian gather (taps^2 per target) vs the 1-D transform's
    #: taps; ratios below reproduce the paper's observation that F_u2D is
    #: the longest operation (Sec. 4.3.2) and its Fig. 10 proportions.
    op_weight: dict = field(
        default_factory=lambda: {
            "Fu1D": 1.0,
            "Fu1D*": 1.05,
            "Fu2D": 4.0,
            "Fu2D*": 4.2,
            "F2D": 0.35,
            "F2D*": 0.35,
        }
    )
    #: index DB: seconds per 0.2 ms IVF probe of a 1M-key database (Sec 4.3.2)
    index_query_base_s: float = 0.2e-3
    #: value DB service latency (Redis get/put handling, excl. wire time)
    value_db_service_s: float = 0.2e-3
    #: per-message RDMA/RPC software overhead on each side
    rpc_overhead_s: float = 5e-6
    key_bytes: int = 240  # 60-dim float32 key + framing (< 1 KB, Sec. 4.3.3)
    coalesce_payload_bytes: int = 4096

    # -- GPU ops -----------------------------------------------------------------------

    def fft_time(self, op: str, dims: ProblemDims) -> float:
        """GPU time of one chunk-level FFT operation at paper scale."""
        if op not in self.op_weight:
            raise ValueError(f"unknown op {op!r}")
        work = dims.chunk_elems * math.log2(dims.n) * self.op_weight[op]
        return work / self.gpu_fft_elems_per_s

    # -- data movement -------------------------------------------------------------------

    def h2d_time(self, dims: ProblemDims) -> float:
        return self.node.pcie.transfer_time(dims.chunk_bytes)

    def d2h_time(self, dims: ProblemDims) -> float:
        return self.node.pcie.transfer_time(dims.chunk_bytes)

    def net_time(self, nbytes: float) -> float:
        """One direction over a Slingshot NIC."""
        return self.node.nic.transfer_time(nbytes) + self.rpc_overhead_s

    def nvlink_time(self, nbytes: float) -> float:
        return self.node.nvlink.transfer_time(nbytes)

    def ssd_write_time(self, nbytes: float) -> float:
        return self.node.ssd.write_time(nbytes)

    def ssd_read_time(self, nbytes: float) -> float:
        return self.node.ssd.read_time(nbytes)

    # -- streaming pipeline stages -------------------------------------------------------

    def chunk_read_time(self, dims: ProblemDims) -> float:
        """Reader stage: SSD load of one chunk slab (spill-backed ingest)."""
        return self.node.ssd.read_time(dims.chunk_bytes)

    def chunk_write_time(self, dims: ProblemDims) -> float:
        """Writer stage: SSD store of one output slab."""
        return self.node.ssd.write_time(dims.chunk_bytes)

    def chunk_compute_time(
        self,
        dims: ProblemDims,
        ops: tuple[str, ...] = ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"),
    ) -> float:
        """Compute stage: one chunk through the cancelled sweep's FFT ops
        plus forward and adjoint PCIe staging."""
        return sum(self.fft_time(op, dims) for op in ops) + 2 * (
            self.h2d_time(dims) + self.d2h_time(dims)
        )

    # -- CPU work ------------------------------------------------------------------------

    def encode_time(self, dims: ProblemDims) -> float:
        """INT8 CNN key encoding of one chunk on the host.

        The encoder downsamples the chunk to a 32x32 2-channel image; its
        conv stack costs ~2.6 MMACs, to which we add a pass over the chunk
        for the downsampling reduction.  "less than 1% of the total
        execution time" per the paper.
        """
        cnn_macs = 2.6e6
        downsample_ops = dims.chunk_elems
        return (cnn_macs * 2 + downsample_ops) / self.node.cpu.int8_ops_per_s * 4

    def cpu_subtract_time(self, dims: ProblemDims) -> float:
        """Frequency-domain COMPLEX64 subtraction on the CPU (the Sec. 4.2
        penalty that motivates fusing the subtraction into the GPU kernel)."""
        return dims.chunk_elems / self.node.cpu.complex_elemwise_per_s

    def cache_compare_time(self, n_items: int) -> float:
        """Similarity comparison against ``n_items`` cached keys (60-dim)."""
        return n_items * 60 * 2 / (self.node.cpu.int8_ops_per_s / 16)

    # -- memoization database ----------------------------------------------------------

    def index_query_time(self, n_keys: int, batch: int = 1) -> float:
        """IVF probe cost: grows ~sqrt(n_keys) (cluster count scaling), with
        sublinear batching gains from multithreaded batched lookup."""
        scale = math.sqrt(max(n_keys, 1) / 1e6)
        per = self.index_query_base_s * max(scale, 0.05)
        return per * batch**0.6

    def value_fetch_wire_bytes(self, dims: ProblemDims) -> int:
        return dims.chunk_bytes

    def keys_per_coalesced_message(self) -> int:
        return max(1, self.coalesce_payload_bytes // self.key_bytes)
