"""Simulated HPC platform (Polaris substitute): DES kernel, devices, topology,
and the paper-calibrated cost model."""

from .costmodel import CostModel, ProblemDims
from .des import Resource, Task, Timeline
from .devices import POLARIS, CPUSpec, GPUSpec, LinkSpec, NodeSpec, SSDSpec
from .topology import ClusterModel

__all__ = [
    "CostModel",
    "ProblemDims",
    "Resource",
    "Task",
    "Timeline",
    "CPUSpec",
    "GPUSpec",
    "LinkSpec",
    "NodeSpec",
    "POLARIS",
    "SSDSpec",
    "ClusterModel",
]
