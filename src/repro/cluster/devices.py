"""Device and link specifications, with a Polaris-node default catalog.

Numbers mirror the evaluation platform of Section 6.1: Polaris nodes with
one 32-core EPYC 7543P, 512 GB DDR4, four 40-GB A100s (NVLink), two local
NVMe SSDs, and dual HPE Slingshot-11 NICs at 200 Gb/s bidirectional
injection bandwidth.  Effective bandwidths are the sustained (not peak)
figures typically measured on that hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "CPUSpec", "LinkSpec", "SSDSpec", "NodeSpec", "POLARIS"]


@dataclass(frozen=True)
class GPUSpec:
    """A GPU compute engine; throughput is the effective FFT processing rate
    in elements/second (complex64), fitted in :mod:`.costmodel`."""

    name: str = "A100-40GB"
    memory_gb: float = 40.0
    fft_elems_per_s: float = 35e9

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.fft_elems_per_s <= 0:
            raise ValueError("GPU spec values must be positive")


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU: elementwise complex throughput (for the un-fused frequency-
    domain subtraction of Section 4.2) and int8 CNN inference throughput."""

    name: str = "EPYC-7543P"
    cores: int = 32
    memory_gb: float = 512.0
    # COMPLEX64 streaming arithmetic is DRAM-bound on the host (~3 arrays
    # of traffic per op at ~20 GB/s effective), hence far below peak FLOPs.
    complex_elemwise_per_s: float = 1.5e9
    int8_ops_per_s: float = 2.0e12

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")


@dataclass(frozen=True)
class LinkSpec:
    """A data link: fixed latency plus bandwidth-serialized transfer."""

    name: str
    bandwidth_gbs: float  # GB/s, effective
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.latency_us < 0:
            raise ValueError("bad link spec")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` once the link is granted."""
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class SSDSpec:
    name: str = "NVMe-1.6TB"
    capacity_tb: float = 1.6
    read_gbs: float = 3.2
    write_gbs: float = 2.0
    latency_us: float = 80.0

    def read_time(self, nbytes: float) -> float:
        return self.latency_us * 1e-6 + nbytes / (self.read_gbs * 1e9)

    def write_time(self, nbytes: float) -> float:
        return self.latency_us * 1e-6 + nbytes / (self.write_gbs * 1e9)


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: GPUs, host, PCIe, NVLink, NIC, SSDs."""

    gpu: GPUSpec
    cpu: CPUSpec
    n_gpus: int = 4
    # effective PCIe4 x16 rate including host staging of chunked operands
    pcie: LinkSpec = LinkSpec("PCIe4x16", bandwidth_gbs=16.0, latency_us=10.0)
    nvlink: LinkSpec = LinkSpec("NVLink3", bandwidth_gbs=300.0, latency_us=5.0)
    nic: LinkSpec = LinkSpec("Slingshot11", bandwidth_gbs=25.0, latency_us=2.0)
    ssd: SSDSpec = SSDSpec()
    n_ssds: int = 2

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")


#: The evaluation platform of paper Section 6.1.
POLARIS = NodeSpec(gpu=GPUSpec(), cpu=CPUSpec())
