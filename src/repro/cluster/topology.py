"""Cluster topology: compute nodes plus one remote memory node.

Mirrors the paper's distributed-memoization deployment (Figure 6): ``N``
compute nodes (four A100s each on Polaris) run ADMM-FFT; a single memory
node hosts the index and value databases; everything shares the Slingshot
fabric.  The class materializes one :class:`~repro.cluster.des.Resource`
per hardware engine so experiment builders can schedule against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .des import Resource, Timeline
from .devices import POLARIS, NodeSpec

__all__ = ["ClusterModel"]


@dataclass
class GPUHandle:
    """Resource bundle of one GPU: its compute stream and its PCIe DMA engine."""

    node: int
    index: int
    compute: Resource
    pcie: Resource


class ClusterModel:
    """Resources for ``n_gpus`` spread over Polaris-style nodes + memory node.

    Engine model (capacity = parallel channels):

    - each GPU: 1 compute stream + 1 dedicated PCIe4 x16 DMA engine,
    - each compute node: 1 NIC resource with 2 channels (dual Slingshot),
      1 CPU resource with 4 channels (multithreaded host work), 1 SSD
      resource with 2 channels (two local NVMe),
    - the memory node: a NIC (2 channels) — the contention point all
      compute nodes share — and an index-search engine (4 channels,
      multithreaded batched lookups).
    """

    def __init__(
        self,
        timeline: Timeline,
        n_gpus: int = 1,
        spec: NodeSpec = POLARIS,
        with_memory_node: bool = True,
        n_index_shards: int = 1,
    ) -> None:
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        if n_index_shards < 1:
            raise ValueError(f"n_index_shards must be >= 1, got {n_index_shards}")
        self.timeline = timeline
        self.spec = spec
        self.n_gpus = n_gpus
        self.n_nodes = math.ceil(n_gpus / spec.n_gpus)
        self.gpus: list[GPUHandle] = []
        for g in range(n_gpus):
            node = g // spec.n_gpus
            self.gpus.append(
                GPUHandle(
                    node=node,
                    index=g,
                    compute=timeline.resource(f"node{node}/gpu{g}"),
                    pcie=timeline.resource(f"node{node}/gpu{g}/pcie"),
                )
            )
        self.node_nics = [
            timeline.resource(f"node{i}/nic", capacity=2) for i in range(self.n_nodes)
        ]
        self.node_cpus = [
            timeline.resource(f"node{i}/cpu", capacity=4) for i in range(self.n_nodes)
        ]
        self.node_ssds = [
            timeline.resource(f"node{i}/ssd", capacity=spec.n_ssds)
            for i in range(self.n_nodes)
        ]
        self.memory_nic: Resource | None = None
        self.memory_index: Resource | None = None
        self.memory_index_shards: list[Resource] = []
        if with_memory_node:
            # single injection NIC: the shared bottleneck Figures 15-16 probe
            self.memory_nic = timeline.resource("memnode/nic", capacity=1)
            # the index database sharded over independent service engines
            # (one engine when unsharded — the paper's single memory node);
            # shard 0 keeps the historical resource name
            self.memory_index_shards = [
                timeline.resource(
                    "memnode/index" if s == 0 else f"memnode/index/{s}", capacity=4
                )
                for s in range(n_index_shards)
            ]
            self.memory_index = self.memory_index_shards[0]

    def index_shard(self, shard: int) -> Resource:
        return self.memory_index_shards[shard]

    def nic_of(self, gpu: GPUHandle) -> Resource:
        return self.node_nics[gpu.node]

    def cpu_of(self, gpu: GPUHandle) -> Resource:
        return self.node_cpus[gpu.node]

    def ssd_of(self, gpu: GPUHandle) -> Resource:
        return self.node_ssds[gpu.node]

    def crosses_node(self, a: GPUHandle, b: GPUHandle) -> bool:
        return a.node != b.node
