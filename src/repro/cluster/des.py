"""Deterministic discrete-event timeline scheduler.

The performance figures of the paper (Figs. 8--16) are about pipeline
overlap, bandwidth serialization and queueing contention on a Polaris-class
machine.  This module provides the simulation kernel those experiments run
on: a *list scheduler* over shared resources.

Model: a :class:`Task` occupies one :class:`Resource` channel for a fixed
duration and may depend on other tasks.  Scheduling is greedy in submission
order — a task starts at the latest of (its release time, its dependencies'
completion, the earliest channel availability of its resource) — which is
exactly the FIFO-per-engine behavior of CUDA streams, DMA engines, and NIC
queues that the real system exhibits.  Because everything is deterministic,
experiments are exactly reproducible.

The scheduler records per-resource busy time (for the bandwidth-utilization
figure) and per-task latencies (for the query-latency CDF figure).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Resource", "Task", "Timeline"]


@dataclass
class Resource:
    """A serially shared device engine (or ``capacity`` identical channels).

    Examples: one GPU compute stream, one PCIe DMA engine, one NIC, one SSD
    controller.  Bandwidth sharing is modeled by serialization, the standard
    first-order model for DMA/NIC queues.
    """

    name: str
    capacity: int = 1
    busy_time: float = 0.0
    _channels: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._channels = [0.0] * self.capacity
        heapq.heapify(self._channels)

    def earliest_free(self) -> float:
        return self._channels[0]

    def occupy(self, start: float, duration: float) -> float:
        """Place work on the earliest-free channel; returns the end time."""
        free = heapq.heappop(self._channels)
        begin = max(free, start)
        end = begin + duration
        heapq.heappush(self._channels, end)
        self.busy_time += duration
        return end

    def reset(self) -> None:
        self._channels = [0.0] * self.capacity
        heapq.heapify(self._channels)
        self.busy_time = 0.0


@dataclass
class Task:
    """A scheduled unit of work."""

    name: str
    resource: Resource | None
    duration: float
    start: float = 0.0
    end: float = 0.0
    release: float = 0.0
    tags: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Completion minus release — queueing delay plus service time."""
        return self.end - self.release


class Timeline:
    """Greedy deterministic scheduler over shared resources."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self.resources: dict[str, Resource] = {}

    # -- resources -----------------------------------------------------------------

    def resource(self, name: str, capacity: int = 1) -> Resource:
        """Get-or-create a named resource."""
        if name not in self.resources:
            self.resources[name] = Resource(name, capacity)
        return self.resources[name]

    # -- scheduling ----------------------------------------------------------------

    def add(
        self,
        name: str,
        resource: Resource | str | None,
        duration: float,
        deps: list[Task] | None = None,
        release: float = 0.0,
        **tags,
    ) -> Task:
        """Schedule a task immediately (greedy, in submission order).

        ``resource=None`` models pure dependency nodes (zero-width barriers
        are fine with ``duration=0``).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        res = self.resources[resource] if isinstance(resource, str) else resource
        ready = release
        for dep in deps or ():
            ready = max(ready, dep.end)
        task = Task(name=name, resource=res, duration=duration, release=release, tags=tags)
        if res is None:
            task.start = ready
            task.end = ready + duration
        else:
            # find the begin time the resource will actually grant
            task.end = res.occupy(ready, duration)
            task.start = task.end - duration
        self.tasks.append(task)
        return task

    # -- results ---------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def utilization(self, resource: Resource | str) -> float:
        """busy / (capacity * makespan) for one resource."""
        res = self.resources[resource] if isinstance(resource, str) else resource
        span = self.makespan
        if span <= 0:
            return 0.0
        return res.busy_time / (res.capacity * span)

    def latencies(self, name_prefix: str = "") -> list[float]:
        """Latency (end - release) of all tasks whose name matches the prefix."""
        return [t.latency for t in self.tasks if t.name.startswith(name_prefix)]

    def tasks_named(self, name_prefix: str) -> list[Task]:
        return [t for t in self.tasks if t.name.startswith(name_prefix)]

    def busy_between(self, resource: Resource | str, t0: float, t1: float) -> float:
        """Busy time of a resource's tasks overlapping the window [t0, t1]."""
        res = self.resources[resource] if isinstance(resource, str) else resource
        total = 0.0
        for t in self.tasks:
            if t.resource is res:
                total += max(0.0, min(t.end, t1) - max(t.start, t0))
        return total
