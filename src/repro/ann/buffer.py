"""Growable contiguous row storage for incremental index structures.

The ANN indexes (and the memoization database's cold-path buffer) grow one
vector at a time for the lifetime of a reconstruction.  Holding those rows
in a Python list forces every search to re-``np.stack`` the whole
collection — an O(n) copy per query that dominates once databases reach
thousands of entries.  :class:`GrowableRows` keeps the rows in one
preallocated array that doubles on overflow (amortized O(1) append) and
exposes the filled prefix as a zero-copy view, so searches operate directly
on contiguous memory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableRows"]


class GrowableRows:
    """Amortized-O(1) append of fixed-shape rows into one contiguous array.

    Parameters
    ----------
    row_shape:
        Trailing shape of one row: ``()`` for scalars, ``(dim,)`` for
        vectors, or any higher-rank tuple.  An ``int`` is shorthand for a
        1-D row of that length.
    dtype:
        Element dtype of the backing buffer (appends are cast to it).
    capacity:
        Initial row capacity (must be >= 1; the buffer doubles as needed).
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, row_shape=(), dtype=np.float32, capacity: int = 16) -> None:
        if isinstance(row_shape, (int, np.integer)):
            row_shape = (int(row_shape),)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buf = np.empty((int(capacity), *row_shape), dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def row_shape(self) -> tuple[int, ...]:
        return self._buf.shape[1:]

    @property
    def dtype(self) -> np.dtype:
        return self._buf.dtype

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the filled prefix, shape ``(len, *row_shape)``.

        Valid until the next growth-triggering append; do not hold across
        mutations.
        """
        return self._buf[: self._n]

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = self._buf.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        buf = np.empty((cap, *self._buf.shape[1:]), dtype=self._buf.dtype)
        buf[: self._n] = self._buf[: self._n]
        self._buf = buf

    def append(self, row) -> None:
        """Append one row (shape ``row_shape``, cast to the buffer dtype)."""
        self._reserve(1)
        self._buf[self._n] = row
        self._n += 1

    def extend(self, rows) -> None:
        """Append ``m`` rows at once from an array of shape ``(m, *row_shape)``."""
        rows = np.asarray(rows)
        if rows.shape[1:] != self._buf.shape[1:]:
            raise ValueError(
                f"expected rows of shape (m, {self._buf.shape[1:]}), got {rows.shape}"
            )
        m = rows.shape[0]
        self._reserve(m)
        self._buf[self._n : self._n + m] = rows
        self._n += m

    def clear(self) -> None:
        """Drop all rows (capacity is retained)."""
        self._n = 0
