"""Brute-force exact nearest-neighbor index (ground truth for ANN recall)."""

from __future__ import annotations

import numpy as np

from .buffer import GrowableRows

__all__ = ["FlatIndex"]


class FlatIndex:
    """Exact L2 index with incremental adds.

    The distance-computation counter mirrors Faiss' ``ndis`` statistic and is
    what the private-vs-global cache comparison of the paper measures.

    Vectors live in a growable contiguous matrix whose squared norms are
    maintained at insert time, so a search is one GEMM against the stored
    prefix — no per-query re-stacking of the collection.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._vecs = GrowableRows((dim,), np.float32)
        self._norms2 = GrowableRows((), np.float32)
        self._ids = GrowableRows((), np.int64)
        self.n_distance_computations = 0

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, vecs: np.ndarray, ids: np.ndarray | None = None) -> None:
        vecs = np.atleast_2d(np.asarray(vecs, dtype=np.float32))
        if vecs.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vecs.shape[1]}")
        start = len(self._ids)
        ids = np.arange(start, start + len(vecs)) if ids is None else np.asarray(ids)
        if len(ids) != len(vecs):
            raise ValueError("ids and vecs length mismatch")
        self._vecs.extend(vecs)
        self._norms2.extend(np.sum(vecs**2, axis=1))
        self._ids.extend(ids.astype(np.int64))

    # -- snapshot hooks ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, restorable state (arrays + JSON-able scalars only)."""
        return {
            "dim": self.dim,
            "vecs": np.array(self._vecs.view, copy=True),
            "norms2": np.array(self._norms2.view, copy=True),
            "ids": np.array(self._ids.view, copy=True),
            "ndis": self.n_distance_computations,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FlatIndex":
        """Rebuild an index that answers ``search`` bit-identically to the
        instance that produced ``state``."""
        ix = cls(int(state["dim"]))
        vecs = np.asarray(state["vecs"], dtype=np.float32)
        if len(vecs):
            ix._vecs.extend(vecs)
            ix._norms2.extend(np.asarray(state["norms2"], dtype=np.float32))
            ix._ids.extend(np.asarray(state["ids"], dtype=np.int64))
        ix.n_distance_computations = int(state["ndis"])
        return ix

    def search(self, queries: np.ndarray, k: int = 1):
        """Return ``(distances, ids)`` of the ``k`` nearest stored vectors.

        Distances are Euclidean (not squared).  Missing neighbors (index
        smaller than ``k``) are reported as ``(inf, -1)``.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        dists = np.full((nq, k), np.inf, dtype=np.float32)
        ids = np.full((nq, k), -1, dtype=np.int64)
        if not len(self._ids):
            return dists, ids
        mat = self._vecs.view
        d2 = (
            np.sum(queries**2, axis=1)[:, None]
            - 2.0 * queries @ mat.T
            + self._norms2.view[None, :]
        )
        self.n_distance_computations += d2.size
        kk = min(k, mat.shape[0])
        order = np.argsort(d2, axis=1)[:, :kk]
        dists[:, :kk] = np.sqrt(np.maximum(np.take_along_axis(d2, order, axis=1), 0.0))
        ids[:, :kk] = self._ids.view[order]
        return dists, ids
