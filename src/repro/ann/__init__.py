"""ANN index substrate (Faiss substitute): IVF, HNSW, brute force, k-means."""

from .buffer import GrowableRows
from .flat import FlatIndex
from .hnsw import HNSWIndex
from .ivf import IVFFlatIndex
from .kmeans import assign, kmeans

__all__ = ["FlatIndex", "GrowableRows", "HNSWIndex", "IVFFlatIndex", "assign", "kmeans"]
