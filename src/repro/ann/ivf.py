"""Cluster-based (inverted-file) approximate nearest-neighbor index.

This is the Faiss ``IVFFlat`` structure the paper picks for the memoization
index database: "We use the cluster-based ANN in Faiss because it allows
dynamic insertion with minimal overhead compared to the graph-based ANN,
which incurs high reconstruction costs."  A k-means coarse quantizer
partitions key space; each cluster owns an inverted list of vectors;
queries scan the ``nprobe`` nearest clusters.  Inserts append to one list —
O(1), no restructuring — which is the property mLR relies on, and which
:mod:`repro.ann.hnsw` exists to contrast against.
"""

from __future__ import annotations

import numpy as np

from .kmeans import kmeans

__all__ = ["IVFFlatIndex"]


class IVFFlatIndex:
    """IVF-Flat ANN index with dynamic insertion and batched search."""

    def __init__(self, dim: int, n_clusters: int = 16, nprobe: int = 2) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if not (1 <= nprobe):
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.dim = dim
        self.n_clusters = n_clusters
        self.nprobe = min(nprobe, n_clusters)
        self.centroids: np.ndarray | None = None
        self._lists: list[list[np.ndarray]] = []
        self._list_ids: list[list[int]] = []
        self._next_id = 0
        self.n_distance_computations = 0

    # -- lifecycle -------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self.centroids is not None

    def __len__(self) -> int:
        return sum(len(lst) for lst in self._list_ids)

    def train(self, samples: np.ndarray, seed: int = 0) -> None:
        """Fit the coarse quantizer on representative key vectors."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float32))
        if samples.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {samples.shape[1]}")
        k = min(self.n_clusters, samples.shape[0])
        centers, _ = kmeans(samples, k, seed=seed)
        self.n_clusters = k
        self.nprobe = min(self.nprobe, k)
        self.centroids = centers.astype(np.float32)
        self._lists = [[] for _ in range(k)]
        self._list_ids = [[] for _ in range(k)]

    # -- insertion ---------------------------------------------------------------------

    def add(self, vecs: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Dynamic insertion: O(1) append to the nearest cluster's list."""
        if not self.is_trained:
            raise RuntimeError("index must be trained before adding vectors")
        vecs = np.atleast_2d(np.asarray(vecs, dtype=np.float32))
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + len(vecs))
        ids = np.asarray(ids, dtype=np.int64)
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        cl = self._nearest_clusters(vecs, 1)[:, 0]
        for v, i, c in zip(vecs, ids, cl):
            self._lists[c].append(v)
            self._list_ids[c].append(int(i))
        return ids

    # -- search -----------------------------------------------------------------------

    def _nearest_clusters(self, queries: np.ndarray, n: int) -> np.ndarray:
        d = (
            np.sum(queries**2, axis=1)[:, None]
            - 2.0 * queries @ self.centroids.T
            + np.sum(self.centroids**2, axis=1)[None, :]
        )
        self.n_distance_computations += d.size
        return np.argsort(d, axis=1)[:, :n]

    def search(self, queries: np.ndarray, k: int = 1):
        """Batched ``nprobe`` search; returns Euclidean ``(distances, ids)``.

        Batching queries amortizes the centroid scan — the benefit the
        paper's key-coalescing optimization exploits ("batched lookup in the
        index database").
        """
        if not self.is_trained:
            raise RuntimeError("index must be trained before searching")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        dists = np.full((nq, k), np.inf, dtype=np.float32)
        ids = np.full((nq, k), -1, dtype=np.int64)
        probes = self._nearest_clusters(queries, self.nprobe)
        for qi in range(nq):
            cand_vecs: list[np.ndarray] = []
            cand_ids: list[int] = []
            for c in probes[qi]:
                cand_vecs.extend(self._lists[c])
                cand_ids.extend(self._list_ids[c])
            if not cand_ids:
                continue
            mat = np.stack(cand_vecs)
            d2 = np.sum((mat - queries[qi]) ** 2, axis=1)
            self.n_distance_computations += d2.size
            kk = min(k, len(cand_ids))
            order = np.argsort(d2)[:kk]
            dists[qi, :kk] = np.sqrt(d2[order])
            ids[qi, :kk] = np.asarray(cand_ids)[order]
        return dists, ids

    # -- introspection ------------------------------------------------------------------

    def list_sizes(self) -> list[int]:
        return [len(lst) for lst in self._list_ids]
