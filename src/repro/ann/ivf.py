"""Cluster-based (inverted-file) approximate nearest-neighbor index.

This is the Faiss ``IVFFlat`` structure the paper picks for the memoization
index database: "We use the cluster-based ANN in Faiss because it allows
dynamic insertion with minimal overhead compared to the graph-based ANN,
which incurs high reconstruction costs."  A k-means coarse quantizer
partitions key space; each cluster owns an inverted list of vectors;
queries scan the ``nprobe`` nearest clusters.  Inserts append to one list —
O(1), no restructuring — which is the property mLR relies on, and which
:mod:`repro.ann.hnsw` exists to contrast against.

Inverted lists are growable contiguous buffers with squared norms
maintained at insert time (:class:`~repro.ann.buffer.GrowableRows`), so the
candidate scan of a query is pure vector arithmetic over contiguous memory
— the per-query ``np.stack`` over a Python list (an O(list) copy per probe)
is gone.
"""

from __future__ import annotations

import numpy as np

from .buffer import GrowableRows
from .kmeans import kmeans

__all__ = ["IVFFlatIndex"]


class IVFFlatIndex:
    """IVF-Flat ANN index with dynamic insertion and batched search."""

    def __init__(self, dim: int, n_clusters: int = 16, nprobe: int = 2) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if not (1 <= nprobe):
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.dim = dim
        self.n_clusters = n_clusters
        self.nprobe = min(nprobe, n_clusters)
        self.centroids: np.ndarray | None = None
        self._cent_norms2: np.ndarray | None = None
        self._lists: list[GrowableRows] = []
        self._list_norms2: list[GrowableRows] = []
        self._list_ids: list[GrowableRows] = []
        self._next_id = 0
        self.n_distance_computations = 0

    # -- lifecycle -------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self.centroids is not None

    def __len__(self) -> int:
        return sum(len(lst) for lst in self._list_ids)

    def train(self, samples: np.ndarray, seed: int = 0) -> None:
        """Fit the coarse quantizer on representative key vectors."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float32))
        if samples.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {samples.shape[1]}")
        k = min(self.n_clusters, samples.shape[0])
        centers, _ = kmeans(samples, k, seed=seed)
        self.n_clusters = k
        self.nprobe = min(self.nprobe, k)
        self.centroids = centers.astype(np.float32)
        self._cent_norms2 = np.sum(self.centroids**2, axis=1)
        self._lists = [GrowableRows((self.dim,), np.float32) for _ in range(k)]
        self._list_norms2 = [GrowableRows((), np.float32) for _ in range(k)]
        self._list_ids = [GrowableRows((), np.int64) for _ in range(k)]

    # -- snapshot hooks ----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, restorable state — valid both before and after training.

        An untrained index (the coarse quantizer not yet fitted) serializes
        as configuration only; a trained one carries the centroids and every
        inverted list (vectors, maintained squared norms, ids).
        """
        state = {
            "dim": self.dim,
            "n_clusters": self.n_clusters,
            "nprobe": self.nprobe,
            "next_id": self._next_id,
            "ndis": self.n_distance_computations,
            "trained": self.is_trained,
        }
        if self.is_trained:
            state["centroids"] = np.array(self.centroids, copy=True)
            state["lists"] = [
                {
                    "vecs": np.array(self._lists[c].view, copy=True),
                    "norms2": np.array(self._list_norms2[c].view, copy=True),
                    "ids": np.array(self._list_ids[c].view, copy=True),
                }
                for c in range(self.n_clusters)
            ]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "IVFFlatIndex":
        """Rebuild an index that answers ``search`` bit-identically to the
        instance that produced ``state`` (training state included)."""
        ix = cls(
            int(state["dim"]),
            n_clusters=int(state["n_clusters"]),
            nprobe=int(state["nprobe"]),
        )
        if state["trained"]:
            ix.centroids = np.asarray(state["centroids"], dtype=np.float32)
            ix._cent_norms2 = np.sum(ix.centroids**2, axis=1)
            k = ix.n_clusters
            ix._lists = [GrowableRows((ix.dim,), np.float32) for _ in range(k)]
            ix._list_norms2 = [GrowableRows((), np.float32) for _ in range(k)]
            ix._list_ids = [GrowableRows((), np.int64) for _ in range(k)]
            for c, lst in enumerate(state["lists"]):
                vecs = np.asarray(lst["vecs"], dtype=np.float32)
                if len(vecs):
                    ix._lists[c].extend(vecs)
                    ix._list_norms2[c].extend(np.asarray(lst["norms2"], dtype=np.float32))
                    ix._list_ids[c].extend(np.asarray(lst["ids"], dtype=np.int64))
        ix._next_id = int(state["next_id"])
        ix.n_distance_computations = int(state["ndis"])
        return ix

    # -- insertion ---------------------------------------------------------------------

    def add(self, vecs: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Dynamic insertion: O(1) append to the nearest cluster's list."""
        if not self.is_trained:
            raise RuntimeError("index must be trained before adding vectors")
        vecs = np.atleast_2d(np.asarray(vecs, dtype=np.float32))
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + len(vecs))
        ids = np.asarray(ids, dtype=np.int64)
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        cl = self._nearest_clusters(vecs, 1)[:, 0]
        norms2 = np.sum(vecs**2, axis=1)
        if len(vecs) == 1:
            c = int(cl[0])
            self._lists[c].append(vecs[0])
            self._list_norms2[c].append(norms2[0])
            self._list_ids[c].append(ids[0])
        else:
            for c in np.unique(cl):
                mask = cl == c  # mask indexing preserves input order in-cluster
                self._lists[c].extend(vecs[mask])
                self._list_norms2[c].extend(norms2[mask])
                self._list_ids[c].extend(ids[mask])
        return ids

    # -- search -----------------------------------------------------------------------

    def _nearest_clusters(self, queries: np.ndarray, n: int) -> np.ndarray:
        d = (
            np.sum(queries**2, axis=1)[:, None]
            - 2.0 * queries @ self.centroids.T
            + self._cent_norms2[None, :]
        )
        self.n_distance_computations += d.size
        return np.argsort(d, axis=1)[:, :n]

    def search(self, queries: np.ndarray, k: int = 1):
        """Batched ``nprobe`` search; returns Euclidean ``(distances, ids)``.

        Batching queries amortizes the centroid scan — the benefit the
        paper's key-coalescing optimization exploits ("batched lookup in the
        index database") — and the candidate scan runs as **one** GEMM of
        all queries against the union of their probed inverted lists, with
        non-probed (query, candidate) pairs masked out.  The distance
        counter still reflects only the probed pairs, mirroring Faiss'
        ``ndis`` semantics.
        """
        if not self.is_trained:
            raise RuntimeError("index must be trained before searching")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        dists = np.full((nq, k), np.inf, dtype=np.float32)
        ids = np.full((nq, k), -1, dtype=np.int64)
        probes = self._nearest_clusters(queries, self.nprobe)
        probed_union = [int(c) for c in np.unique(probes) if len(self._lists[c])]
        if not probed_union:
            return dists, ids
        if nq == 1:
            # lean single-query path (the scalar `MemoDatabase.query` shape):
            # same candidates in the same (sorted-union) order, no masking
            if len(probed_union) == 1:
                c = probed_union[0]
                cand = self._lists[c].view
                cn2 = self._list_norms2[c].view
                cand_ids = self._list_ids[c].view
            else:
                cand = np.concatenate([self._lists[c].view for c in probed_union])
                cn2 = np.concatenate([self._list_norms2[c].view for c in probed_union])
                cand_ids = np.concatenate(
                    [self._list_ids[c].view for c in probed_union]
                )
            q = queries[0]
            d2 = np.maximum(cn2 - 2.0 * (cand @ q) + np.sum(q**2), 0.0)
            self.n_distance_computations += d2.size
            kk = min(k, d2.shape[0])
            order = np.argsort(d2)[:kk]
            dists[0, :kk] = np.sqrt(d2[order])
            ids[0, :kk] = cand_ids[order]
            return dists, ids
        if len(probed_union) == 1:  # zero-copy views when one list serves all
            c = probed_union[0]
            cand = self._lists[c].view
            cn2 = self._list_norms2[c].view
            cand_ids = self._list_ids[c].view
        else:
            cand = np.concatenate([self._lists[c].view for c in probed_union])
            cn2 = np.concatenate([self._list_norms2[c].view for c in probed_union])
            cand_ids = np.concatenate([self._list_ids[c].view for c in probed_union])
        cluster_of = np.repeat(
            probed_union, [len(self._lists[c]) for c in probed_union]
        )
        probe_mask = np.zeros((nq, self.n_clusters), dtype=bool)
        probe_mask[np.arange(nq)[:, None], probes] = True
        mask = probe_mask[:, cluster_of]  # (nq, ncand): probed pairs only
        d2 = np.maximum(
            np.sum(queries**2, axis=1)[:, None]
            - 2.0 * queries @ cand.T
            + cn2[None, :],
            0.0,
        )
        self.n_distance_computations += int(np.count_nonzero(mask))
        d2 = np.where(mask, d2, np.inf)
        kk = min(k, cand.shape[0])
        order = np.argsort(d2, axis=1)[:, :kk]
        best = np.take_along_axis(d2, order, axis=1)
        found = np.isfinite(best)
        dists[:, :kk] = np.where(found, np.sqrt(np.where(found, best, 0.0)), np.inf)
        ids[:, :kk] = np.where(found, cand_ids[order], -1)
        return dists, ids

    # -- introspection ------------------------------------------------------------------

    def list_sizes(self) -> list[int]:
        return [len(lst) for lst in self._list_ids]
