"""Graph-based ANN: Hierarchical Navigable Small World index.

The paper *rejects* HNSW for the memoization index because inserts must
rewire the graph ("high reconstruction costs") — but the comparison only
means something if both options exist, so here it is: a compact HNSW
(Malkov & Yashunin 2020) with layered greedy search.  The
``n_edge_updates`` counter quantifies exactly the insertion overhead the
paper's design decision is about; ``benchmarks`` compare it against the
IVF index's O(1) appends.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """Hierarchical navigable small-world graph over L2 distance."""

    def __init__(
        self,
        dim: int,
        m: int = 8,
        ef_construction: int = 32,
        ef_search: int = 16,
        seed: int = 0,
    ) -> None:
        if dim < 1 or m < 1:
            raise ValueError("dim and m must be >= 1")
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._rng = np.random.default_rng(seed)
        self._vecs: list[np.ndarray] = []
        self._levels: list[int] = []
        # adjacency: per node, per level, list of neighbor node indices
        self._edges: list[list[list[int]]] = []
        self._entry: int | None = None
        self.n_distance_computations = 0
        self.n_edge_updates = 0

    def __len__(self) -> int:
        return len(self._vecs)

    # -- internals -----------------------------------------------------------------

    def _dist(self, a: np.ndarray, b_idx: int) -> float:
        self.n_distance_computations += 1
        return float(np.sum((a - self._vecs[b_idx]) ** 2))

    def _random_level(self) -> int:
        # geometric level distribution with base 1/ln(m)
        ml = 1.0 / math.log(max(self.m, 2))
        return int(-math.log(self._rng.uniform(1e-12, 1.0)) * ml)

    def _search_layer(self, q: np.ndarray, entry: int, ef: int, level: int):
        """Best-first search on one layer; returns [(dist, node)] sorted."""
        visited = {entry}
        d0 = self._dist(q, entry)
        candidates = [(d0, entry)]  # min-heap
        best = [(-d0, entry)]  # max-heap of current top-ef
        while candidates:
            d, node = heapq.heappop(candidates)
            if d > -best[0][0]:
                break
            for nb in self._edges[node][level]:
                if nb in visited:
                    continue
                visited.add(nb)
                dn = self._dist(q, nb)
                if dn < -best[0][0] or len(best) < ef:
                    heapq.heappush(candidates, (dn, nb))
                    heapq.heappush(best, (-dn, nb))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, n) for d, n in best)

    # -- snapshot hooks ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, restorable state: vectors, the layered graph, the entry
        point, and the level-assignment RNG (so *future* inserts behave
        exactly as they would have on the live instance)."""
        vecs = (
            np.stack(self._vecs).astype(np.float32)
            if self._vecs
            else np.zeros((0, self.dim), dtype=np.float32)
        )
        return {
            "dim": self.dim,
            "m": self.m,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "vecs": vecs,
            "levels": [int(lv) for lv in self._levels],
            "edges": [
                [[int(n) for n in layer] for layer in node] for node in self._edges
            ],
            "entry": None if self._entry is None else int(self._entry),
            "rng_state": self._rng.bit_generator.state,
            "ndis": self.n_distance_computations,
            "n_edge_updates": self.n_edge_updates,
        }

    @classmethod
    def from_state(cls, state: dict) -> "HNSWIndex":
        """Rebuild an index that answers ``search`` bit-identically to the
        instance that produced ``state``."""
        ix = cls(
            int(state["dim"]),
            m=int(state["m"]),
            ef_construction=int(state["ef_construction"]),
            ef_search=int(state["ef_search"]),
        )
        vecs = np.asarray(state["vecs"], dtype=np.float32)
        ix._vecs = [np.array(v, copy=True) for v in vecs]
        ix._levels = [int(lv) for lv in state["levels"]]
        ix._edges = [
            [[int(n) for n in layer] for layer in node] for node in state["edges"]
        ]
        ix._entry = None if state["entry"] is None else int(state["entry"])
        ix._rng.bit_generator.state = state["rng_state"]
        ix.n_distance_computations = int(state["ndis"])
        ix.n_edge_updates = int(state["n_edge_updates"])
        return ix

    # -- public API ------------------------------------------------------------------

    def add(self, vecs: np.ndarray) -> None:
        """Insert vectors one by one, rewiring neighbor lists per layer."""
        vecs = np.atleast_2d(np.asarray(vecs, dtype=np.float32))
        if vecs.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vecs.shape[1]}")
        for v in vecs:
            self._insert(v)

    def _insert(self, v: np.ndarray) -> None:
        idx = len(self._vecs)
        level = self._random_level()
        self._vecs.append(v)
        self._levels.append(level)
        self._edges.append([[] for _ in range(level + 1)])
        if self._entry is None:
            self._entry = idx
            return
        entry = self._entry
        top = self._levels[self._entry]
        # descend greedily through the upper layers
        for lv in range(top, level, -1):
            if lv <= self._levels[entry]:
                entry = self._search_layer(v, entry, 1, min(lv, self._levels[entry]))[0][1]
        # connect on the shared layers
        for lv in range(min(level, top), -1, -1):
            found = self._search_layer(v, entry, self.ef_construction, lv)
            neighbors = [n for _, n in found[: self.m]]
            self._edges[idx][lv] = list(neighbors)
            for n in neighbors:
                self._edges[n][lv].append(idx)
                self.n_edge_updates += 1
                if len(self._edges[n][lv]) > 2 * self.m:
                    # prune to the 2m degree cap (the reference M_max0), not
                    # below it: cutting straight down to m strips so many
                    # back-edges that near-duplicate pairs can end up
                    # mutually linked but unreachable from the entry point,
                    # breaking self-query recall no matter how large
                    # ef_search is
                    d = [(self._dist(self._vecs[n], o), o) for o in self._edges[n][lv]]
                    d.sort()
                    self._edges[n][lv] = [o for _, o in d[: 2 * self.m]]
                    self.n_edge_updates += 1
            entry = found[0][1]
        if level > self._levels[self._entry]:
            self._entry = idx

    def search(self, queries: np.ndarray, k: int = 1):
        """Return Euclidean ``(distances, ids)`` for each query row."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        dists = np.full((nq, k), np.inf, dtype=np.float32)
        ids = np.full((nq, k), -1, dtype=np.int64)
        if self._entry is None:
            return dists, ids
        for qi, q in enumerate(queries):
            entry = self._entry
            for lv in range(self._levels[self._entry], 0, -1):
                entry = self._search_layer(q, entry, 1, lv)[0][1]
            found = self._search_layer(q, entry, max(self.ef_search, k), 0)
            kk = min(k, len(found))
            for j in range(kk):
                dists[qi, j] = math.sqrt(found[j][0])
                ids[qi, j] = found[j][1]
        return dists, ids
