"""Lloyd's k-means with k-means++ seeding (the IVF coarse quantizer)."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "assign"]


def _kmeanspp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]), dtype=x.dtype)
    centers[0] = x[rng.integers(n)]
    d2 = np.sum((x - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(d2.sum())
        if total > 1e-12:
            probs = d2 / total
            centers[i] = x[rng.choice(n, p=probs)]
        else:
            # every point coincides with a chosen center (duplicate-heavy
            # data, e.g. repeated memoization keys): D^2 weighting is
            # degenerate, fall back to a uniform draw
            centers[i] = x[rng.integers(n)]
        d2 = np.minimum(d2, np.sum((x - centers[i]) ** 2, axis=1))
    return centers


def assign(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center index for each row of ``x`` (squared L2)."""
    # ||x-c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; the x term is constant per row
    d = -2.0 * x @ centers.T + np.sum(centers**2, axis=1)[None, :]
    return np.argmin(d, axis=1)


def kmeans(
    x: np.ndarray,
    k: int,
    n_iters: int = 25,
    seed: int = 0,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``x`` into ``k`` centers; returns (centers, labels).

    Empty clusters are re-seeded from the point farthest from its center,
    so the returned centers always partition the data into ``k`` groups.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"need 1 <= k <= n_samples, got k={k}, n={n}")
    rng = np.random.default_rng(seed)
    centers = _kmeanspp_init(x, k, rng)
    labels = assign(x, centers)
    for _ in range(n_iters):
        moved = 0.0
        for c in range(k):
            members = x[labels == c]
            if len(members) == 0:
                # re-seed from the globally worst-served point
                far = np.argmax(np.sum((x - centers[labels]) ** 2, axis=1))
                new = x[far]
            else:
                new = members.mean(axis=0)
            moved += float(np.sum((centers[c] - new) ** 2))
            centers[c] = new
        labels = assign(x, centers)
        if moved < tol:
            break
    return centers, labels
