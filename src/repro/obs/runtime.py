"""Process-wide observability runtime behind a zero-overhead-when-disabled seam.

Mirrors the module-level config-dict pattern of :mod:`repro.lamino.usfft`
(``_FFT``): one ``_STATE`` dict holds the switch, the active
:class:`~repro.obs.config.ObsConfig`, the metrics registry, and the span
collector.  Instrumentation sites call the module functions below
unconditionally; while disabled each call is a dict lookup returning a
shared null object — no locks taken, no registry entries allocated, no
span records produced — so hot paths pay effectively nothing.

Enable by either route:

- ``MLRConfig(obs=ObsConfig(...))`` — the solver calls :func:`configure`,
- ``REPRO_OBS=1`` in the environment — picked up at import time.
"""

from __future__ import annotations

import os
import threading

from .config import ObsConfig
from .registry import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_edges
from .spans import NULL_SPAN, Span, SpanCollector

__all__ = [
    "configure",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "registry",
    "collector",
    "snapshot",
    "drain_spans",
    "reset",
]


class _NullCounter:
    """Shared do-nothing counter handed out while observability is off."""

    __slots__ = ()
    kind = "counter"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0
    max_value = 0.0

    def set(self, value: float) -> None:
        return None

    def add(self, delta: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def _edges_for(cfg: ObsConfig) -> tuple[float, ...]:
    return log_bucket_edges(
        cfg.histogram_min_s, cfg.histogram_max_s, cfg.buckets_per_decade
    )


def _fresh_state(cfg: ObsConfig, enabled_flag: bool) -> dict:
    return {
        "enabled": enabled_flag,
        "config": cfg,
        "registry": MetricsRegistry(default_edges=_edges_for(cfg)),
        "collector": SpanCollector(capacity=cfg.span_buffer),
    }


_ENV_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0")

# Swapped atomically as a whole dict by configure()/reset(); readers grab
# one entry per call, so a concurrent reconfigure is safe (they just keep
# using the generation they already saw).
_STATE = _fresh_state(ObsConfig(), _ENV_ENABLED)
_CONFIGURE_LOCK = threading.Lock()


def configure(cfg: ObsConfig | None = None) -> None:
    """Install ``cfg`` as the process-wide observability runtime.

    A fresh registry and span collector are created (sized per ``cfg``);
    previously handed-out metric objects keep working but belong to the
    old generation and no longer appear in :func:`snapshot`.
    """
    global _STATE
    cfg = cfg if cfg is not None else ObsConfig()
    if not isinstance(cfg, ObsConfig):
        raise TypeError(f"expected ObsConfig, got {type(cfg).__name__}")
    with _CONFIGURE_LOCK:
        _STATE = _fresh_state(cfg, cfg.enabled)


def reset() -> None:
    """Back to defaults with the ``REPRO_OBS`` env gate (test helper)."""
    global _STATE
    with _CONFIGURE_LOCK:
        _STATE = _fresh_state(ObsConfig(), _ENV_ENABLED)


def enabled() -> bool:
    return _STATE["enabled"]


def config() -> ObsConfig:
    return _STATE["config"]


def registry() -> MetricsRegistry:
    return _STATE["registry"]


def collector() -> SpanCollector:
    return _STATE["collector"]


def counter(name: str, **labels) -> Counter:
    state = _STATE
    if not state["enabled"]:
        return _NULL_COUNTER
    return state["registry"].counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    state = _STATE
    if not state["enabled"]:
        return _NULL_GAUGE
    return state["registry"].gauge(name, **labels)


def histogram(name: str, edges: tuple[float, ...] | None = None, **labels) -> Histogram:
    state = _STATE
    if not state["enabled"]:
        return _NULL_HISTOGRAM
    return state["registry"].histogram(name, edges=edges, **labels)


def span(name: str, **attrs):
    """Timed region context manager; a shared no-op while disabled."""
    state = _STATE
    if not state["enabled"]:
        return NULL_SPAN
    return Span(name, attrs, state["collector"])


def snapshot() -> list[dict]:
    """Point-in-time snapshot of every registered metric."""
    return _STATE["registry"].snapshot()


def drain_spans() -> tuple[list[dict], int]:
    """All finished spans so far plus the ring-overflow drop count."""
    return _STATE["collector"].drain()
