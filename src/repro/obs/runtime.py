"""Process-wide observability runtime behind a zero-overhead-when-disabled seam.

Mirrors the module-level config-dict pattern of :mod:`repro.lamino.usfft`
(``_FFT``): one ``_STATE`` dict holds the switch, the active
:class:`~repro.obs.config.ObsConfig`, the metrics registry, and the span
collector.  Instrumentation sites call the module functions below
unconditionally; while disabled each call is a dict lookup returning a
shared null object — no locks taken, no registry entries allocated, no
span records produced — so hot paths pay effectively nothing.

Enable by either route:

- ``MLRConfig(obs=ObsConfig(...))`` — the solver calls :func:`configure`,
- ``REPRO_OBS=1`` in the environment — picked up at import time.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time

from .config import ObsConfig
from .registry import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_edges
from .spans import (
    NULL_SPAN,
    Span,
    SpanCollector,
    current_trace_context,
    current_trace_id,
)

__all__ = [
    "configure",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "server_span",
    "current_trace_context",
    "current_trace_id",
    "registry",
    "collector",
    "snapshot",
    "drain_spans",
    "peek_spans",
    "flight_dir",
    "flight_dump",
    "profiler",
    "profile_snapshot",
    "telemetry_server",
    "reset",
]

log = logging.getLogger("repro.obs")


class _NullCounter:
    """Shared do-nothing counter handed out while observability is off."""

    __slots__ = ()
    kind = "counter"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0
    max_value = 0.0

    def set(self, value: float) -> None:
        return None

    def add(self, delta: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def _edges_for(cfg: ObsConfig) -> tuple[float, ...]:
    return log_bucket_edges(
        cfg.histogram_min_s, cfg.histogram_max_s, cfg.buckets_per_decade
    )


def _fresh_state(cfg: ObsConfig, enabled_flag: bool) -> dict:
    return {
        "enabled": enabled_flag,
        "config": cfg,
        "registry": MetricsRegistry(default_edges=_edges_for(cfg)),
        "collector": SpanCollector(capacity=cfg.span_buffer),
    }


def _env_http_port() -> int | None:
    raw = os.environ.get("REPRO_OBS_HTTP", "")
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        log.warning("REPRO_OBS_HTTP=%r is not a port number — ignored", raw)
        return None
    if not (0 <= port <= 65535):
        log.warning("REPRO_OBS_HTTP=%d out of range — ignored", port)
        return None
    return port


def _env_profile_hz() -> float:
    raw = os.environ.get("REPRO_OBS_PROFILE_HZ", "")
    if not raw:
        return 0.0
    try:
        hz = float(raw)
    except ValueError:
        log.warning("REPRO_OBS_PROFILE_HZ=%r is not a rate — ignored", raw)
        return 0.0
    if not (0.0 <= hz <= 1000.0):
        log.warning("REPRO_OBS_PROFILE_HZ=%g out of range — ignored", hz)
        return 0.0
    return hz


_ENV_HTTP_PORT = _env_http_port()
_ENV_PROFILE_HZ = _env_profile_hz()

# REPRO_FLIGHT_DIR alone also enables the runtime: a flight recorder with
# nothing in its rings would dump empty evidence, which defeats its point.
# So do REPRO_OBS_HTTP / REPRO_OBS_PROFILE_HZ: a telemetry endpoint over an
# empty registry, or a profiler with no spans to bill, would be pointless.
_ENV_ENABLED = (
    os.environ.get("REPRO_OBS", "") not in ("", "0")
    or bool(os.environ.get("REPRO_FLIGHT_DIR"))
    or _ENV_HTTP_PORT is not None
    or _ENV_PROFILE_HZ > 0.0
)


def _env_config() -> ObsConfig:
    """The default config the env gate implies (what :func:`reset` restores)."""
    return ObsConfig(http_port=_ENV_HTTP_PORT, profile_hz=_ENV_PROFILE_HZ)


# Swapped atomically as a whole dict by configure()/reset(); readers grab
# one entry per call, so a concurrent reconfigure is safe (they just keep
# using the generation they already saw).
_STATE = _fresh_state(_env_config(), _ENV_ENABLED)
_CONFIGURE_LOCK = threading.Lock()

# Sidecars owned by the active configuration: the sampling profiler thread
# and the HTTP telemetry endpoint.  Started/stopped under _CONFIGURE_LOCK
# whenever the runtime generation changes; read lock-free.
_PROFILER = None
_HTTP = None


def _restart_sidecars_locked(state: dict) -> None:
    """Stop the old generation's profiler/HTTP server, start the new
    config's (if any).  Caller holds ``_CONFIGURE_LOCK``."""
    global _PROFILER, _HTTP
    if _PROFILER is not None:
        _PROFILER.stop()
        _PROFILER = None
    if _HTTP is not None:
        try:
            _HTTP.close()
        except OSError as exc:
            log.warning("telemetry server close failed: %s", exc)
        _HTTP = None
    cfg: ObsConfig = state["config"]
    if not state["enabled"]:
        return
    if cfg.profile_hz > 0.0:
        # local import: profiler pulls .spans, keep runtime's import lean
        from .profiler import SamplingProfiler

        _PROFILER = SamplingProfiler(hz=cfg.profile_hz).start()
    if cfg.http_port is not None:
        # local import: http imports this module at load time, so the
        # reverse edge must stay function-scoped
        from .http import TelemetryServer

        _HTTP = TelemetryServer(
            (cfg.http_host, cfg.http_port), name="obs-http"
        )
        log.info("telemetry endpoints at %s", _HTTP.url)


def configure(cfg: ObsConfig | None = None) -> None:
    """Install ``cfg`` as the process-wide observability runtime.

    A fresh registry and span collector are created (sized per ``cfg``);
    previously handed-out metric objects keep working but belong to the
    old generation and no longer appear in :func:`snapshot`.  The config's
    sidecars — profiler thread, HTTP telemetry server — are (re)started to
    match; the previous generation's are stopped.
    """
    global _STATE
    cfg = cfg if cfg is not None else ObsConfig()
    if not isinstance(cfg, ObsConfig):
        raise TypeError(f"expected ObsConfig, got {type(cfg).__name__}")
    with _CONFIGURE_LOCK:
        _STATE = _fresh_state(cfg, cfg.enabled)
        _restart_sidecars_locked(_STATE)


def reset() -> None:
    """Back to defaults with the ``REPRO_OBS`` env gate (test helper)."""
    global _STATE
    with _CONFIGURE_LOCK:
        _STATE = _fresh_state(_env_config(), _ENV_ENABLED)
        _restart_sidecars_locked(_STATE)


def enabled() -> bool:
    return _STATE["enabled"]


def config() -> ObsConfig:
    return _STATE["config"]


def registry() -> MetricsRegistry:
    return _STATE["registry"]


def collector() -> SpanCollector:
    return _STATE["collector"]


def counter(name: str, **labels) -> Counter:
    state = _STATE
    if not state["enabled"]:
        return _NULL_COUNTER
    return state["registry"].counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    state = _STATE
    if not state["enabled"]:
        return _NULL_GAUGE
    return state["registry"].gauge(name, **labels)


def histogram(name: str, edges: tuple[float, ...] | None = None, **labels) -> Histogram:
    state = _STATE
    if not state["enabled"]:
        return _NULL_HISTOGRAM
    return state["registry"].histogram(name, edges=edges, **labels)


def span(name: str, **attrs):
    """Timed region context manager; a shared no-op while disabled."""
    state = _STATE
    if not state["enabled"]:
        return NULL_SPAN
    return Span(name, attrs, state["collector"])


def server_span(name: str, ctx, **attrs):
    """A span parented under a *remote* trace context.

    ``ctx`` is the optional ``{"tid": ..., "sid": ...}`` dict a request
    frame carried (trace id + the client-side span to parent under).  A
    missing or malformed context — old clients, hostile peers — degrades
    to a plain root :func:`span`; it must never fail a request handler."""
    state = _STATE
    if not state["enabled"]:
        return NULL_SPAN
    remote = None
    if isinstance(ctx, dict):
        tid, sid = ctx.get("tid"), ctx.get("sid")
        if (
            isinstance(tid, int)
            and isinstance(sid, int)
            and not isinstance(tid, bool)
            and not isinstance(sid, bool)
        ):
            remote = (tid, sid)
    return Span(name, attrs, state["collector"], remote=remote)


def snapshot() -> list[dict]:
    """Point-in-time snapshot of every registered metric."""
    return _STATE["registry"].snapshot()


def drain_spans() -> tuple[list[dict], int]:
    """All finished spans so far plus the ring-overflow drop count."""
    return _STATE["collector"].drain()


def peek_spans() -> tuple[list[dict], int]:
    """Non-destructive view of the span rings (the flight recorder's read)."""
    return _STATE["collector"].peek()


def profiler():
    """The active :class:`~repro.obs.profiler.SamplingProfiler`, or ``None``
    when the current config runs without one."""
    return _PROFILER


def profile_snapshot() -> dict | None:
    """The active profiler's aggregated buckets, or ``None`` without one."""
    p = _PROFILER
    return None if p is None else p.snapshot()


def telemetry_server():
    """The runtime-owned :class:`~repro.obs.http.TelemetryServer` (the
    ``ObsConfig(http_port=...)`` / ``REPRO_OBS_HTTP`` one), or ``None``."""
    return _HTTP


# -- flight recorder ------------------------------------------------------------------------
#
# The span rings double as a black-box flight recorder: always on while
# observability is enabled, bounded, overwriting oldest-first.  On a fault
# (job failure, snapshot quarantine, circuit-breaker open) flight_dump()
# writes the recent spans plus a full metrics snapshot to a JSONL artifact
# — the same format `python -m repro.obs report` reads — so a chaos-suite
# failure ships its own evidence.

_FLIGHT_SEQ = itertools.count(1)


def flight_dir() -> str | None:
    """Where flight dumps go: ``ObsConfig.flight_dir`` if set, else the
    ``REPRO_FLIGHT_DIR`` environment variable; ``None`` (no recorder)
    while observability is disabled or neither is configured."""
    state = _STATE
    if not state["enabled"]:
        return None
    return state["config"].flight_dir or os.environ.get("REPRO_FLIGHT_DIR") or None


def flight_dump(reason: str, **attrs) -> str | None:
    """Dump the black box: recent spans (peeked, not drained) plus a full
    metrics snapshot, as ``flight-<reason>-<pid>-<seq>.jsonl`` under
    :func:`flight_dir`.  Returns the artifact path, or ``None`` when the
    recorder is off.  Never raises — this runs on fault paths, and a full
    disk must not break the failure handling that called it."""
    out_dir = flight_dir()
    if out_dir is None:
        return None
    state = _STATE
    # local import: export imports this module at load time, so the
    # reverse edge must stay function-scoped
    from .export import dump_lines

    spans, dropped = state["collector"].peek()
    try:
        lines = dump_lines(state["registry"].snapshot(), spans, dropped)
        meta = json.loads(lines[0])
        meta["flight"] = {"reason": reason, "attrs": attrs, "unix": time.time()}
        lines[0] = json.dumps(meta, sort_keys=True, default=str)
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(
            out_dir, f"flight-{reason}-{os.getpid()}-{next(_FLIGHT_SEQ)}.jsonl"
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except (OSError, TypeError, ValueError) as exc:
        log.warning("flight recorder: dump for %r failed: %s", reason, exc)
        return None
    counter("flight_dumps_total", reason=reason).inc()
    log.warning(
        "flight recorder: %s — %d spans + %d metrics dumped to %s",
        reason, len(spans), len(lines) - len(spans) - 1, path,
    )
    return path


# the zero-code env routes (REPRO_OBS_HTTP / REPRO_OBS_PROFILE_HZ) start
# their sidecars at import, mirroring how REPRO_OBS enables the runtime;
# a failure here degrades to no sidecar, never a broken import
if _ENV_HTTP_PORT is not None or _ENV_PROFILE_HZ > 0.0:
    try:
        with _CONFIGURE_LOCK:
            _restart_sidecars_locked(_STATE)
    except Exception as exc:  # noqa: BLE001 — import-time side effect
        log.warning("env-configured telemetry sidecars failed to start: %s", exc)
