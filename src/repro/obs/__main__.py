"""CLI: ``python -m repro.obs report <dump.jsonl>``.

Prints the per-stage latency / throughput tables for a JSONL
observability dump (see :mod:`repro.obs.export` for the format and
:mod:`repro.obs.report` for the aggregation).
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import load_jsonl
from .report import build_report, render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="print per-stage latency/throughput tables")
    rep.add_argument("path", help="JSONL dump written by repro.obs.export.dump_jsonl")
    rep.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated report as JSON instead of tables",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        report = build_report(load_jsonl(args.path))
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
