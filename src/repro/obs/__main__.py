"""CLI: ``python -m repro.obs report <dump.jsonl> [more.jsonl ...]``.

Prints the per-stage latency / throughput tables for a JSONL
observability dump (see :mod:`repro.obs.export` for the format and
:mod:`repro.obs.report` for the aggregation).  Several dumps — a run's
local one plus each memo daemon's ``--trace-dump`` — are merged into one
stitched cross-process trace report.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import load_jsonl
from .report import build_report, merge_dumps, render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="print per-stage latency/throughput tables")
    rep.add_argument(
        "paths",
        nargs="+",
        metavar="path",
        help="JSONL dump(s) written by repro.obs.export.dump_jsonl or "
             "`python -m repro.net.server --trace-dump`; several dumps are "
             "merged into one stitched cross-process report",
    )
    rep.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated report as JSON instead of tables",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        if len(args.paths) == 1:
            data = load_jsonl(args.paths[0])
        else:
            data = merge_dumps(load_jsonl(p) for p in args.paths)
        report = build_report(data)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
