"""CLI: ``python -m repro.obs {report,heat,top} ...``.

- ``report <dump.jsonl> [more.jsonl ...]`` — per-stage latency /
  throughput tables for JSONL observability dumps (merged into one
  stitched cross-process trace report); ``--profile`` appends the
  sampling-profiler self-time table.
- ``heat <snapshot-dir | host:port> [--stale-after S]`` — memo-tier heat
  report (hit distribution by op / shard / age decile, cold-entry
  fraction, projected reclaimable bytes) from an on-disk memo snapshot or
  a live daemon's wire port.
- ``top HOST:PORT`` — live polling terminal view over a telemetry
  server's ``/snapshot`` endpoint: queue depths, memo hit rates, p95
  latencies, circuit-breaker states.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.request

from .export import load_jsonl
from .registry import _bucket_quantile
from .report import _fmt_s, _table, build_report, merge_dumps, render_report

_CIRCUIT_NAMES = {0.0: "closed", 1.0: "half-open", 2.0: "open"}

#: gauge names worth a row in the `top` view (beyond circuit_state)
_TOP_GAUGE_TOKENS = ("queue", "running", "connection", "inflight", "worker")


def _fetch_snapshot(target: str, timeout: float = 5.0) -> dict:
    """GET ``/snapshot`` from a telemetry server given ``host:port``."""
    base = target if "://" in target else f"http://{target}"
    with urllib.request.urlopen(f"{base.rstrip('/')}/snapshot", timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _heat_tree(source: str) -> dict:
    """Resolve the ``heat`` source: a snapshot directory is read (and
    checksum-verified) off disk; ``host:port`` pulls the live tier over
    the memo wire protocol (fail-closed — errors surface, no empty-tier
    fallback)."""
    if os.path.isdir(source):
        from ..service.snapshot import read_snapshot

        return read_snapshot(source, expect_kind="memo-state")
    if ":" in source:
        from ..net.client import RemoteMemoClient

        client = RemoteMemoClient(source, fail_open=False, client_name="obs-heat")
        try:
            return client.state_dict()
        finally:
            client.close()
    raise SystemExit(
        f"heat source {source!r} is neither a snapshot directory nor host:port"
    )


def _metric_rows(metrics: list[dict]) -> dict[str, list[dict]]:
    by_kind: dict[str, list[dict]] = {"counter": [], "gauge": [], "histogram": []}
    for entry in metrics:
        by_kind.setdefault(entry.get("kind", "?"), []).append(entry)
    return by_kind


def _labels_str(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_top(snap: dict, *, target: str, tick: int) -> str:
    """One frame of the live `top` view from a ``/snapshot`` payload."""
    meta = snap.get("meta") or {}
    metrics = snap.get("metrics") or []
    by_kind = _metric_rows(metrics)
    lines = [
        f"repro.obs top — {target}  server={meta.get('server', '?')}  "
        f"tick={tick}  metrics={len(metrics)}",
        "",
    ]

    gauges = [
        g
        for g in by_kind["gauge"]
        if g["name"] != "circuit_state"
        and any(tok in g["name"] for tok in _TOP_GAUGE_TOKENS)
    ]
    if gauges:
        lines.append("== queues / load ==")
        lines.extend(
            _table(
                ["gauge", "labels", "value", "max"],
                [
                    [g["name"], _labels_str(g.get("labels") or {}),
                     f"{g['value']:g}", f"{g['max']:g}"]
                    for g in sorted(gauges, key=lambda g: g["name"])
                ],
            )
        )
        lines.append("")

    chunk_counters = [
        c for c in by_kind["counter"] if c["name"] == "memo_chunks_total"
    ]
    if chunk_counters:
        per_op: dict[str, dict[str, float]] = {}
        for c in chunk_counters:
            labels = c.get("labels") or {}
            op = str(labels.get("op", "?"))
            per_op.setdefault(op, {})[str(labels.get("case", "?"))] = c["value"]
        lines.append("== memo hit rates ==")
        rows = []
        for op in sorted(per_op):
            cases = per_op[op]
            total = sum(cases.values())
            hits = sum(v for case, v in cases.items() if case.endswith("_hit"))
            rate = 100.0 * hits / total if total else 0.0
            rows.append(
                [op, f"{int(total)}", f"{int(hits)}", f"{rate:.1f}%",
                 " ".join(f"{k}:{int(v)}" for k, v in sorted(cases.items()))]
            )
        lines.extend(_table(["op", "chunks", "hits", "hit%", "cases"], rows))
        lines.append("")

    hists = [h for h in by_kind["histogram"] if h.get("count")]
    if hists:
        lines.append("== latency p95 ==")
        lines.extend(
            _table(
                ["histogram", "labels", "count", "p50", "p95", "max"],
                [
                    [h["name"], _labels_str(h.get("labels") or {}),
                     str(h["count"]),
                     _fmt_s(_bucket_quantile(h["edges"], h["counts"], h["count"],
                                             h["min"], h["max"], 0.50)),
                     _fmt_s(_bucket_quantile(h["edges"], h["counts"], h["count"],
                                             h["min"], h["max"], 0.95)),
                     _fmt_s(h["max"])]
                    for h in sorted(
                        hists, key=lambda h: (h["name"],
                                              _labels_str(h.get("labels") or {}))
                    )
                ],
            )
        )
        lines.append("")

    breakers = [g for g in by_kind["gauge"] if g["name"] == "circuit_state"]
    if breakers:
        lines.append("== circuit breakers ==")
        lines.extend(
            _table(
                ["replica", "state"],
                [
                    [str((g.get("labels") or {}).get("replica", "?")),
                     _CIRCUIT_NAMES.get(g["value"], f"?{g['value']:g}")]
                    for g in sorted(
                        breakers,
                        key=lambda g: str((g.get("labels") or {}).get("replica")),
                    )
                ],
            )
        )
        lines.append("")

    if len(lines) == 2:
        lines.append("(no matching metrics yet — is the workload running?)")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="print per-stage latency/throughput tables")
    rep.add_argument(
        "paths",
        nargs="+",
        metavar="path",
        help="JSONL dump(s) written by repro.obs.export.dump_jsonl or "
             "`python -m repro.net.server --trace-dump`; several dumps are "
             "merged into one stitched cross-process report",
    )
    rep.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated report as JSON instead of tables",
    )
    rep.add_argument(
        "--profile",
        action="store_true",
        help="append the sampling profiler's span-attributed self-time table "
             "(requires the dump to carry a profile record)",
    )

    heat_p = sub.add_parser(
        "heat", help="memo-tier heat report (cold entries, reclaimable bytes)"
    )
    heat_p.add_argument(
        "source",
        help="memo-state snapshot directory, or HOST:PORT of a live memo daemon",
    )
    heat_p.add_argument(
        "--stale-after",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="staleness cutoff for the projected-reclaimable-bytes estimate "
             "(default: 3600)",
    )
    heat_p.add_argument(
        "--json", action="store_true", help="emit the heat report as JSON"
    )

    top_p = sub.add_parser(
        "top", help="live polling view over a telemetry server's /snapshot"
    )
    top_p.add_argument("target", metavar="HOST:PORT", help="telemetry HTTP endpoint")
    top_p.add_argument(
        "--interval", type=float, default=2.0, help="poll period in seconds"
    )
    top_p.add_argument(
        "--count",
        type=int,
        default=0,
        help="number of frames to render (0 = until interrupted)",
    )
    top_p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the terminal between polls",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        if len(args.paths) == 1:
            data = load_jsonl(args.paths[0])
        else:
            data = merge_dumps(load_jsonl(p) for p in args.paths)
        report = build_report(data)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_report(report, include_profile=args.profile))
    elif args.command == "heat":
        from .heat import build_heat_report, entry_records, render_heat_report

        records = entry_records(_heat_tree(args.source))
        report = build_heat_report(records, stale_after=args.stale_after)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_heat_report(report))
    elif args.command == "top":
        tick = 0
        try:
            while True:
                tick += 1
                try:
                    frame = render_top(
                        _fetch_snapshot(args.target), target=args.target, tick=tick
                    )
                except OSError as exc:
                    frame = f"repro.obs top — {args.target}: unreachable ({exc})\n"
                if not args.no_clear:
                    sys.stdout.write("\x1b[2J\x1b[H")
                sys.stdout.write(frame)
                sys.stdout.flush()
                if args.count and tick >= args.count:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
