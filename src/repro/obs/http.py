"""Live telemetry plane: a stdlib-only threaded HTTP scrape/probe server.

:class:`TelemetryServer` turns the pull-after-the-fact observability
surface (JSONL dumps, ``--metrics-dump`` one-shots) into the live
endpoints a long-running deployment needs:

- ``GET /metrics`` — the process's metrics registry in Prometheus text
  exposition format (via :func:`~repro.obs.export.to_prometheus`), plus
  any entries contributed by the attached component's *collect hooks*
  (e.g. the memo daemon's traffic counters and per-entry heat histograms),
- ``GET /healthz`` — liveness: 200 whenever the server answers at all,
- ``GET /readyz`` — readiness: 200 only while every registered probe
  passes (daemon accepting / scheduler not saturated / not all replica
  breakers open), 503 with a JSON body naming the failing probe otherwise,
- ``GET /snapshot`` — the full JSON observability view: registry
  snapshot, a non-destructive span-ring peek, and the sampling profiler's
  buckets — the same shape :func:`~repro.obs.export.load_jsonl` produces,
  so ``build_report`` consumes it directly (this is what ``python -m
  repro.obs top`` polls).

Attachment points: ``MemoServerDaemon(telemetry_port=...)`` /
``--telemetry-port``, ``ServiceConfig(telemetry_port=...)``, and
``ObsConfig(http_port=...)`` / ``REPRO_OBS_HTTP`` for standalone solver
runs (the :mod:`repro.obs.runtime` owns that last lifecycle).

The bind address goes through :func:`repro.net.wire.parse_address`, so a
bare-IPv6 literal or a multi-colon typo is rejected with the same message
the memo daemon gives.  Scrapes are served by daemon threads and never
touch hot-path state except through the same published-gauge seam every
exporter uses; a collect/readiness hook that raises marks the scrape
degraded (counted, logged) instead of failing it.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from . import runtime

__all__ = ["TelemetryServer"]

log = logging.getLogger("repro.obs.http")


class TelemetryServer:
    """Threaded HTTP server exposing /metrics, /healthz, /readyz, /snapshot.

    ``address`` is anything :func:`~repro.net.wire.parse_address` accepts
    (``"host:port"`` or a ``(host, port)`` pair); port 0 binds ephemerally
    — read :attr:`port` / :attr:`address` after construction.

    ``collect`` hooks run on every /metrics and /snapshot request; each may
    publish gauges into the process registry (the usual ``publish()`` seam)
    and/or return extra registry-snapshot-format entries to append (used
    for values computed fresh per scrape, like entry-age histograms, which
    must not accumulate into cumulative metrics across scrapes).

    ``readiness`` probes are ``() -> (ok, detail)`` callables; /readyz is
    200 only when all pass.  A probe that raises counts as failing.
    """

    def __init__(
        self,
        address="127.0.0.1:0",
        *,
        collect=(),
        readiness=(),
        profile=None,
        name: str = "telemetry",
    ) -> None:
        # local import: repro.net pulls repro.obs in at package load, so
        # the reverse edge must stay function-scoped
        from ..net.wire import parse_address

        host, port = parse_address(address)
        self.name = name
        self._collect = list(collect)
        self._readiness = list(readiness)
        self._profile = profile if profile is not None else runtime.profile_snapshot
        self._lock = threading.Lock()
        self._scrapes = 0  # guarded-by: self._lock
        self._hook_errors = 0  # guarded-by: self._lock

        server = self

        class _Handler(BaseHTTPRequestHandler):
            # scrapers poll; access logs at 1 line/scrape are pure noise
            def log_message(self, fmt, *args):  # noqa: N802 — stdlib name
                return None

            def do_GET(self):  # noqa: N802 — stdlib name
                try:
                    server._handle(self)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # scraper hung up mid-reply

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.address: tuple[str, int] = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.25},
            name=f"{name}-http",
            daemon=True,
        )
        self._thread.start()

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    # -- request handling ----------------------------------------------------------------

    def _entries(self) -> list[dict]:
        """Registry snapshot plus every collect hook's extra entries; a
        hook that raises degrades the scrape instead of failing it."""
        extras: list[dict] = []
        for hook in self._collect:
            try:
                got = hook()
            except Exception as exc:  # noqa: BLE001 — scrape isolation boundary
                with self._lock:
                    self._hook_errors += 1
                log.warning("%s: collect hook failed: %s", self.name, exc)
                continue
            if got:
                extras.extend(got)
        return runtime.snapshot() + extras

    def _probe_results(self) -> tuple[bool, dict]:
        probes: dict[str, dict] = {}
        ready = True
        for probe in self._readiness:
            try:
                ok, detail = probe()
            except Exception as exc:  # noqa: BLE001 — probe isolation boundary
                ok, detail = False, f"probe raised {type(exc).__name__}: {exc}"
            pname = getattr(probe, "probe_name", None) or getattr(
                probe, "__name__", "probe"
            )
            probes[str(pname)] = {"ok": bool(ok), "detail": str(detail)}
            ready = ready and bool(ok)
        return ready, probes

    def _handle(self, req: BaseHTTPRequestHandler) -> None:
        # lazy: export also executes at repro.obs package-import time, and
        # REPRO_OBS_HTTP starts this server *during* that import — a
        # module-level export import here would re-enter the half-loaded
        # module and kill the env-gated startup path
        from .export import DUMP_VERSION, to_prometheus

        path = req.path.split("?", 1)[0]
        with self._lock:
            self._scrapes += 1
        if path == "/metrics":
            body = to_prometheus(self._entries()).encode("utf-8")
            self._reply(req, 200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            self._reply(req, 200, b"ok\n", "text/plain; charset=utf-8")
        elif path == "/readyz":
            ready, probes = self._probe_results()
            body = json.dumps(
                {"ready": ready, "probes": probes}, sort_keys=True
            ).encode("utf-8")
            self._reply(req, 200 if ready else 503, body, "application/json")
        elif path == "/snapshot":
            spans, dropped = runtime.peek_spans()
            with self._lock:
                hook_errors = self._hook_errors
            payload = {
                "meta": {
                    "version": DUMP_VERSION,
                    "dropped_spans": int(dropped),
                    "server": self.name,
                    "obs_enabled": runtime.enabled(),
                    "hook_errors": hook_errors,
                },
                "metrics": self._entries(),
                "spans": spans,
                "profile": self._profile(),
            }
            body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
            self._reply(req, 200, body, "application/json")
        else:
            self._reply(
                req, 404,
                b"unknown path; try /metrics /healthz /readyz /snapshot\n",
                "text/plain; charset=utf-8",
            )

    @staticmethod
    def _reply(req, status: int, body: bytes, content_type: str) -> None:
        req.send_response(status)
        req.send_header("Content-Type", content_type)
        req.send_header("Content-Length", str(len(body)))
        req.end_headers()
        req.wfile.write(body)
