"""Exporters: Prometheus text format and a JSONL span/metrics dump.

The JSONL dump is the interchange artifact between a run (or a live
daemon) and ``python -m repro.obs report``: one JSON object per line,
discriminated by a ``"rec"`` key —

- ``{"rec": "meta", ...}`` — one header line (version, drop counts),
- ``{"rec": "metric", ...}`` — one per metric, the registry snapshot entry,
- ``{"rec": "span", ...}`` — one per finished span record,
- ``{"rec": "profile", ...}`` — at most one: the sampling profiler's
  aggregated buckets (only written while a profiler is running).
"""

from __future__ import annotations

import json
import re

from . import runtime

__all__ = ["to_prometheus", "dump_jsonl", "dump_lines", "load_jsonl"]

DUMP_VERSION = 1

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _NAME_BAD.sub("_", name)


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{str(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(labels: dict, extra: dict) -> dict:
    out = dict(labels)
    out.update(extra)
    return out


def to_prometheus(snapshot: list[dict] | None = None) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Histograms use the conventional cumulative ``_bucket{le=...}`` series
    plus ``_count`` and ``_sum``; gauges also expose their high-water mark
    as ``<name>_max``.
    """
    if snapshot is None:
        snapshot = runtime.snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot:
        name = _prom_name(entry["name"])
        labels = entry.get("labels", {})
        kind = entry["kind"]
        if kind == "counter":
            header(name, "counter")
            lines.append(f"{name}{_prom_labels(labels)} {entry['value']:g}")
        elif kind == "gauge":
            header(name, "gauge")
            lines.append(f"{name}{_prom_labels(labels)} {entry['value']:g}")
            header(f"{name}_max", "gauge")
            lines.append(f"{name}_max{_prom_labels(labels)} {entry['max']:g}")
        elif kind == "histogram":
            header(name, "histogram")
            cum = 0
            for edge, n in zip(entry["edges"], entry["counts"]):
                cum += n
                le = _merge_labels(labels, {"le": f"{edge:g}"})
                lines.append(f"{name}_bucket{_prom_labels(le)} {cum}")
            le = _merge_labels(labels, {"le": "+Inf"})
            lines.append(f"{name}_bucket{_prom_labels(le)} {entry['count']}")
            lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {entry['sum']:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def dump_lines(
    snapshot: list[dict] | None = None,
    spans: list[dict] | None = None,
    dropped_spans: int = 0,
    profile: dict | None = None,
) -> list[str]:
    """The JSONL dump as a list of serialized lines (no trailing newlines).

    ``profile`` defaults to the active sampling profiler's snapshot when
    the dump is taken from the live runtime (both ``snapshot`` and
    ``spans`` left to default); pass it explicitly otherwise."""
    if profile is None and snapshot is None and spans is None:
        profile = runtime.profile_snapshot()
    if snapshot is None:
        snapshot = runtime.snapshot()
    if spans is None:
        spans, dropped_spans = runtime.drain_spans()
    lines = [
        json.dumps(
            {"rec": "meta", "version": DUMP_VERSION, "dropped_spans": dropped_spans},
            sort_keys=True,
        )
    ]
    for entry in snapshot:
        rec = {"rec": "metric"}
        rec.update(entry)
        lines.append(json.dumps(rec, sort_keys=True))
    for record in spans:
        rec = {"rec": "span"}
        rec.update(record)
        lines.append(json.dumps(rec, sort_keys=True))
    if profile is not None:
        rec = {"rec": "profile"}
        rec.update(profile)
        lines.append(json.dumps(rec, sort_keys=True))
    return lines


def dump_jsonl(
    path: str,
    snapshot: list[dict] | None = None,
    spans: list[dict] | None = None,
    dropped_spans: int = 0,
) -> int:
    """Write the dump to ``path``; returns the number of lines written."""
    lines = dump_lines(snapshot, spans, dropped_spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines)


def load_jsonl(path: str) -> dict:
    """Parse a dump back into ``{"meta": ..., "metrics": [...], "spans":
    [...], "profile": ...}`` (``profile`` is ``None`` unless the dumping
    process ran the sampling profiler)."""
    meta: dict = {"version": DUMP_VERSION, "dropped_spans": 0}
    metrics: list[dict] = []
    spans: list[dict] = []
    profile: dict | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            rec = json.loads(raw)
            kind = rec.pop("rec", None)
            if kind == "meta":
                meta = rec
            elif kind == "metric":
                metrics.append(rec)
            elif kind == "span":
                spans.append(rec)
            elif kind == "profile":
                profile = rec
            else:
                raise ValueError(f"unknown record type {kind!r} in {path}")
    return {"meta": meta, "metrics": metrics, "spans": spans, "profile": profile}
