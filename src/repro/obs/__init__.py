"""repro.obs — unified observability for the memo/pipeline/service/net tiers.

Public surface (the instrumentation verbs the rest of the repo uses)::

    from repro import obs

    obs.counter("memo_chunks_total", op="Fu1D", case="hit").inc()
    obs.gauge("queue_depth", queue="read").set(3)
    obs.histogram("net_client_request_seconds", type="query").observe(dt)
    with obs.span("sweep.Fu1D", chunk=i):
        ...

All of it is free while disabled (the default): enable with
``REPRO_OBS=1`` or ``MLRConfig(obs=ObsConfig(enabled=True))``.  Export
with :func:`to_prometheus` / :func:`dump_jsonl`; inspect dumps with
``python -m repro.obs report``.
"""

from .config import ObsConfig
from .export import dump_jsonl, dump_lines, load_jsonl, to_prometheus
from .registry import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_edges
from .report import build_report, merge_dumps, render_report, report_from_file
from .runtime import (
    collector,
    configure,
    counter,
    drain_spans,
    enabled,
    flight_dir,
    flight_dump,
    gauge,
    histogram,
    peek_spans,
    registry,
    reset,
    server_span,
    snapshot,
    span,
)
from .spans import (
    Span,
    SpanCollector,
    current_span_id,
    current_trace_context,
    current_trace_id,
)

__all__ = [
    "ObsConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_bucket_edges",
    "Span",
    "SpanCollector",
    "current_span_id",
    "current_trace_id",
    "current_trace_context",
    "configure",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "server_span",
    "registry",
    "collector",
    "snapshot",
    "drain_spans",
    "peek_spans",
    "flight_dir",
    "flight_dump",
    "reset",
    "to_prometheus",
    "dump_jsonl",
    "dump_lines",
    "load_jsonl",
    "build_report",
    "merge_dumps",
    "render_report",
    "report_from_file",
]
