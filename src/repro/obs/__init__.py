"""repro.obs — unified observability for the memo/pipeline/service/net tiers.

Public surface (the instrumentation verbs the rest of the repo uses)::

    from repro import obs

    obs.counter("memo_chunks_total", op="Fu1D", case="hit").inc()
    obs.gauge("queue_depth", queue="read").set(3)
    obs.histogram("net_client_request_seconds", type="query").observe(dt)
    with obs.span("sweep.Fu1D", chunk=i):
        ...

All of it is free while disabled (the default): enable with
``REPRO_OBS=1`` or ``MLRConfig(obs=ObsConfig(enabled=True))``.  Export
with :func:`to_prometheus` / :func:`dump_jsonl`; inspect dumps with
``python -m repro.obs report``.  The live telemetry plane —
:class:`~repro.obs.http.TelemetryServer` (``/metrics`` / ``/healthz`` /
``/readyz`` / ``/snapshot``), the span-attributed
:class:`~repro.obs.profiler.SamplingProfiler`, and the memo-tier heat
analytics (:mod:`repro.obs.heat`, ``python -m repro.obs heat`` /
``top``) — rides on the same registry.  ``http`` stays a lazy submodule
import here (it reaches into :mod:`repro.net` for address parsing, which
imports this package back).
"""

from .config import ObsConfig
from .export import dump_jsonl, dump_lines, load_jsonl, to_prometheus
from .profiler import SamplingProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_edges
from .report import (
    build_report,
    merge_dumps,
    render_profile,
    render_report,
    report_from_file,
)
from .runtime import (
    collector,
    configure,
    counter,
    drain_spans,
    enabled,
    flight_dir,
    flight_dump,
    gauge,
    histogram,
    peek_spans,
    profile_snapshot,
    profiler,
    registry,
    reset,
    server_span,
    snapshot,
    span,
    telemetry_server,
)
from .spans import (
    Span,
    SpanCollector,
    active_span_path,
    current_span_id,
    current_trace_context,
    current_trace_id,
)

__all__ = [
    "ObsConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_bucket_edges",
    "Span",
    "SpanCollector",
    "SamplingProfiler",
    "current_span_id",
    "current_trace_id",
    "current_trace_context",
    "active_span_path",
    "configure",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "server_span",
    "registry",
    "collector",
    "snapshot",
    "drain_spans",
    "peek_spans",
    "flight_dir",
    "flight_dump",
    "profiler",
    "profile_snapshot",
    "telemetry_server",
    "reset",
    "to_prometheus",
    "dump_jsonl",
    "dump_lines",
    "load_jsonl",
    "build_report",
    "merge_dumps",
    "render_report",
    "render_profile",
    "report_from_file",
]
