"""Per-stage latency / throughput report over a JSONL observability dump.

``python -m repro.obs report run.jsonl`` prints three tables:

- **spans** — per span name: count, total busy time, mean and exact
  p50/p95/p99 over the recorded durations,
- **histograms** — per metric series: count, mean, and bucket-resolution
  p50/p95/p99 (log-interpolated inside the containing bucket),
- **counters / gauges** — final values, e.g. per-op memo hit/miss
  breakdowns and queue high-water marks.

This is the artifact every perf PR tunes against: it turns one
end-to-end ``BENCH_perf.json`` number into a per-phase breakdown.
"""

from __future__ import annotations

from .export import load_jsonl
from .registry import _bucket_quantile

__all__ = ["build_report", "render_report", "report_from_file"]

_QUANTILES = (0.50, 0.95, 0.99)


def _exact_quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def _fmt_s(seconds: float) -> str:
    if seconds == 0.0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def build_report(data: dict) -> dict:
    """Aggregate a loaded dump into span / histogram / scalar tables."""
    by_name: dict[str, list[float]] = {}
    for rec in data["spans"]:
        by_name.setdefault(rec["name"], []).append(float(rec["dur_s"]))
    span_rows = []
    for name in sorted(by_name):
        durs = sorted(by_name[name])
        total = sum(durs)
        row = {
            "name": name,
            "count": len(durs),
            "total_s": total,
            "mean_s": total / len(durs),
        }
        for q in _QUANTILES:
            row[f"p{int(q * 100)}_s"] = _exact_quantile(durs, q)
        span_rows.append(row)

    hist_rows = []
    scalar_rows = []
    for entry in sorted(
        data["metrics"], key=lambda e: (e["name"], sorted(e.get("labels", {}).items()))
    ):
        labels = entry.get("labels", {})
        if entry["kind"] == "histogram":
            count = entry["count"]
            row = {
                "name": entry["name"],
                "labels": labels,
                "count": count,
                "mean_s": (entry["sum"] / count) if count else 0.0,
            }
            for q in _QUANTILES:
                row[f"p{int(q * 100)}_s"] = _bucket_quantile(
                    entry["edges"],
                    entry["counts"],
                    count,
                    entry.get("min", 0.0),
                    entry.get("max", 0.0),
                    q,
                )
            hist_rows.append(row)
        else:
            row = {
                "name": entry["name"],
                "labels": labels,
                "kind": entry["kind"],
                "value": entry["value"],
            }
            if entry["kind"] == "gauge":
                row["max"] = entry.get("max", entry["value"])
            scalar_rows.append(row)

    return {
        "meta": data.get("meta", {}),
        "spans": span_rows,
        "histograms": hist_rows,
        "scalars": scalar_rows,
    }


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return out


def render_report(report: dict) -> str:
    lines: list[str] = []
    dropped = report.get("meta", {}).get("dropped_spans", 0)
    if dropped:
        lines.append(f"warning: {dropped} spans dropped (ring buffer overflow)")
        lines.append("")

    if report["spans"]:
        lines.append("== spans (per-stage latency) ==")
        lines.extend(
            _table(
                ["name", "count", "total", "mean", "p50", "p95", "p99"],
                [
                    [
                        r["name"],
                        str(r["count"]),
                        _fmt_s(r["total_s"]),
                        _fmt_s(r["mean_s"]),
                        _fmt_s(r["p50_s"]),
                        _fmt_s(r["p95_s"]),
                        _fmt_s(r["p99_s"]),
                    ]
                    for r in report["spans"]
                ],
            )
        )
        lines.append("")

    if report["histograms"]:
        lines.append("== histograms ==")
        lines.extend(
            _table(
                ["name", "labels", "count", "mean", "p50", "p95", "p99"],
                [
                    [
                        r["name"],
                        _fmt_labels(r["labels"]),
                        str(r["count"]),
                        _fmt_s(r["mean_s"]),
                        _fmt_s(r["p50_s"]),
                        _fmt_s(r["p95_s"]),
                        _fmt_s(r["p99_s"]),
                    ]
                    for r in report["histograms"]
                ],
            )
        )
        lines.append("")

    if report["scalars"]:
        lines.append("== counters / gauges ==")
        rows = []
        for r in report["scalars"]:
            value = f"{r['value']:g}"
            if r["kind"] == "gauge" and r.get("max", r["value"]) != r["value"]:
                value += f" (max {r['max']:g})"
            rows.append([r["name"], _fmt_labels(r["labels"]), r["kind"], value])
        lines.extend(_table(["name", "labels", "kind", "value"], rows))
        lines.append("")

    if len(lines) == 0:
        lines.append("(empty dump: no spans or metrics recorded)")
    return "\n".join(lines).rstrip() + "\n"


def report_from_file(path: str) -> str:
    return render_report(build_report(load_jsonl(path)))
