"""Per-stage latency / throughput report over JSONL observability dumps.

``python -m repro.obs report run.jsonl [server.jsonl ...]`` merges any
number of dumps (one per process: a solver run's local dump plus the
``--trace-dump`` of each memo daemon) and prints:

- **trace tree** — the stitched cross-process span tree: spans are linked
  by ``parent_id`` / ``trace_id`` across dumps, aggregated by name path,
  and indented by depth, so a ``solver.reconstruct`` root shows its
  ``net_client.request`` children and *their* ``net_server.request`` /
  ``net_server.shard`` children from the daemon's dump,
- **wire hops** — per request type: the client-side round trip minus the
  matched server-side handler time = wire + queue cost of the hop,
- **spans** — per span name: count, total busy time, mean and exact
  p50/p95/p99 over the recorded durations,
- **histograms** — per metric series: count, mean, and bucket-resolution
  p50/p95/p99 (log-interpolated inside the containing bucket),
- **counters / gauges** — final values, e.g. per-op memo hit/miss
  breakdowns and queue high-water marks.

This is the artifact every perf PR tunes against: it turns one
end-to-end ``BENCH_perf.json`` number into a per-phase breakdown.
"""

from __future__ import annotations

from .export import DUMP_VERSION, load_jsonl
from .registry import _bucket_quantile

__all__ = [
    "build_report",
    "build_trace",
    "merge_dumps",
    "render_profile",
    "render_report",
    "report_from_file",
]

_QUANTILES = (0.50, 0.95, 0.99)


def _exact_quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def _fmt_s(seconds: float) -> str:
    if seconds == 0.0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def merge_dumps(datas) -> dict:
    """Concatenate loaded dumps (one per process) into one dataset.

    Metrics and spans are plain concatenations — metric entries from
    different processes are distinguishable by their labels (and span
    records by their ``proc`` field), so no keyed merge is needed.  Drop
    counts sum."""
    datas = list(datas)
    merged = {
        "meta": {
            "version": DUMP_VERSION,
            "dropped_spans": 0,
            "merged_dumps": len(datas),
        },
        "metrics": [],
        "spans": [],
        "profile": None,
    }
    for data in datas:
        meta = data.get("meta") or {}
        merged["meta"]["dropped_spans"] += int(meta.get("dropped_spans") or 0)
        merged["metrics"].extend(data.get("metrics") or [])
        merged["spans"].extend(data.get("spans") or [])
        # profiles are per-process samplers; keep the first one recorded
        if merged["profile"] is None:
            merged["profile"] = data.get("profile")
    return merged


# -- cross-process trace stitching ----------------------------------------------------------


def build_trace(spans: list[dict]) -> dict | None:
    """Stitch span records (possibly from several processes) into the
    aggregated trace tree plus the per-hop wire-cost tables.

    Spans link by ``parent_id``: a server handler span carries the client
    request span's id there (it rode the request frame), so once both
    dumps are merged the walk crosses the process boundary like any other
    edge.  Aggregation is by *name path* — every span with the same chain
    of ancestor names lands in one row — which keeps the tree readable at
    any span count.  Returns ``None`` for pre-trace dumps (no span ids).
    """
    by_id: dict[int, dict] = {}
    for rec in spans:
        sid = rec.get("span_id")
        if isinstance(sid, int):
            by_id[sid] = rec
    if not by_id:
        return None

    paths: dict[int, tuple[str, ...]] = {}
    orphans = 0

    def path_of(sid: int) -> tuple[str, ...]:
        nonlocal orphans
        # iterative walk with memoization; a cycle (corrupt dump) or a
        # missing parent (its dump wasn't merged in) roots the chain there
        chain: list[int] = []
        cur: int | None = sid
        base: tuple[str, ...] = ()
        seen: set[int] = set()
        while cur is not None:
            if cur in paths:
                base = paths[cur]
                break
            if cur in seen:
                break  # cycle guard
            seen.add(cur)
            rec = by_id.get(cur)
            if rec is None:
                break
            chain.append(cur)
            parent = rec.get("parent_id")
            if parent is not None and parent not in by_id:
                orphans += 1  # parent span lost (ring overflow / not pulled)
                parent = None
            cur = parent
        for node in reversed(chain):
            base = base + (str(by_id[node].get("name", "?")),)
            paths[node] = base
        return paths[sid]

    rows: dict[tuple[str, ...], dict] = {}
    traces: set[int] = set()
    procs: set[str] = set()
    errors = 0
    for sid, rec in by_id.items():
        path = path_of(sid)
        dur = float(rec.get("dur_s") or 0.0)
        row = rows.setdefault(
            path,
            {"path": path, "count": 0, "total_s": 0.0, "procs": set(), "errors": 0},
        )
        row["count"] += 1
        row["total_s"] += dur
        if rec.get("proc"):
            row["procs"].add(str(rec["proc"]))
            procs.add(str(rec["proc"]))
        if rec.get("error"):
            row["errors"] += 1
            errors += 1
        if isinstance(rec.get("trace_id"), int):
            traces.add(rec["trace_id"])

    tree = []
    for path in sorted(rows):
        row = rows[path]
        tree.append(
            {
                "path": list(path),
                "name": path[-1],
                "depth": len(path) - 1,
                "count": row["count"],
                "total_s": row["total_s"],
                "mean_s": row["total_s"] / row["count"],
                "procs": sorted(row["procs"]),
                "errors": row["errors"],
            }
        )

    # per-hop wire cost: a server handler span whose parent is a client
    # request span measures the same logical request from the other side
    # of the wire — the difference is time spent on the wire + in queues
    hop_acc: dict[str, dict] = {}
    for rec in by_id.values():
        if rec.get("name") != "net_server.request":
            continue
        parent = by_id.get(rec.get("parent_id"))
        if parent is None or parent.get("name") != "net_client.request":
            continue
        rtype = str((rec.get("attrs") or {}).get("type", "?"))
        client_s = float(parent.get("dur_s") or 0.0)
        server_s = float(rec.get("dur_s") or 0.0)
        acc = hop_acc.setdefault(
            rtype, {"type": rtype, "count": 0, "client_s": 0.0, "server_s": 0.0}
        )
        acc["count"] += 1
        acc["client_s"] += client_s
        acc["server_s"] += server_s
    hops = []
    for rtype in sorted(hop_acc):
        acc = hop_acc[rtype]
        n = acc["count"]
        client_mean = acc["client_s"] / n
        server_mean = acc["server_s"] / n
        hops.append(
            {
                "type": rtype,
                "count": n,
                "client_mean_s": client_mean,
                "server_mean_s": server_mean,
                # pipelined sends close their client span before the server
                # replies, so the subtraction can go negative: floor at 0
                "wire_mean_s": max(0.0, client_mean - server_mean),
            }
        )

    shard_acc: dict[str, dict] = {}
    for rec in by_id.values():
        if rec.get("name") != "net_server.shard":
            continue
        shard = str((rec.get("attrs") or {}).get("shard", "?"))
        acc = shard_acc.setdefault(shard, {"shard": shard, "count": 0, "total_s": 0.0})
        acc["count"] += 1
        acc["total_s"] += float(rec.get("dur_s") or 0.0)
    shards = []
    for shard in sorted(shard_acc):
        acc = shard_acc[shard]
        shards.append(
            {
                "shard": shard,
                "count": acc["count"],
                "total_s": acc["total_s"],
                "mean_s": acc["total_s"] / acc["count"],
            }
        )

    return {
        "traces": len(traces),
        "procs": len(procs),
        "orphans": orphans,
        "errors": errors,
        "tree": tree,
        "hops": hops,
        "shards": shards,
    }


def build_report(data: dict) -> dict:
    """Aggregate a loaded dump into span / histogram / scalar tables."""
    by_name: dict[str, list[float]] = {}
    for rec in data["spans"]:
        by_name.setdefault(rec["name"], []).append(float(rec["dur_s"]))
    span_rows = []
    for name in sorted(by_name):
        durs = sorted(by_name[name])
        total = sum(durs)
        row = {
            "name": name,
            "count": len(durs),
            "total_s": total,
            "mean_s": total / len(durs),
        }
        for q in _QUANTILES:
            row[f"p{int(q * 100)}_s"] = _exact_quantile(durs, q)
        span_rows.append(row)

    hist_rows = []
    scalar_rows = []
    for entry in sorted(
        data["metrics"], key=lambda e: (e["name"], sorted(e.get("labels", {}).items()))
    ):
        labels = entry.get("labels", {})
        if entry["kind"] == "histogram":
            count = entry["count"]
            row = {
                "name": entry["name"],
                "labels": labels,
                "count": count,
                "mean_s": (entry["sum"] / count) if count else 0.0,
            }
            for q in _QUANTILES:
                row[f"p{int(q * 100)}_s"] = _bucket_quantile(
                    entry["edges"],
                    entry["counts"],
                    count,
                    entry.get("min", 0.0),
                    entry.get("max", 0.0),
                    q,
                )
            hist_rows.append(row)
        else:
            row = {
                "name": entry["name"],
                "labels": labels,
                "kind": entry["kind"],
                "value": entry["value"],
            }
            if entry["kind"] == "gauge":
                row["max"] = entry.get("max", entry["value"])
            scalar_rows.append(row)

    return {
        "meta": data.get("meta", {}),
        "trace": build_trace(data["spans"]),
        "spans": span_rows,
        "histograms": hist_rows,
        "scalars": scalar_rows,
        "profile": data.get("profile"),
    }


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return out


def render_profile(profile: dict) -> list[str]:
    """The sampling profiler's self-time table: top buckets by weight plus
    the span-attribution fraction (the health number for instrumentation
    coverage — unattributed ``frame:`` rows are spans waiting to exist)."""
    total = max(int(profile.get("samples") or 0), 1)
    rows = []
    for r in (profile.get("buckets") or [])[:24]:
        rows.append(
            [
                r["kind"],
                r["name"],
                str(r["samples"]),
                _fmt_s(float(r["self_s"])),
                f"{100.0 * r['samples'] / total:.1f}%",
            ]
        )
    lines = [
        "== profile (sampled self-time, "
        f"{profile.get('hz', 0):g} Hz, {profile.get('samples', 0)} samples, "
        f"{100.0 * float(profile.get('span_fraction') or 0.0):.0f}% "
        "span-attributed) ==",
    ]
    if rows:
        lines.extend(_table(["kind", "bucket", "samples", "self", "share"], rows))
    else:
        lines.append("(no samples recorded)")
    return lines


def render_report(report: dict, include_profile: bool = False) -> str:
    lines: list[str] = []
    dropped = report.get("meta", {}).get("dropped_spans", 0)
    if dropped:
        lines.append(f"warning: {dropped} spans dropped (ring buffer overflow)")
        lines.append("")

    trace = report.get("trace")
    if trace and trace["tree"]:
        header = (
            f"== trace tree ({trace['traces']} traces, "
            f"{trace['procs']} processes"
        )
        if trace["orphans"]:
            header += f", {trace['orphans']} orphaned spans"
        if trace["errors"]:
            header += f", {trace['errors']} errored spans"
        lines.append(header + ") ==")
        lines.extend(
            _table(
                ["span", "count", "total", "mean", "procs"],
                [
                    [
                        "  " * r["depth"] + r["name"],
                        str(r["count"]),
                        _fmt_s(r["total_s"]),
                        _fmt_s(r["mean_s"]),
                        ",".join(r["procs"]) or "-",
                    ]
                    for r in trace["tree"]
                ],
            )
        )
        lines.append("")

    if trace and trace["hops"]:
        lines.append("== wire hops (client round trip - server handler = wire+queue) ==")
        lines.extend(
            _table(
                ["type", "count", "client mean", "server mean", "wire mean"],
                [
                    [
                        r["type"],
                        str(r["count"]),
                        _fmt_s(r["client_mean_s"]),
                        _fmt_s(r["server_mean_s"]),
                        _fmt_s(r["wire_mean_s"]),
                    ]
                    for r in trace["hops"]
                ],
            )
        )
        lines.append("")

    if trace and trace["shards"]:
        lines.append("== server shards ==")
        lines.extend(
            _table(
                ["shard", "count", "total", "mean"],
                [
                    [
                        r["shard"],
                        str(r["count"]),
                        _fmt_s(r["total_s"]),
                        _fmt_s(r["mean_s"]),
                    ]
                    for r in trace["shards"]
                ],
            )
        )
        lines.append("")

    if report["spans"]:
        lines.append("== spans (per-stage latency) ==")
        lines.extend(
            _table(
                ["name", "count", "total", "mean", "p50", "p95", "p99"],
                [
                    [
                        r["name"],
                        str(r["count"]),
                        _fmt_s(r["total_s"]),
                        _fmt_s(r["mean_s"]),
                        _fmt_s(r["p50_s"]),
                        _fmt_s(r["p95_s"]),
                        _fmt_s(r["p99_s"]),
                    ]
                    for r in report["spans"]
                ],
            )
        )
        lines.append("")

    if report["histograms"]:
        lines.append("== histograms ==")
        lines.extend(
            _table(
                ["name", "labels", "count", "mean", "p50", "p95", "p99"],
                [
                    [
                        r["name"],
                        _fmt_labels(r["labels"]),
                        str(r["count"]),
                        _fmt_s(r["mean_s"]),
                        _fmt_s(r["p50_s"]),
                        _fmt_s(r["p95_s"]),
                        _fmt_s(r["p99_s"]),
                    ]
                    for r in report["histograms"]
                ],
            )
        )
        lines.append("")

    if report["scalars"]:
        lines.append("== counters / gauges ==")
        rows = []
        for r in report["scalars"]:
            value = f"{r['value']:g}"
            if r["kind"] == "gauge" and r.get("max", r["value"]) != r["value"]:
                value += f" (max {r['max']:g})"
            rows.append([r["name"], _fmt_labels(r["labels"]), r["kind"], value])
        lines.extend(_table(["name", "labels", "kind", "value"], rows))
        lines.append("")

    if include_profile:
        profile = report.get("profile")
        if profile:
            lines.extend(render_profile(profile))
        else:
            lines.append("(no profile records in this dump — run with "
                         "ObsConfig(profile_hz=...) or REPRO_OBS_PROFILE_HZ)")
        lines.append("")

    if len(lines) == 0:
        lines.append("(empty dump: no spans or metrics recorded)")
    return "\n".join(lines).rstrip() + "\n"


def report_from_file(*paths: str) -> str:
    """Render the report for one dump, or the stitched report of several
    (e.g. a run's local dump plus each daemon's ``--trace-dump``)."""
    if len(paths) == 1:
        data = load_jsonl(paths[0])
    else:
        data = merge_dumps(load_jsonl(p) for p in paths)
    return render_report(build_report(data))
