"""Memo-tier heat analytics: per-entry last-hit/hit-count roll-ups.

The value stores track per-entry heat metadata (``KVStore._heat``:
last-hit tick + hit count, persisted through ``state_dict``/snapshots and
merged on absorb).  This module turns that raw metadata into the views the
eviction work (ROADMAP) and capacity planning act on:

- :func:`entry_records` — flatten a memo-state tree (snapshot, wire pull,
  or live shard walk) into per-entry ``{op, shard, location, last, hits,
  nbytes}`` records,
- :func:`build_heat_report` / :func:`render_heat_report` — hit
  distribution by op, by shard and by age decile, the cold-entry fraction,
  and the projected bytes reclaimable at a staleness cutoff
  (``python -m repro.obs heat <snapshot-or-host:port>``),
- :func:`age_histogram_entries` — ``memo_entry_age_seconds`` histogram
  entries in registry-snapshot format, computed *fresh* per scrape (ages
  move with the clock, so they must never accumulate into a cumulative
  histogram) for the ``/metrics`` telemetry endpoint.
"""

from __future__ import annotations

import time

from .registry import log_bucket_edges
from .report import _fmt_s, _table

__all__ = [
    "entry_records",
    "entry_records_from_store",
    "age_histogram_entries",
    "build_heat_report",
    "render_heat_report",
]

#: age bucket edges for memo_entry_age_seconds: one per decade from 1s to
#: ~11 days; entries older than the last edge land in the +Inf bucket
AGE_EDGES = log_bucket_edges(1.0, 1e6, 1)


def _value_nbytes(store_type: str, value) -> int:
    if store_type == "array":
        from ..kvstore.serialization import encoded_nbytes

        return int(encoded_nbytes(value))
    return len(value)


def _records_from_values_state(vals_state: dict, op: str, shard: int, loc: int):
    keys = vals_state.get("keys") or []
    values = vals_state.get("vals") or []
    heat_last = vals_state.get("heat_last") or [0.0] * len(keys)
    heat_hits = vals_state.get("heat_hits") or [0] * len(keys)
    store_type = str(vals_state.get("store_type", "bytes"))
    for value, last, hits in zip(values, heat_last, heat_hits):
        yield {
            "op": op,
            "shard": shard,
            "location": loc,
            "last": float(last),
            "hits": int(hits),
            "nbytes": _value_nbytes(store_type, value),
        }


def entry_records(tree: dict) -> list[dict]:
    """Per-entry heat records for every partition of a memo-state tree
    (either layout; shard attribution kept for sharded trees, single-layout
    partitions count as shard 0).  Pre-heat-schema partitions yield
    all-cold records rather than failing."""
    if not isinstance(tree, dict) or "layout" not in tree:
        raise ValueError("not a memo-state tree (missing 'layout')")
    if tree.get("layout") == "sharded":
        groups = [
            (int(s.get("shard_id", i)), s.get("partitions") or [])
            for i, s in enumerate(tree.get("shards") or [])
        ]
    else:
        groups = [(0, tree.get("partitions") or [])]
    records: list[dict] = []
    for shard, parts in groups:
        for part in parts:
            vals = (part.get("db") or {}).get("values") or {}
            records.extend(
                _records_from_values_state(
                    vals, str(part["op"]), shard, int(part["location"])
                )
            )
    return records


def entry_records_from_store(store, op: str, shard: int, location: int) -> list[dict]:
    """Heat records straight off a live value store (no state_dict copy) —
    what the daemon's telemetry hook walks, on the shard's own worker
    thread so the store is quiesced."""
    return [
        {
            "op": op,
            "shard": shard,
            "location": location,
            "last": float(last),
            "hits": int(hits),
            "nbytes": int(nbytes),
        }
        for _key, last, hits, nbytes in store.heat_entries()
    ]


def age_histogram_entries(records: list[dict], now: float | None = None) -> list[dict]:
    """``memo_entry_age_seconds`` histogram entries (registry-snapshot
    format, one per ``(op, shard)``) over per-entry time-since-last-hit.
    Recomputed from scratch at every call: ages are a function of *now*,
    so a scrape-time histogram is the only honest representation."""
    if now is None:
        now = time.time()
    by_series: dict[tuple[str, int], list[float]] = {}
    for rec in records:
        age = max(0.0, now - rec["last"])
        by_series.setdefault((rec["op"], rec["shard"]), []).append(age)
    entries = []
    for (op, shard), ages in sorted(by_series.items()):
        counts = [0] * len(AGE_EDGES)
        for age in ages:
            for i, edge in enumerate(AGE_EDGES):
                if age <= edge:
                    counts[i] += 1
                    break
        entries.append(
            {
                "kind": "histogram",
                "name": "memo_entry_age_seconds",
                "labels": {"op": op, "shard": str(shard)},
                "edges": list(AGE_EDGES),
                "counts": counts,
                "count": len(ages),
                "sum": float(sum(ages)),
                "min": float(min(ages)),
                "max": float(max(ages)),
            }
        )
    return entries


def _group_rows(records: list[dict], key: str, now: float, stale_after: float):
    groups: dict = {}
    for rec in records:
        g = groups.setdefault(
            rec[key],
            {key: rec[key], "entries": 0, "hits": 0, "cold": 0,
             "nbytes": 0, "reclaimable": 0},
        )
        g["entries"] += 1
        g["hits"] += rec["hits"]
        g["nbytes"] += rec["nbytes"]
        if rec["hits"] == 0:
            g["cold"] += 1
        if now - rec["last"] >= stale_after:
            g["reclaimable"] += rec["nbytes"]
    return [groups[k] for k in sorted(groups)]


def build_heat_report(
    records: list[dict],
    now: float | None = None,
    stale_after: float = 3600.0,
) -> dict:
    """Aggregate per-entry heat records into the eviction-planning report.

    ``stale_after`` (seconds since last hit) is the staleness cutoff for
    the projected-reclaimable-bytes number: the bytes an eviction pass with
    that cutoff would free, recounted from the per-entry metadata."""
    if now is None:
        now = time.time()
    if stale_after <= 0:
        raise ValueError(f"stale_after must be positive, got {stale_after}")
    total_entries = len(records)
    total_bytes = sum(r["nbytes"] for r in records)
    total_hits = sum(r["hits"] for r in records)
    cold = sum(1 for r in records if r["hits"] == 0)
    reclaimable = sum(
        r["nbytes"] for r in records if now - r["last"] >= stale_after
    )

    # age deciles: entries ranked by age, split into 10 equal-count bands —
    # "is the hit mass concentrated in the young tail?" at a glance
    deciles = []
    if records:
        ranked = sorted(records, key=lambda r: now - r["last"])
        n = len(ranked)
        for d in range(10):
            lo, hi = (d * n) // 10, ((d + 1) * n) // 10
            band = ranked[lo:hi]
            if not band:
                continue
            deciles.append(
                {
                    "decile": d + 1,
                    "age_min_s": now - band[0]["last"],
                    "age_max_s": now - band[-1]["last"],
                    "entries": len(band),
                    "hits": sum(r["hits"] for r in band),
                    "nbytes": sum(r["nbytes"] for r in band),
                }
            )

    return {
        "now": now,
        "stale_after_s": stale_after,
        "entries": total_entries,
        "hits": total_hits,
        "nbytes": total_bytes,
        "cold_entries": cold,
        "cold_fraction": (cold / total_entries) if total_entries else 0.0,
        "reclaimable_bytes": reclaimable,
        "by_op": _group_rows(records, "op", now, stale_after),
        "by_shard": _group_rows(records, "shard", now, stale_after),
        "age_deciles": deciles,
    }


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"


def render_heat_report(report: dict) -> str:
    lines = [
        f"== memo tier heat ({report['entries']} entries, "
        f"{_fmt_bytes(report['nbytes'])}, {report['hits']} hits) ==",
        f"cold entries (never hit): {report['cold_entries']} "
        f"({100.0 * report['cold_fraction']:.1f}%)",
        f"projected reclaimable at staleness >= "
        f"{_fmt_s(report['stale_after_s'])}: "
        f"{_fmt_bytes(report['reclaimable_bytes'])}",
        "",
    ]
    if report["by_op"]:
        lines.append("== by op ==")
        lines.extend(
            _table(
                ["op", "entries", "hits", "cold", "bytes", "reclaimable"],
                [
                    [str(g["op"]), str(g["entries"]), str(g["hits"]),
                     str(g["cold"]), _fmt_bytes(g["nbytes"]),
                     _fmt_bytes(g["reclaimable"])]
                    for g in report["by_op"]
                ],
            )
        )
        lines.append("")
    if report["by_shard"]:
        lines.append("== by shard ==")
        lines.extend(
            _table(
                ["shard", "entries", "hits", "cold", "bytes", "reclaimable"],
                [
                    [str(g["shard"]), str(g["entries"]), str(g["hits"]),
                     str(g["cold"]), _fmt_bytes(g["nbytes"]),
                     _fmt_bytes(g["reclaimable"])]
                    for g in report["by_shard"]
                ],
            )
        )
        lines.append("")
    if report["age_deciles"]:
        lines.append("== hit distribution by age decile (youngest first) ==")
        lines.extend(
            _table(
                ["decile", "age range", "entries", "hits", "bytes"],
                [
                    [str(d["decile"]),
                     f"{_fmt_s(d['age_min_s'])}..{_fmt_s(d['age_max_s'])}",
                     str(d["entries"]), str(d["hits"]), _fmt_bytes(d["nbytes"])]
                    for d in report["age_deciles"]
                ],
            )
        )
        lines.append("")
    if not report["entries"]:
        lines.append("(tier is empty)")
    return "\n".join(lines).rstrip() + "\n"
