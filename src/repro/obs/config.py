"""Observability configuration (the ``MLRConfig(obs=...)`` knob).

:class:`ObsConfig` is a plain dataclass with no dependencies so every
layer — config, solver, net daemon, CLI — can carry one without pulling
the rest of the package in.  Passing it to
:func:`repro.obs.runtime.configure` (which :class:`~repro.core.mlr_solver.MLRSolver`
does when ``MLRConfig.obs`` is set) switches the process-wide runtime;
the ``REPRO_OBS=1`` environment variable is the zero-code equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig"]


@dataclass
class ObsConfig:
    """Process-wide observability knobs.

    enabled:
        Master switch.  While off, every instrumentation site costs one
        dict lookup and allocates nothing: ``counter()`` / ``gauge()`` /
        ``histogram()`` return a shared null metric (no registry entry is
        created) and ``span()`` returns a shared no-op context manager.
    span_buffer:
        Capacity of each thread's span ring buffer.  Finished spans beyond
        the capacity overwrite the oldest ones (the drop is counted and
        reported), so tracing never grows memory without bound.
    histogram_min_s / histogram_max_s / buckets_per_decade:
        The fixed log-spaced latency bucket grid shared by every duration
        histogram: ``buckets_per_decade`` edges per decade from
        ``histogram_min_s`` up to ``histogram_max_s``.  Fixed buckets (no
        raw sample lists) keep per-metric memory constant regardless of
        traffic.
    flight_dir:
        Directory for black-box flight-recorder dumps
        (:func:`repro.obs.runtime.flight_dump` artifacts, written on job
        failure / snapshot quarantine / circuit-breaker open).  ``None``
        falls back to the ``REPRO_FLIGHT_DIR`` environment variable; with
        neither set, fault paths skip the dump entirely.
    http_port / http_host:
        With ``http_port`` set (and the runtime enabled), the runtime
        starts a :class:`~repro.obs.http.TelemetryServer` on
        ``http_host:http_port`` serving ``/metrics``, ``/healthz``,
        ``/readyz`` and ``/snapshot`` for this process (port 0 binds
        ephemerally — read it back via
        :func:`repro.obs.runtime.telemetry_server`).  The zero-code
        equivalent is ``REPRO_OBS_HTTP=<port>`` in the environment, which
        also implies ``REPRO_OBS=1``.
    profile_hz:
        Sampling rate of the span-attributed profiler
        (:class:`~repro.obs.profiler.SamplingProfiler`); 0 (default) means
        no profiler thread at all.  ``REPRO_OBS_PROFILE_HZ=<hz>`` is the
        environment route.
    """

    enabled: bool = True
    span_buffer: int = 4096
    histogram_min_s: float = 1e-6
    histogram_max_s: float = 100.0
    buckets_per_decade: int = 4
    flight_dir: str | None = None
    http_port: int | None = None
    http_host: str = "127.0.0.1"
    profile_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.http_port is not None and not (0 <= self.http_port <= 65535):
            raise ValueError(
                f"http_port must be in [0, 65535] or None, got {self.http_port}"
            )
        if not (0.0 <= self.profile_hz <= 1000.0):
            raise ValueError(
                f"profile_hz must be in [0, 1000], got {self.profile_hz}"
            )
        if self.span_buffer < 1:
            raise ValueError(f"span_buffer must be >= 1, got {self.span_buffer}")
        if not (0.0 < self.histogram_min_s < self.histogram_max_s):
            raise ValueError(
                "need 0 < histogram_min_s < histogram_max_s, got "
                f"{self.histogram_min_s} / {self.histogram_max_s}"
            )
        if self.buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {self.buckets_per_decade}"
            )
