"""Span-attributed sampling profiler: where wall-time actually goes.

A daemon thread samples every Python thread's stack at a configurable rate
(``sys._current_frames()``) and bills each sample to the sampled thread's
currently-open span name path (:func:`repro.obs.spans.active_span_path`) —
so the output reads in the same vocabulary as the trace reports
("solver.reconstruct/admm.outer/sweep.Fu1D: 42% of self-time") instead of
file:line frames.  Samples from threads with no open span are classified
by their top frame: parked-in-the-stdlib threads (lock waits, selectors,
queue gets) and the repo's own blocking accept/read loops count as
``idle``, anything else as an unattributed ``frame:<module>.<function>``
bucket — the signal that an expensive code path is missing a span.

Zero overhead when not running: nothing samples, nothing allocates; span
enter/exit costs one list append/pop either way.  Start it with
``ObsConfig(profile_hz=...)`` / ``REPRO_OBS_PROFILE_HZ`` (the runtime owns
the lifecycle) or drive a :class:`SamplingProfiler` directly in tests.
"""

from __future__ import annotations

import os
import sys
import sysconfig
import threading

from .spans import active_span_path

__all__ = ["SamplingProfiler"]

#: stdlib location — a thread whose top frame lives here is parked in a
#: wait primitive (Condition.wait, selector poll, queue get), not burning
#: CPU in repo code
_STDLIB_DIR = sysconfig.get_paths().get("stdlib") or os.path.dirname(
    threading.__file__
)

#: top-frame function names of this repo's own blocking loops: threads
#: sitting in a socket accept/recv or a poll sleep are idle capacity, not
#: unattributed work
_IDLE_CO_NAMES = frozenset(
    {"_accept_loop", "_fill", "_snapshot_loop", "_health_loop", "_sample_loop"}
)


def _classify(frame) -> tuple[str, str]:
    """(kind, bucket) for one sampled frame of a span-less thread."""
    code = frame.f_code
    if code.co_name in _IDLE_CO_NAMES or code.co_filename.startswith(_STDLIB_DIR):
        return "idle", code.co_name
    module = os.path.splitext(os.path.basename(code.co_filename))[0]
    return "other", f"frame:{module}.{code.co_name}"


class SamplingProfiler:
    """Bounded-memory stack sampler billing self-time to open spans.

    ``snapshot()`` is the read surface: per-bucket sample counts and
    estimated seconds, plus the span-attribution fraction (samples billed
    to a named span over all non-idle samples) — the number the acceptance
    gate checks.
    """

    def __init__(self, hz: float = 67.0, max_buckets: int = 512) -> None:
        if not (0.0 < hz <= 1000.0):
            raise ValueError(f"hz must be in (0, 1000], got {hz}")
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self.hz = float(hz)
        self.max_buckets = max_buckets
        self._lock = threading.Lock()
        self._buckets: dict[tuple[str, str], int] = {}  # guarded-by: self._lock
        self._samples = 0  # guarded-by: self._lock
        self._ticks = 0  # guarded-by: self._lock
        self._overflowed = 0  # guarded-by: self._lock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------------------

    def _sample_loop(self) -> None:
        own = threading.get_ident()
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            ticked: list[tuple[str, str]] = []
            for ident, frame in frames.items():
                if ident == own:
                    continue
                path = active_span_path(ident)
                if path is not None:
                    ticked.append(("span", path))
                else:
                    ticked.append(_classify(frame))
            with self._lock:
                self._ticks += 1
                for bucket in ticked:
                    if bucket not in self._buckets and len(self._buckets) >= self.max_buckets:
                        bucket = (bucket[0], "(overflow)")
                        self._overflowed += 1
                    self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
                    self._samples += 1

    # -- read surface --------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Aggregated profile: ``buckets`` sorted by weight, each with its
        kind (``span`` / ``idle`` / ``other``), sample count and estimated
        self-seconds; ``span_fraction`` is span-billed over non-idle."""
        with self._lock:
            buckets = dict(self._buckets)
            samples = self._samples
            ticks = self._ticks
            overflowed = self._overflowed
        interval = 1.0 / self.hz
        rows = [
            {
                "kind": kind,
                "name": name,
                "samples": count,
                "self_s": count * interval,
            }
            for (kind, name), count in buckets.items()
        ]
        rows.sort(key=lambda r: (-r["samples"], r["kind"], r["name"]))
        span_n = sum(r["samples"] for r in rows if r["kind"] == "span")
        other_n = sum(r["samples"] for r in rows if r["kind"] == "other")
        attributable = span_n + other_n
        return {
            "hz": self.hz,
            "ticks": ticks,
            "samples": samples,
            "overflowed": overflowed,
            "span_fraction": (span_n / attributable) if attributable else 1.0,
            "buckets": rows,
        }
