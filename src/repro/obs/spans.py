"""Lightweight trace spans: monotonic timing, contextvars parentage,
per-thread ring buffers.

A span is one timed region (``with span("sweep.Fu1D", chunk=i):``).  Start
and stop come from ``time.monotonic()`` so durations survive wall-clock
adjustment; the parent relationship rides a :mod:`contextvars` variable, so
it follows the logical flow of control — including into pipeline stage
threads, which enter a copy of the launching thread's context (see
:class:`~repro.pipeline.pipeline.ChunkPipeline`).

Spans form **traces**: the outermost span of a context mints a trace id
that every descendant span inherits, and both ids are designed to survive
being stitched *across processes* — span ids are salted with 31 random
per-process bits, so a server-side span recorded in the daemon can name a
client-side span as its parent (carried over the wire, see
:func:`repro.obs.runtime.server_span`) without id collisions cross-wiring
the merged tree.

Finished spans land in the *recording thread's* ring buffer: appends never
contend across threads (each ring's lock is only shared with the exporter
that drains it), and memory is bounded — a ring overwrites its oldest
record and counts the drop.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
import uuid

__all__ = [
    "SpanCollector",
    "Span",
    "current_span_id",
    "current_trace_id",
    "current_trace_context",
    "active_span_path",
    "active_thread_ids",
    "PROC_TAG",
]

#: id of the innermost open span in this logical context (None at top level)
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: trace id of the enclosing trace (minted by the outermost open span)
_TRACE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_trace", default=None
)

_IDS = itertools.count(1)  # CPython-atomic id source shared by all threads

#: 31 random bits distinguishing this process's span ids from every other
#: process contributing records to one stitched trace
_PROC_SALT = uuid.uuid4().int & 0x7FFF_FFFF

#: provenance tag stamped on every record, so a merged report can say
#: which process a span came from
PROC_TAG = f"{os.getpid()}-{_PROC_SALT:08x}"


def _new_span_id() -> int:
    # salt << 32 | counter stays inside the wire's positive-i64 range
    return (_PROC_SALT << 32) | next(_IDS)


#: per-OS-thread stack of open span names, keyed by thread ident — the
#: sampling profiler's attribution surface.  Unlike the contextvars above
#: (which follow *logical* flow into pipeline stage threads), this tracks
#: which spans are open on each *physical* thread, which is what a stack
#: sample of that thread should be billed to.  Mutated only by Span
#: enter/exit on the owning thread; the profiler reads it cross-thread
#: without locks — list append/pop and dict item assignment are atomic
#: under the GIL, and a torn read merely misattributes one sample.
_THREAD_SPANS: dict[int, list] = {}


def _push_thread_span(name: str) -> None:
    ident = threading.get_ident()
    stack = _THREAD_SPANS.get(ident)
    if stack is None:
        stack = _THREAD_SPANS[ident] = []
    stack.append(name)


def _pop_thread_span() -> None:
    ident = threading.get_ident()
    stack = _THREAD_SPANS.get(ident)
    if stack:
        stack.pop()
        if not stack:
            # drop empty stacks so dead threads don't accumulate entries
            _THREAD_SPANS.pop(ident, None)


def active_span_path(thread_ident: int) -> str | None:
    """``"outer/inner"`` name path of the spans currently open on an OS
    thread, or ``None`` when that thread has none — how the profiler bills
    a stack sample.  Best-effort by design: a sample racing an enter/exit
    lands on either side of it."""
    stack = _THREAD_SPANS.get(thread_ident)
    if not stack:
        return None
    return "/".join(stack[:8])


def active_thread_ids() -> list[int]:
    """Thread idents that currently have (or ever had) open spans."""
    return [ident for ident, stack in list(_THREAD_SPANS.items()) if stack]


def _new_trace_id() -> int:
    return uuid.uuid4().int & 0x7FFF_FFFF_FFFF_FFFF


def current_span_id() -> int | None:
    """The innermost open span's id in this context, if any."""
    return _CURRENT.get()


def current_trace_id() -> int | None:
    """The enclosing trace's id in this context, if any."""
    return _TRACE.get()


def current_trace_context() -> tuple[int, int] | None:
    """``(trace_id, span_id)`` of the innermost open span, or ``None``.

    This is what a transport client attaches to an outgoing request so the
    server's handler span can parent under the caller's span."""
    span_id = _CURRENT.get()
    trace_id = _TRACE.get()
    if span_id is None or trace_id is None:
        return None
    return trace_id, span_id


class _SpanRing:
    """One thread's bounded buffer of finished span records."""

    def __init__(self, capacity: int, thread_name: str) -> None:
        self.capacity = capacity
        self.thread_name = thread_name
        self._lock = threading.Lock()
        self._items: list = [None] * capacity  # guarded-by: self._lock
        self._next = 0  # guarded-by: self._lock
        self._dropped = 0  # guarded-by: self._lock

    def append(self, record: dict) -> None:
        with self._lock:
            if self._items[self._next % self.capacity] is not None:
                self._dropped += 1
            self._items[self._next % self.capacity] = record
            self._next += 1

    def drain(self) -> tuple[list, int]:
        """Remove and return (records oldest-first, drop count so far)."""
        with self._lock:
            start = self._next % self.capacity
            ordered = self._items[start:] + self._items[:start]
            records = [r for r in ordered if r is not None]
            self._items = [None] * self.capacity
            self._next = 0
            dropped, self._dropped = self._dropped, 0
        return records, dropped

    def peek(self) -> tuple[list, int]:
        """Copy of (records oldest-first, drop count) without clearing —
        the flight recorder's read: a crash dump must not steal the spans
        a later orderly export would have reported."""
        with self._lock:
            start = self._next % self.capacity
            ordered = self._items[start:] + self._items[:start]
            records = [r for r in ordered if r is not None]
            dropped = self._dropped
        return records, dropped


class SpanCollector:
    """All threads' rings, plus the drain surface exporters use."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._rings: list = []  # guarded-by: self._lock
        self._tls = threading.local()

    def _ring(self) -> _SpanRing:
        ring = getattr(self._tls, "ring", None)
        if ring is None:
            ring = _SpanRing(self.capacity, threading.current_thread().name)
            self._tls.ring = ring
            with self._lock:
                self._rings.append(ring)
        return ring

    def record(self, record: dict) -> None:
        self._ring().append(record)

    def drain(self) -> tuple[list[dict], int]:
        """All finished spans across every thread (ordered by start time)
        plus the total ring-overflow drop count; the buffers are emptied."""
        with self._lock:
            rings = list(self._rings)
        records: list[dict] = []
        dropped = 0
        for ring in rings:
            got, n_dropped = ring.drain()
            records.extend(got)
            dropped += n_dropped
        records.sort(key=lambda r: r["t0"])
        return records, dropped

    def peek(self) -> tuple[list[dict], int]:
        """Like :meth:`drain` but non-destructive: the rings keep their
        records (and their drop counts) for the next drain."""
        with self._lock:
            rings = list(self._rings)
        records: list[dict] = []
        dropped = 0
        for ring in rings:
            got, n_dropped = ring.peek()
            records.extend(got)
            dropped += n_dropped
        records.sort(key=lambda r: r["t0"])
        return records, dropped

    def clear(self) -> None:
        self.drain()


class Span:
    """One timed region; reusable only as a context manager, not re-entrant.

    ``remote`` (a ``(trace_id, parent_span_id)`` pair) grafts this span —
    and every local descendant — under a span recorded in *another*
    process: the server-side half of a request parents under the client
    span whose context rode the request frame."""

    __slots__ = (
        "name", "attrs", "collector", "span_id", "remote",
        "_t0", "_token", "_trace_token", "_trace_id",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        collector: SpanCollector,
        remote: tuple[int, int] | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.collector = collector
        self.remote = remote
        self.span_id = 0
        self._t0 = 0.0
        self._token = None
        self._trace_token = None
        self._trace_id = 0

    def __enter__(self) -> "Span":
        self.span_id = _new_span_id()
        if self.remote is not None:
            # adopt the remote caller's trace wholesale — descendants of
            # this span belong to the caller's trace, not a local one
            self._trace_id = self.remote[0]
            self._trace_token = _TRACE.set(self._trace_id)
        else:
            trace_id = _TRACE.get()
            if trace_id is None:
                trace_id = _new_trace_id()
                self._trace_token = _TRACE.set(trace_id)
            else:
                self._trace_token = None
            self._trace_id = trace_id
        self._token = _CURRENT.set(self.span_id)
        _push_thread_span(self.name)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.monotonic() - self._t0
        _pop_thread_span()
        _CURRENT.reset(self._token)
        if self._trace_token is not None:
            _TRACE.reset(self._trace_token)
        record = {
            "name": self.name,
            "t0": self._t0,
            "dur_s": dur,
            "span_id": self.span_id,
            "parent_id": (
                self.remote[1] if self.remote is not None else _CURRENT.get()
            ),
            "trace_id": self._trace_id,
            "proc": PROC_TAG,
            "thread": threading.current_thread().name,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.collector.record(record)


class _NullSpan:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
