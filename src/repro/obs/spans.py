"""Lightweight trace spans: monotonic timing, contextvars parentage,
per-thread ring buffers.

A span is one timed region (``with span("sweep.Fu1D", chunk=i):``).  Start
and stop come from ``time.monotonic()`` so durations survive wall-clock
adjustment; the parent relationship rides a :mod:`contextvars` variable, so
it follows the logical flow of control — including into pipeline stage
threads, which enter a copy of the launching thread's context (see
:class:`~repro.pipeline.pipeline.ChunkPipeline`).

Finished spans land in the *recording thread's* ring buffer: appends never
contend across threads (each ring's lock is only shared with the exporter
that drains it), and memory is bounded — a ring overwrites its oldest
record and counts the drop.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time

__all__ = ["SpanCollector", "Span", "current_span_id"]

#: id of the innermost open span in this logical context (None at top level)
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span", default=None
)

_IDS = itertools.count(1)  # CPython-atomic id source shared by all threads


def current_span_id() -> int | None:
    """The innermost open span's id in this context, if any."""
    return _CURRENT.get()


class _SpanRing:
    """One thread's bounded buffer of finished span records."""

    def __init__(self, capacity: int, thread_name: str) -> None:
        self.capacity = capacity
        self.thread_name = thread_name
        self._lock = threading.Lock()
        self._items: list = [None] * capacity  # guarded-by: self._lock
        self._next = 0  # guarded-by: self._lock
        self._dropped = 0  # guarded-by: self._lock

    def append(self, record: dict) -> None:
        with self._lock:
            if self._items[self._next % self.capacity] is not None:
                self._dropped += 1
            self._items[self._next % self.capacity] = record
            self._next += 1

    def drain(self) -> tuple[list, int]:
        """Remove and return (records oldest-first, drop count so far)."""
        with self._lock:
            start = self._next % self.capacity
            ordered = self._items[start:] + self._items[:start]
            records = [r for r in ordered if r is not None]
            self._items = [None] * self.capacity
            self._next = 0
            dropped, self._dropped = self._dropped, 0
        return records, dropped


class SpanCollector:
    """All threads' rings, plus the drain surface exporters use."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._rings: list = []  # guarded-by: self._lock
        self._tls = threading.local()

    def _ring(self) -> _SpanRing:
        ring = getattr(self._tls, "ring", None)
        if ring is None:
            ring = _SpanRing(self.capacity, threading.current_thread().name)
            self._tls.ring = ring
            with self._lock:
                self._rings.append(ring)
        return ring

    def record(self, record: dict) -> None:
        self._ring().append(record)

    def drain(self) -> tuple[list[dict], int]:
        """All finished spans across every thread (ordered by start time)
        plus the total ring-overflow drop count; the buffers are emptied."""
        with self._lock:
            rings = list(self._rings)
        records: list[dict] = []
        dropped = 0
        for ring in rings:
            got, n_dropped = ring.drain()
            records.extend(got)
            dropped += n_dropped
        records.sort(key=lambda r: r["t0"])
        return records, dropped

    def clear(self) -> None:
        self.drain()


class Span:
    """One timed region; reusable only as a context manager, not re-entrant."""

    __slots__ = ("name", "attrs", "collector", "span_id", "_t0", "_token")

    def __init__(self, name: str, attrs: dict, collector: SpanCollector) -> None:
        self.name = name
        self.attrs = attrs
        self.collector = collector
        self.span_id = 0
        self._t0 = 0.0
        self._token = None

    def __enter__(self) -> "Span":
        self.span_id = next(_IDS)
        self._token = _CURRENT.set(self.span_id)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.monotonic() - self._t0
        _CURRENT.reset(self._token)
        record = {
            "name": self.name,
            "t0": self._t0,
            "dur_s": dur,
            "span_id": self.span_id,
            "parent_id": _CURRENT.get(),
            "thread": threading.current_thread().name,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.collector.record(record)


class _NullSpan:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
