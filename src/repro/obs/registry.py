"""Thread-safe metrics registry: counters, gauges, log-bucketed histograms.

The registry is the convergence point of the repo's five stats dataclasses
(``ServerStats``, ``QueueStats``, ``PipelineStats``, ``SchedulerStats``,
``MemoDBStats``) and of the live instrumentation on the sweep / FFT / ANN /
queue / wire hot paths.  Design constraints:

- **bounded memory** — histograms hold fixed log-spaced bucket counts plus
  (count, sum, min, max); no metric ever keeps an unbounded sample list,
- **exact under concurrency** — every metric guards its state with its own
  leaf lock (nothing is acquired while a metric lock is held), so N threads
  hammering one counter sum exactly,
- **cheap identity** — a metric is keyed by ``(name, sorted labels)``;
  repeated ``counter("x", op="Fu1D")`` calls return the same object, so
  call sites need no caching discipline.
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = [
    "log_bucket_edges",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def log_bucket_edges(
    min_value: float = 1e-6, max_value: float = 100.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Fixed log-spaced bucket upper edges covering [min_value, max_value].

    ``per_decade`` edges per decade; the final edge is >= ``max_value`` so
    the grid always covers the configured range (observations above it land
    in the implicit overflow bucket).
    """
    if not (0.0 < min_value < max_value):
        raise ValueError(f"need 0 < min ({min_value}) < max ({max_value})")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n_decades = math.log10(max_value / min_value)
    n_edges = int(math.ceil(n_decades * per_decade)) + 1
    step = 10.0 ** (1.0 / per_decade)
    edges = [min_value * step**i for i in range(n_edges)]
    if edges[-1] < max_value * (1.0 - 1e-9):
        edges.append(edges[-1] * step)
    return tuple(edges)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic counter; ``inc`` is atomic under the metric's leaf lock."""

    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: self._lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-value metric with a high-water mark (queue depths, stats fields)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: self._lock
        self._max = 0.0  # guarded-by: self._lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max_value(self) -> float:
        with self._lock:
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "name": self.name,
                "labels": dict(self.labels),
                "value": self._value,
                "max": self._max,
            }


class Histogram:
    """Fixed log-spaced-bucket histogram (latency distributions).

    ``edges`` are upper bucket bounds; one implicit overflow bucket catches
    everything beyond the last edge.  Memory is O(len(edges)) forever —
    no raw samples are retained — yet quantiles remain recoverable to
    bucket resolution via :meth:`quantile`.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: dict, edges: tuple[float, ...]) -> None:
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be non-empty and increasing")
        self.name = name
        self.labels = dict(labels)
        self.edges = tuple(float(e) for e in edges)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.edges) + 1)  # guarded-by: self._lock
        self._count = 0  # guarded-by: self._lock
        self._sum = 0.0  # guarded-by: self._lock
        self._min = math.inf  # guarded-by: self._lock
        self._max = 0.0  # guarded-by: self._lock

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Approximate q-quantile from the bucket counts (log-interpolated
        within the containing bucket); 0.0 on an empty histogram."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo_seen, hi_seen = self._min, self._max
        return _bucket_quantile(self.edges, counts, total, lo_seen, hi_seen, q)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "name": self.name,
                "labels": dict(self.labels),
                "edges": list(self.edges),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max,
            }


def _bucket_quantile(
    edges, counts, total: int, lo_seen: float, hi_seen: float, q: float
) -> float:
    """Shared bucket-quantile estimator (live histograms and JSONL replays)."""
    if total <= 0:
        return 0.0
    rank = q * total
    cum = 0
    for idx, n in enumerate(counts):
        cum += n
        if cum >= rank and n:
            lo = edges[idx - 1] if idx > 0 else min(lo_seen, edges[0])
            hi = edges[idx] if idx < len(edges) else max(hi_seen, edges[-1])
            frac = (rank - (cum - n)) / n
            if lo <= 0.0:
                est = lo + (hi - lo) * frac
            else:
                est = lo * (hi / lo) ** frac
            # bucket interpolation cannot beat the observed extremes
            return min(max(est, lo_seen), hi_seen)
    return hi_seen


class MetricsRegistry:
    """Get-or-create metric table keyed by ``(name, labels)``.

    Creation races are resolved under the registry lock; updates then go
    through the metric's own leaf lock, so the registry lock is never held
    while user code runs.
    """

    def __init__(self, default_edges: tuple[float, ...] | None = None) -> None:
        self.default_edges = tuple(default_edges) if default_edges else log_bucket_edges()
        self._lock = threading.Lock()
        self._metrics: dict = {}  # guarded-by: self._lock

    def _get_or_create(self, cls, name: str, labels: dict, *args):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, *args)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r}{labels!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, edges: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, tuple(edges) if edges else self.default_edges
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def metrics(self) -> list:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> list[dict]:
        """Point-in-time state of every metric, sorted by (name, labels)."""
        return [
            m.snapshot()
            for m in sorted(
                self.metrics(), key=lambda m: (m.name, _label_key(m.labels))
            )
        ]

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
