"""Writer stage: sinks that absorb output slabs as they complete.

The writer is the pipeline's consumer: it receives ``(chunk, value)`` pairs
from the compute stage's output queue (possibly out of chunk order when a
multi-worker sweep releases worker blocks early) and either reassembles
them into one array (:class:`SlabAssembler`) or persists each slab to SSD
(:class:`SpillSlabWriter`).  Running on its own thread, the sink's work —
memory placement, ``np.save`` — overlaps the compute of later chunks.

A sink is any callable ``(chunk, value) -> None`` with an optional
``result()`` returning the finished artifact at pipeline join.
"""

from __future__ import annotations

import numpy as np

from ..lamino.chunking import Chunk, check_tiling
from ..memio.backing import SpillManager

__all__ = ["SlabAssembler", "SpillSlabWriter"]


class SlabAssembler:
    """Reassemble output slabs into one array along ``axis``.

    Accepts slabs in any order; ``result()`` verifies they tiled the axis
    exactly and concatenates them in chunk order — the *same*
    ``np.concatenate`` the monolithic sweep performs, so the assembled
    array has bit-identical values **and memory layout**.  (Layout matters:
    the USFFT ops emit transposed-layout slabs, and downstream reductions
    like the key encoder's pooling are layout-sensitive in their
    accumulation order.  Copying slabs into a C-order buffer would preserve
    values but change the strides every later sweep sees, silently breaking
    bit-identity with the serial path.)
    """

    def __init__(self, axis_len: int, axis: int = 0) -> None:
        if axis_len < 1:
            raise ValueError(f"axis_len must be >= 1, got {axis_len}")
        self.axis = axis
        self.axis_len = axis_len
        self._parts: list[tuple[tuple[int, int], np.ndarray]] = []

    def __call__(self, chunk: Chunk, value: np.ndarray) -> None:
        self._parts.append(((chunk.lo, chunk.hi), np.asarray(value)))

    def result(self) -> np.ndarray:
        if not self._parts:
            raise ValueError("no slabs were written")
        self._parts.sort(key=lambda item: item[0])
        check_tiling((span for span, _value in self._parts), self.axis_len)
        return np.concatenate([value for _span, value in self._parts], axis=self.axis)


class SpillSlabWriter:
    """Persist each output slab to a :class:`SpillManager` under
    ``f"{prefix}{chunk.index}"`` — the out-of-core destination for
    reconstructions larger than host memory."""

    def __init__(self, manager: SpillManager, prefix: str) -> None:
        self.manager = manager
        self.prefix = prefix
        self.names: list[str] = []

    def __call__(self, chunk: Chunk, value: np.ndarray) -> None:
        name = f"{self.prefix}{chunk.index}"
        self.manager.spill(name, np.asarray(value))
        self.names.append(name)

    def result(self) -> list[str]:
        return list(self.names)
