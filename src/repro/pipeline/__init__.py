"""Streaming pipelined reconstruction: overlapped read -> compute -> write.

The subsystem that hides I/O behind the memoized solver: bounded queues
with backpressure (:mod:`.queues`), prefetching chunk sources
(:mod:`.reader`), slab sinks (:mod:`.writer`), the staged orchestrator
(:mod:`.pipeline`), the incremental projection source (:mod:`.ingest`),
and the drop-in :class:`PipelinedExecutor` the solver's ``pipeline=``
mode installs (:mod:`.executor`).
"""

from .executor import PipelinedExecutor
from .ingest import StreamingIngest
from .pipeline import ChunkPipeline, PipelineConfig, PipelineStats
from .queues import BoundedQueue, QueueClosed, QueueStats
from .reader import ArraySource, SpillSource
from .writer import SlabAssembler, SpillSlabWriter

__all__ = [
    "PipelinedExecutor",
    "StreamingIngest",
    "ChunkPipeline",
    "PipelineConfig",
    "PipelineStats",
    "BoundedQueue",
    "QueueClosed",
    "QueueStats",
    "ArraySource",
    "SpillSource",
    "SlabAssembler",
    "SpillSlabWriter",
]
