"""Reader stage: chunk sources with double-buffered prefetch.

The reader is the pipeline's producer: it materializes one input slab per
chunk and pushes ``(chunk, payload)`` items into the bounded inter-stage
queue.  Two backings are provided:

- :class:`ArraySource` — slabs of an in-memory array (views; zero-copy),
  optionally composed with a payload function for ops whose chunk payload
  carries extra arguments (the fused ``Fu2D`` subtract slab);
- :class:`SpillSource` — slabs persisted in a
  :class:`~repro.memio.backing.SpillManager`.  It keeps ``prefetch_depth``
  loads in flight ahead of the cursor (double-buffered at the default
  depth 1), so the SSD read of chunk ``i+1`` overlaps the compute of chunk
  ``i`` — the exact mechanics tomocupy-style conveyor readers use to hide
  ingest I/O behind GPU work.

A source is any iterable of ``(chunk, payload)`` pairs in ascending chunk
order; the compute stage consumes them through the executor's
``sweep_stream``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from ..lamino.chunking import Chunk, iter_chunks
from ..memio.backing import SpillManager

__all__ = ["ArraySource", "SpillSource"]


class ArraySource:
    """Chunk slabs of an in-memory array along one axis."""

    def __init__(
        self,
        array: np.ndarray,
        chunk_size: int,
        axis: int = 0,
        payload: Callable[[Chunk], object] | None = None,
    ) -> None:
        self.array = array
        self.axis = axis
        self.chunks = list(iter_chunks(array.shape[axis], chunk_size, axis=axis))
        self._payload = payload

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self) -> Iterator[tuple[Chunk, object]]:
        for chunk in self.chunks:
            if self._payload is not None:
                yield chunk, self._payload(chunk)
            else:
                yield chunk, chunk.take(self.array)


class SpillSource:
    """Prefetching chunk loader over a :class:`SpillManager`.

    Slabs must have been spilled under ``f"{prefix}{chunk.index}"``.  While
    chunk ``i`` is being served, the loads of chunks ``i+1 .. i+depth`` are
    already in flight on the manager's worker threads.
    """

    def __init__(
        self,
        manager: SpillManager,
        chunks: Sequence[Chunk],
        prefix: str,
        prefetch_depth: int = 1,
    ) -> None:
        if prefetch_depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, got {prefetch_depth}")
        self.manager = manager
        self.chunks = list(chunks)
        self.prefix = prefix
        self.prefetch_depth = prefetch_depth

    def name_of(self, chunk: Chunk) -> str:
        return f"{self.prefix}{chunk.index}"

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self) -> Iterator[tuple[Chunk, np.ndarray]]:
        n = len(self.chunks)
        for j in range(min(self.prefetch_depth, n)):
            self.manager.prefetch(self.name_of(self.chunks[j]))
        for i, chunk in enumerate(self.chunks):
            ahead = i + self.prefetch_depth
            if self.prefetch_depth > 0 and ahead < n:
                self.manager.prefetch(self.name_of(self.chunks[ahead]))
            yield chunk, self.manager.fetch(self.name_of(chunk))
