"""Bounded inter-stage queues with close semantics and backpressure stats.

The streaming pipeline's stages communicate exclusively through
:class:`BoundedQueue`: a fixed-depth FIFO whose ``put`` blocks when the
queue is full (backpressure on the producer) and whose ``get`` blocks when
it is empty (starvation of the consumer).  Both conditions are counted, so
a finished run can report which stage was the bottleneck — the functional
analogue of the DES pipeline model's ``max(stage)`` term.

``close()`` ends the stream: producers see :class:`QueueClosed` on further
``put``s, consumers drain the remaining items and then see
:class:`QueueClosed` (or the end of iteration).  Closing is idempotent and
safe from any thread, which is what lets a failing stage tear the whole
pipeline down without deadlocking its neighbors.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["QueueClosed", "QueueStats", "BoundedQueue"]


class QueueClosed(Exception):
    """Raised by ``put`` on a closed queue and by ``get`` once drained."""


@dataclass
class QueueStats:
    """Occupancy and blocking counters of one queue."""

    puts: int = 0
    gets: int = 0
    producer_blocks: int = 0  # puts that found the queue full (backpressure)
    consumer_blocks: int = 0  # gets that found the queue empty (starvation)
    max_depth: int = 0

    def merge(self, other: "QueueStats") -> "QueueStats":
        self.puts += other.puts
        self.gets += other.gets
        self.producer_blocks += other.producer_blocks
        self.consumer_blocks += other.consumer_blocks
        self.max_depth = max(self.max_depth, other.max_depth)
        return self


class BoundedQueue:
    """Fixed-depth FIFO with blocking put/get and cooperative shutdown."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._items: deque = deque()  # guarded-by: self._cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: self._cond
        self.stats = QueueStats()  # guarded-by: self._cond

    def put(self, item) -> None:
        """Append ``item``, blocking while the queue is full.

        Raises :class:`QueueClosed` if the queue is (or becomes) closed.
        """
        with self._cond:
            if len(self._items) >= self.depth and not self._closed:
                self.stats.producer_blocks += 1
            while len(self._items) >= self.depth and not self._closed:
                self._cond.wait()
            if self._closed:
                raise QueueClosed
            self._items.append(item)
            self.stats.puts += 1
            self.stats.max_depth = max(self.stats.max_depth, len(self._items))
            self._cond.notify_all()

    def get(self):
        """Pop the oldest item, blocking while the queue is empty.

        Raises :class:`QueueClosed` once the queue is closed *and* drained —
        items put before the close are always delivered.
        """
        with self._cond:
            if not self._items and not self._closed:
                self.stats.consumer_blocks += 1
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                raise QueueClosed
            item = self._items.popleft()
            self.stats.gets += 1
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """End the stream (idempotent): wake all blocked producers/consumers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def __iter__(self):
        """Drain until closed-and-empty."""
        while True:
            try:
                yield self.get()
            except QueueClosed:
                return
