"""Bounded inter-stage queues with close semantics and backpressure stats.

The streaming pipeline's stages communicate exclusively through
:class:`BoundedQueue`: a fixed-depth FIFO whose ``put`` blocks when the
queue is full (backpressure on the producer) and whose ``get`` blocks when
it is empty (starvation of the consumer).  Both conditions are counted, so
a finished run can report which stage was the bottleneck — the functional
analogue of the DES pipeline model's ``max(stage)`` term.

``close()`` ends the stream: producers see :class:`QueueClosed` on further
``put``s, consumers drain the remaining items and then see
:class:`QueueClosed` (or the end of iteration).  Closing is idempotent and
safe from any thread, which is what lets a failing stage tear the whole
pipeline down without deadlocking its neighbors.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..obs import runtime as obs

__all__ = ["QueueClosed", "QueueStats", "BoundedQueue"]


class QueueClosed(Exception):
    """Raised by ``put`` on a closed queue and by ``get`` once drained."""


@dataclass
class QueueStats:
    """Occupancy and blocking counters of one queue."""

    puts: int = 0
    gets: int = 0
    producer_blocks: int = 0  # puts that found the queue full (backpressure)
    consumer_blocks: int = 0  # gets that found the queue empty (starvation)
    max_depth: int = 0

    def merge(self, other: "QueueStats") -> "QueueStats":
        self.puts += other.puts
        self.gets += other.gets
        self.producer_blocks += other.producer_blocks
        self.consumer_blocks += other.consumer_blocks
        self.max_depth = max(self.max_depth, other.max_depth)
        return self

    def publish(self, **labels) -> None:
        """Register these counters as ``pipeline_queue_<field>`` gauges in
        the :mod:`repro.obs` registry (no-op while observability is off).
        Gauges because a stats object is a snapshot-valued total: each
        publish sets the authoritative value, so republishing after a
        merge is idempotent rather than double-counting."""
        if not obs.enabled():
            return
        obs.gauge("pipeline_queue_puts", **labels).set(self.puts)
        obs.gauge("pipeline_queue_gets", **labels).set(self.gets)
        obs.gauge("pipeline_queue_producer_blocks", **labels).set(self.producer_blocks)
        obs.gauge("pipeline_queue_consumer_blocks", **labels).set(self.consumer_blocks)
        obs.gauge("pipeline_queue_max_depth", **labels).set(self.max_depth)


class BoundedQueue:
    """Fixed-depth FIFO with blocking put/get and cooperative shutdown."""

    def __init__(self, depth: int, name: str = "queue") -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self.name = name
        self._items: deque = deque()  # guarded-by: self._cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: self._cond
        self.stats = QueueStats()  # guarded-by: self._cond

    def put(self, item) -> None:
        """Append ``item``, blocking while the queue is full.

        Raises :class:`QueueClosed` if the queue is (or becomes) closed.
        """
        with self._cond:
            if len(self._items) >= self.depth and not self._closed:
                self.stats.producer_blocks += 1
                t0 = time.monotonic()
                while len(self._items) >= self.depth and not self._closed:
                    self._cond.wait()
                obs.histogram(
                    "pipeline_queue_block_seconds", queue=self.name, side="put"
                ).observe(time.monotonic() - t0)
            if self._closed:
                raise QueueClosed
            self._items.append(item)
            self.stats.puts += 1
            self.stats.max_depth = max(self.stats.max_depth, len(self._items))
            obs.gauge("pipeline_queue_depth", queue=self.name).set(len(self._items))
            self._cond.notify_all()

    def get(self):
        """Pop the oldest item, blocking while the queue is empty.

        Raises :class:`QueueClosed` once the queue is closed *and* drained —
        items put before the close are always delivered.
        """
        with self._cond:
            if not self._items and not self._closed:
                self.stats.consumer_blocks += 1
                t0 = time.monotonic()
                while not self._items and not self._closed:
                    self._cond.wait()
                obs.histogram(
                    "pipeline_queue_block_seconds", queue=self.name, side="get"
                ).observe(time.monotonic() - t0)
            if not self._items:
                raise QueueClosed
            item = self._items.popleft()
            self.stats.gets += 1
            obs.gauge("pipeline_queue_depth", queue=self.name).set(len(self._items))
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """End the stream (idempotent): wake all blocked producers/consumers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def __iter__(self):
        """Drain until closed-and-empty."""
        while True:
            try:
                yield self.get()
            except QueueClosed:
                return
