"""Pipelined executor: the ``pipeline=`` execution mode of the solver.

:class:`PipelinedExecutor` wraps any chunk-streaming executor
(:class:`~repro.solvers.executor.DirectExecutor`,
:class:`~repro.core.memo_engine.MemoizedExecutor`, or
:class:`~repro.core.distributed.DistributedMemoizedExecutor`) and turns
every full-array operation into a three-stage
:class:`~repro.pipeline.pipeline.ChunkPipeline`: a reader thread produces
input slabs, the wrapped executor's ``sweep_stream`` computes them in
chunk order on the calling thread, and a writer thread assembles output
slabs as they complete.

Because compute stays single-threaded and in chunk order, the result is
**bit-identical** to the monolithic path for every wrapped executor and
every queue depth — a property the test suite asserts — while the reader
and writer threads overlap slab materialization and output placement with
compute.  Everything else (events, statistics, iteration markers, the
encoder) transparently belongs to the wrapped executor.
"""

from __future__ import annotations

import numpy as np

from ..solvers.executor import SWEEP_AXIS
from .pipeline import ChunkPipeline, PipelineConfig, PipelineStats
from .reader import ArraySource
from .writer import SlabAssembler

__all__ = ["PipelinedExecutor"]


class PipelinedExecutor:
    """Drop-in executor that runs each op sweep as an overlapped pipeline."""

    _OWN_ATTRS = frozenset({"inner", "pipeline_config", "stats"})

    def __init__(self, inner, config: PipelineConfig | None = None) -> None:
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "pipeline_config", config or PipelineConfig())
        object.__setattr__(self, "stats", {})  # op -> PipelineStats

    # -- transparent delegation ----------------------------------------------------------

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __setattr__(self, name, value) -> None:
        if name in self._OWN_ATTRS:
            object.__setattr__(self, name, value)
        else:
            # attribute writes (e.g. installing a trained key encoder)
            # belong to the wrapped executor's state
            setattr(self.inner, name, value)

    # -- the pipelined sweep -------------------------------------------------------------

    def _chunk_size(self, n: int) -> int:
        size = self.inner.chunk_size
        return size if size is not None else n

    def _pipelined(self, op: str, array: np.ndarray, payload=None) -> np.ndarray:
        axis = SWEEP_AXIS[op]
        n = array.shape[axis]
        source = ArraySource(array, self._chunk_size(n), axis=axis, payload=payload)
        n_chunks = len(source)
        pipe = ChunkPipeline(
            source=source,
            sweep=lambda items: self.inner.sweep_stream(op, items, n_chunks),
            sink=SlabAssembler(axis_len=n, axis=axis),
            queue_depth=self.pipeline_config.queue_depth,
            op=op,
        )
        out = pipe.run()
        merged = self.stats.setdefault(op, PipelineStats()).merge(pipe.stats)
        # overwrite the run-local values ChunkPipeline.run just published
        # with this executor's cumulative per-op totals (same gauge series)
        merged.publish(op=op)
        return out

    # -- the six operations --------------------------------------------------------------

    def fu1d(self, u: np.ndarray) -> np.ndarray:
        return self._pipelined("Fu1D", u)

    def fu1d_adj(self, u1: np.ndarray) -> np.ndarray:
        return self._pipelined("Fu1D*", u1)

    def fu2d(self, u1: np.ndarray, subtract: np.ndarray | None = None) -> np.ndarray:
        # the fused kernel's dhat slab rides in the chunk payload
        def payload(chunk):
            return (
                chunk.take(u1),
                chunk.take(subtract) if subtract is not None else None,
            )

        return self._pipelined("Fu2D", u1, payload=payload)

    def fu2d_adj(self, r: np.ndarray) -> np.ndarray:
        return self._pipelined("Fu2D*", r)

    def f2d(self, d: np.ndarray) -> np.ndarray:
        return self._pipelined("F2D", d)

    def f2d_adj(self, dhat: np.ndarray) -> np.ndarray:
        return self._pipelined("F2D*", dhat)

    # -- statistics ----------------------------------------------------------------------

    def pipeline_stats(self) -> PipelineStats:
        """Aggregate queue/backpressure statistics over all pipelined sweeps."""
        agg = PipelineStats(sweeps=0)
        for stats in self.stats.values():
            agg.merge(stats)
        return agg
