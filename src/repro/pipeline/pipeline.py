"""The staged pipeline: overlapped read -> memoized compute -> write.

:class:`ChunkPipeline` wires a chunk source (reader), a streaming sweep
(compute), and a sink (writer) through two :class:`BoundedQueue`s:

.. code-block:: text

    reader thread --[in_q]--> compute (calling thread) --[out_q]--> writer thread

The reader and writer run on worker threads; **compute runs on the calling
thread, single-threaded and in chunk order** — that is the property that
keeps a pipelined run bit-identical to the monolithic path while the
queues overlap the reader's I/O (SSD fetches, ingest arrival) and the
writer's I/O (reassembly, spills) with it.  Queue depths bound memory:
at most ``queue_depth`` input slabs and ``queue_depth`` output slabs are
in flight beyond the chunk being computed.

Failure of any stage closes both queues, unblocks its neighbors, and the
first real exception is re-raised from :meth:`ChunkPipeline.run` — no
stage can deadlock the others.
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass, field

from ..core.config import PipelineConfig
from ..obs import runtime as obs
from .queues import BoundedQueue, QueueClosed, QueueStats

__all__ = ["PipelineConfig", "PipelineStats", "ChunkPipeline"]


@dataclass
class PipelineStats:
    """Counters of one (or several merged) pipeline runs."""

    sweeps: int = 0
    items: int = 0
    read_queue: QueueStats = field(default_factory=QueueStats)
    write_queue: QueueStats = field(default_factory=QueueStats)

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        self.sweeps += other.sweeps
        self.items += other.items
        self.read_queue.merge(other.read_queue)
        self.write_queue.merge(other.write_queue)
        return self

    def publish(self, **labels) -> None:
        """Register these totals as ``pipeline_*`` gauges in the
        :mod:`repro.obs` registry (no-op while observability is off)."""
        if not obs.enabled():
            return
        obs.gauge("pipeline_sweeps", **labels).set(self.sweeps)
        obs.gauge("pipeline_items", **labels).set(self.items)
        self.read_queue.publish(queue="read", **labels)
        self.write_queue.publish(queue="write", **labels)


class _Stage(threading.Thread):
    """A pipeline stage thread that records, rather than prints, its death.

    The stage runs inside a copy of the *launching* thread's context
    (captured at construction), so trace spans opened in the stage parent
    to the pipeline's enclosing span instead of floating rootless —
    contextvars do not otherwise cross thread boundaries.
    """

    def __init__(self, name: str, target) -> None:
        super().__init__(name=f"pipeline-{name}", daemon=True)
        self._target_fn = target
        self._context = contextvars.copy_context()
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self._context.run(self._target_fn)
        except QueueClosed:
            pass  # a neighbor tore the pipeline down; it will report why
        except BaseException as exc:  # noqa: BLE001 — re-raised at join
            self.error = exc


class ChunkPipeline:
    """One overlapped sweep: source -> sweep_stream -> sink."""

    def __init__(self, source, sweep, sink, queue_depth: int = 2, op: str = "") -> None:
        self.source = source
        self.sweep = sweep
        self.sink = sink
        self.queue_depth = queue_depth
        self.op = op
        self.stats = PipelineStats(sweeps=1)

    def run(self):
        """Execute the pipeline to completion; returns ``sink.result()``
        (or ``None`` for result-less sinks)."""
        in_q = BoundedQueue(self.queue_depth, name="read")
        out_q = BoundedQueue(self.queue_depth, name="write")

        def read() -> None:
            # stage busy time = the stage span minus its queue block time
            # (pipeline_queue_block_seconds{queue=read, side=put})
            with obs.span("pipeline.reader", op=self.op):
                try:
                    for item in self.source:
                        in_q.put(item)
                finally:
                    in_q.close()

        def write() -> None:
            with obs.span("pipeline.writer", op=self.op):
                try:
                    for chunk, value in out_q:
                        self.sink(chunk, value)
                finally:
                    out_q.close()

        # opened before the stages are constructed so their copied contexts
        # inherit it: reader/writer/compute spans all parent to pipeline.run
        with obs.span("pipeline.run", op=self.op):
            reader = _Stage("reader", read)
            writer = _Stage("writer", write)
            reader.start()
            writer.start()
            compute_error: BaseException | None = None
            sweep_iter = self.sweep(iter(in_q))
            try:
                with obs.span("pipeline.compute", op=self.op):
                    for chunk, value in sweep_iter:
                        out_q.put((chunk, value))
                        self.stats.items += 1
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                compute_error = exc
            finally:
                # a suspended sweep generator holds executor state (buffered
                # queries, pending inserts); closing it runs its cleanup
                if hasattr(sweep_iter, "close"):
                    sweep_iter.close()
                in_q.close()
                out_q.close()
            reader.join()
            writer.join()
        self.stats.read_queue.merge(in_q.stats)
        self.stats.write_queue.merge(out_q.stats)
        self.stats.publish(op=self.op)

        # A dead reader starves compute and a dead writer chokes it, so the
        # neighbor's root cause outranks compute's secondary failure.
        for error in (writer.error, reader.error):
            if error is not None:
                raise error
        if compute_error is not None and not isinstance(compute_error, QueueClosed):
            raise compute_error
        return self.sink.result() if hasattr(self.sink, "result") else None
