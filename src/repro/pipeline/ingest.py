"""Streaming ingest: reconstruction starts before the scan finishes.

A laminography scan delivers projections incrementally — angle block by
angle block off the detector.  :class:`StreamingIngest` is the pipeline
source for that arrival process: an acquisition thread ``push()``es blocks
of whatever height the instrument produces, and the consumer side iterates
``(chunk, slab)`` items re-aligned to the solver's chunk grid, with
backpressure (a bounded block queue) toward the producer.

The first thing the solver does with projections under operation
cancellation is the embarrassingly chunk-parallel ``F2D`` transform
(``dhat = F2D d``, Algorithm 2 line 2) — so
:meth:`MLRSolver.reconstruct_streaming <repro.core.mlr_solver.MLRSolver.reconstruct_streaming>`
drives the executor's ``F2D`` sweep directly off this source: early angle
chunks are transformed while later ones are still being acquired, and the
ADMM iterations start the moment the last block lands instead of after a
serial ingest + transform phase.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..lamino.chunking import Chunk, iter_chunks
from .queues import BoundedQueue, QueueClosed

__all__ = ["StreamingIngest"]


class StreamingIngest:
    """Incremental projection source with chunk re-alignment.

    One producer thread calls :meth:`push` / :meth:`finish` (or uses the
    context manager); one consumer thread iterates.  Pushed blocks are cast
    to ``dtype`` and re-sliced into slabs matching ``chunk_size`` on the
    angle axis, so arbitrary arrival granularity maps onto the solver's
    chunk grid.
    """

    def __init__(
        self,
        data_shape: tuple[int, int, int],
        chunk_size: int,
        queue_depth: int = 4,
        dtype=np.complex64,
    ) -> None:
        if len(data_shape) != 3:
            raise ValueError(f"data_shape must be (n_angles, h, w), got {data_shape}")
        self.data_shape = tuple(data_shape)
        self.dtype = np.dtype(dtype)
        self.chunks = list(iter_chunks(data_shape[0], chunk_size))
        self._queue = BoundedQueue(queue_depth)
        self._buffered: list[np.ndarray] = []
        self._buffered_rows = 0
        self._pushed_rows = 0
        self._next_chunk = 0
        self._aborted = False

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    # -- producer side ------------------------------------------------------------------

    def push(self, block: np.ndarray) -> None:
        """Feed one block of projections (``(k, h, w)``, any ``k >= 1``).

        Blocks when the consumer is more than the queue depth behind
        (backpressure toward the instrument).  Raises :class:`QueueClosed`
        if the consumer abandoned the stream.

        The block is copied: the producer is free to reuse (overwrite) its
        acquisition buffer for the next frames immediately — the standard
        detector-driver pattern — without corrupting queued slabs.
        """
        block = np.asarray(block)
        if block.ndim != 3 or block.shape[1:] != self.data_shape[1:]:
            raise ValueError(
                f"block shape {block.shape} does not match frames of "
                f"{self.data_shape}"
            )
        if self._pushed_rows + block.shape[0] > self.data_shape[0]:
            raise ValueError(
                f"pushing {block.shape[0]} rows past the declared "
                f"{self.data_shape[0]}-angle scan"
            )
        block = np.array(block, dtype=self.dtype, order="C", copy=True)
        self._pushed_rows += block.shape[0]
        self._buffered.append(block)
        self._buffered_rows += block.shape[0]
        self._emit_ready()

    def _emit_ready(self) -> None:
        """Re-slice buffered rows into full chunk slabs and enqueue them."""
        while self._next_chunk < len(self.chunks):
            chunk = self.chunks[self._next_chunk]
            if self._buffered_rows < chunk.size:
                return
            rows = np.concatenate(self._buffered, axis=0) if len(self._buffered) > 1 \
                else self._buffered[0]
            slab, rest = rows[: chunk.size], rows[chunk.size:]
            if rest.shape[0] or rows.base is not None:
                # detach the slab from the block buffer: a queued slab must
                # not pin the (possibly much larger) pushed block, or the
                # queue depth no longer bounds resident memory.  (rows may
                # itself be a leftover view of an earlier oversized block.)
                slab = np.array(slab, copy=True)
            self._buffered = [rest] if rest.shape[0] else []
            self._buffered_rows -= chunk.size
            self._next_chunk += 1
            self._queue.put((chunk, np.ascontiguousarray(slab)))

    def finish(self) -> None:
        """Declare the scan complete; the consumer sees end-of-stream after
        the last full chunk."""
        if self._pushed_rows != self.data_shape[0] and not self._aborted:
            self._queue.close()
            raise ValueError(
                f"scan ended after {self._pushed_rows} of "
                f"{self.data_shape[0]} angles"
            )
        self._queue.close()

    def abort(self) -> None:
        """Tear the stream down (consumer sees a truncated stream)."""
        self._aborted = True
        self._queue.close()

    def __enter__(self) -> "StreamingIngest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.abort()

    # -- consumer side ------------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[Chunk, np.ndarray]]:
        delivered = 0
        try:
            while True:
                yield self._queue.get()
                delivered += 1
        except QueueClosed:
            if delivered != self.n_chunks:
                raise ValueError(
                    f"ingest stream ended after {delivered} of "
                    f"{self.n_chunks} chunks"
                ) from None
