"""``python -m repro.net``: run the memo server daemon (same CLI as
``python -m repro.net.server``, without the package-import runpy warning)."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
