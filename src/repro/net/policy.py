"""Unified retry / timeout / circuit-breaker policy for the network tier.

Every degraded-mode decision in :mod:`repro.net` used to be ad-hoc: the
memo client kept its own exponential backoff, the snapshot store had none,
and the scheduler never retried anything.  :class:`RetryPolicy` is the one
description of *how to wait* that all of them now share:

- **deadline** — a retried operation never stretches past ``deadline_s``
  of total elapsed time; callers degrade (fail open) or raise after it,
- **exponential backoff with decorrelated jitter** — successive delays
  grow from ``backoff_initial_s`` toward the hard cap ``backoff_max_s``,
  each drawn from a *seeded* RNG (``uniform(base, 3 * previous)``, the
  AWS architecture-blog "decorrelated jitter" schedule), so a thousand
  clients reconnecting to a restarted daemon spread out instead of
  thundering in lockstep — while any single client's schedule is exactly
  reproducible from its seed,
- **per-replica circuit breaker** — ``failure_threshold`` consecutive
  failures open the circuit (calls are refused locally, no connect
  attempts); after ``reset_timeout_s`` one half-open probe is allowed
  through, and its outcome closes or re-opens the circuit.

:class:`BackoffState` is the mutable per-connection realization of the
schedule; :class:`CircuitBreaker` the per-replica health automaton.  Both
are deterministic given the seed, which is what lets the fault-injection
suite replay an identical fault trace from an identical plan.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from dataclasses import dataclass

__all__ = [
    "RetryPolicy",
    "BackoffState",
    "CircuitBreaker",
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
]

#: circuit states as published to the ``circuit_state{replica}`` gauge
CIRCUIT_CLOSED = 0
CIRCUIT_HALF_OPEN = 1
CIRCUIT_OPEN = 2

_STATE_NAMES = {
    CIRCUIT_CLOSED: "closed",
    CIRCUIT_HALF_OPEN: "half-open",
    CIRCUIT_OPEN: "open",
}


def seed_from_name(name: str) -> int:
    """A stable integer seed derived from a client/replica name, so every
    named client gets a distinct but reproducible jitter stream."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class RetryPolicy:
    """How the network tier waits: attempts, deadline, backoff, breaker.

    max_attempts:
        Total tries for one retryable operation (1 = no retry).
    deadline_s:
        Wall-clock budget across all attempts of one operation; ``None``
        means only ``max_attempts`` bounds it.
    backoff_initial_s / backoff_max_s:
        First delay and the hard cap every delay is clamped to.
    failure_threshold / reset_timeout_s:
        Circuit breaker: consecutive failures to open, and how long an
        open circuit waits before allowing one half-open probe.
    """

    max_attempts: int = 3
    deadline_s: float | None = 30.0
    backoff_initial_s: float = 0.05
    backoff_max_s: float = 5.0
    failure_threshold: int = 3
    reset_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.backoff_initial_s < 0:
            raise ValueError(
                f"backoff_initial_s must be >= 0, got {self.backoff_initial_s}"
            )
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_initial_s ({self.backoff_initial_s})"
            )
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {self.reset_timeout_s}"
            )

    def backoff(self, seed: int | str = 0) -> "BackoffState":
        """A fresh per-connection backoff schedule seeded by ``seed``."""
        return BackoffState(self, seed)

    def breaker(self, clock=time.monotonic) -> "CircuitBreaker":
        """A fresh per-replica circuit breaker under this policy."""
        return CircuitBreaker(self, clock=clock)


class BackoffState:
    """Mutable decorrelated-jitter schedule (deterministic per seed).

    Not thread-safe by itself; callers advance it under their own lock
    (the memo client does) or from a single thread.
    """

    def __init__(self, policy: RetryPolicy, seed: int | str = 0) -> None:
        self.policy = policy
        if isinstance(seed, str):
            seed = seed_from_name(seed)
        self._seed = seed
        self._rng = random.Random(seed)
        self._prev = 0.0
        self.attempts = 0

    def next_delay(self, base_s: float | None = None, cap_s: float | None = None):
        """The next sleep in seconds: ``min(cap, uniform(base, 3 * prev))``,
        never below ``base``.  ``base_s`` / ``cap_s`` override the policy's
        bounds (the memo client keeps its historically mutable knobs)."""
        base = self.policy.backoff_initial_s if base_s is None else base_s
        cap = self.policy.backoff_max_s if cap_s is None else cap_s
        cap = max(cap, base)
        lo = min(base, cap)
        hi = max(lo, min(cap, 3.0 * self._prev))
        delay = self._rng.uniform(lo, hi) if hi > lo else lo
        self._prev = max(delay, base)
        self.attempts += 1
        return delay

    def reset(self) -> None:
        """Back to the initial schedule (the connection came back)."""
        self._prev = 0.0
        self.attempts = 0


class CircuitBreaker:
    """Per-replica failure gate: closed -> open -> half-open -> closed.

    Thread-safe.  ``allow()`` answers "may a call go to this replica right
    now" — always in ``closed``, never in ``open`` until
    ``reset_timeout_s`` elapsed, and for exactly one in-flight probe in
    ``half-open`` (a second caller is refused until the probe resolves).
    """

    def __init__(self, policy: RetryPolicy, clock=time.monotonic) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CIRCUIT_CLOSED  # guarded-by: self._lock
        self._failures = 0  # guarded-by: self._lock
        self._opened_at = 0.0  # guarded-by: self._lock
        self._probe_inflight = False  # guarded-by: self._lock
        self.transitions = 0  # guarded-by: self._lock

    @property
    def state(self) -> int:
        with self._lock:
            return self._effective_state_locked()

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def _effective_state_locked(self) -> int:
        if (
            self._state == CIRCUIT_OPEN
            and self._clock() - self._opened_at >= self.policy.reset_timeout_s
        ):
            self._state = CIRCUIT_HALF_OPEN
            self._probe_inflight = False
            self.transitions += 1
        return self._state

    def allow(self) -> bool:
        """True if a call may proceed (and, in half-open, claims the probe)."""
        with self._lock:
            state = self._effective_state_locked()
            if state == CIRCUIT_CLOSED:
                return True
            if state == CIRCUIT_HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != CIRCUIT_CLOSED:
                self.transitions += 1
            self._state = CIRCUIT_CLOSED
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state_locked()
            self._failures += 1
            self._probe_inflight = False
            if state == CIRCUIT_HALF_OPEN or (
                state == CIRCUIT_CLOSED
                and self._failures >= self.policy.failure_threshold
            ):
                self._state = CIRCUIT_OPEN
                self._opened_at = self._clock()
                self.transitions += 1

    def force_probe(self) -> None:
        """Collapse the open window (operator tooling / tests: "the replica
        just came back") so the next ``allow()`` grants a probe."""
        with self._lock:
            if self._state == CIRCUIT_OPEN:
                self._state = CIRCUIT_HALF_OPEN
                self._probe_inflight = False
                self.transitions += 1
