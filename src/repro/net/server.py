"""The memo server daemon: one shared memoization service for many hosts.

:class:`MemoServerDaemon` hosts a :class:`~repro.core.memo_shard.MemoShardRouter`
behind the TCP wire protocol of :mod:`repro.net.wire`, turning the
in-process memo service into the multi-host deployment the paper's beamline
setting implies (detector node, compute nodes, storage nodes sharing one
memory node):

- **shards map to worker threads** — each shard owns a single-thread
  executor, so traffic for different shards is serviced concurrently while
  each shard's partitions see strictly serialized access (the same
  consistency the in-process router gets from the GIL's per-call ordering),
- **per-connection framing state** — every client connection gets its own
  handler thread and :class:`~repro.net.wire.FrameReader`; a malformed
  frame poisons only that connection (typed error back, then close), never
  the daemon,
- **snapshot push/pull** — schedulers warm-start from the daemon and merge
  their finished tiers back into it (partition-level union, newest wins),
  so the shared tier outlives any one job or host,
- **periodic persistence** — with ``snapshot_path`` set, the accumulated
  tier is written through :mod:`repro.service.snapshot` at a fixed cadence
  and on shutdown, and reloaded at boot, so the daemon itself warm-starts
  across restarts.

Run standalone with ``python -m repro.net.server --port 9876 --shards 4``.
"""

from __future__ import annotations

import argparse
import contextvars
import logging
import os
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.config import MemoConfig
from ..core.memo_db import MemoDatabase
from ..core.memo_engine import make_db_factory, memo_state_partitions
from ..core.memo_shard import MemoShardRouter
from ..faults import runtime as faults
from ..obs import runtime as obs
from .wire import (
    FEATURE_TRACE,
    MESSAGE_NAMES,
    MSG_ERROR,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_INSERT,
    MSG_INSERT_OK,
    MSG_METRICS,
    MSG_METRICS_OK,
    MSG_PING,
    MSG_PING_OK,
    MSG_QUERY,
    MSG_QUERY_OK,
    MSG_SNAP_PULL,
    MSG_SNAP_PULL_OK,
    MSG_SNAP_PUSH,
    MSG_SNAP_PUSH_OK,
    MSG_STATS,
    MSG_STATS_OK,
    MSG_TRACE_PULL,
    MSG_TRACE_PULL_OK,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameReader,
    FrameTimeout,
    MessageError,
    ProtocolError,
    VersionMismatch,
    inserts_from_wire,
    outcomes_to_wire,
    parse_address_list,
    queries_from_wire,
    send_frame,
    stats_to_wire,
    trace_ctx_from_wire,
)

__all__ = ["ServerStats", "MemoServerDaemon", "main"]

log = logging.getLogger("repro.net.server")


class _AppError(RuntimeError):
    """Request-level failure (config mismatch, bad snapshot): answered with
    an MSG_ERROR frame, the connection stays up."""


@dataclass
class ServerStats:
    """Aggregate daemon-side traffic counters (thread-safe via the lock)."""

    connections: int = 0
    active_connections: int = 0
    query_batches: int = 0
    queries: int = 0
    insert_batches: int = 0
    inserts: int = 0
    stats_pulls: int = 0
    metrics_pulls: int = 0
    snapshot_pushes: int = 0
    snapshot_pulls: int = 0
    protocol_errors: int = 0
    app_errors: int = 0
    snapshots_persisted: int = 0
    pings: int = 0
    idle_reaped: int = 0
    snapshots_quarantined: int = 0
    duplicate_insert_batches: int = 0
    trace_pulls: int = 0

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "active_connections": self.active_connections,
            "query_batches": self.query_batches,
            "queries": self.queries,
            "insert_batches": self.insert_batches,
            "inserts": self.inserts,
            "stats_pulls": self.stats_pulls,
            "metrics_pulls": self.metrics_pulls,
            "snapshot_pushes": self.snapshot_pushes,
            "snapshot_pulls": self.snapshot_pulls,
            "protocol_errors": self.protocol_errors,
            "app_errors": self.app_errors,
            "snapshots_persisted": self.snapshots_persisted,
            "pings": self.pings,
            "idle_reaped": self.idle_reaped,
            "snapshots_quarantined": self.snapshots_quarantined,
            "duplicate_insert_batches": self.duplicate_insert_batches,
            "trace_pulls": self.trace_pulls,
        }

    def publish(self, **labels) -> None:
        """Register these counters as ``net_server_<field>`` gauges in the
        :mod:`repro.obs` registry (no-op while observability is off).
        Call on a copy taken outside the daemon's lock — the registry lock
        never nests under it."""
        if not obs.enabled():
            return
        for fname, value in self.as_dict().items():
            obs.gauge(f"net_server_{fname}", **labels).set(value)


class MemoServerDaemon:
    """Threaded TCP daemon serving a sharded memoization database.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  The daemon is running as soon as the constructor
    returns, and is a context manager (``close()`` on exit).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        n_shards: int = 1,
        memo: MemoConfig | None = None,
        snapshot_path: str | os.PathLike | None = None,
        snapshot_interval_s: float | None = None,
        name: str = "memo-server",
        max_payload: int | None = None,
        idle_timeout_s: float | None = None,
        telemetry_port: int | None = None,
        telemetry_host: str = "127.0.0.1",
    ) -> None:
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, got {idle_timeout_s}")
        self.memo = memo or MemoConfig()
        self.name = name
        self.router = MemoShardRouter(n_shards, make_db_factory(self.memo))
        self.stats = ServerStats()  # guarded-by: self._lock
        self.snapshot_path = os.fspath(snapshot_path) if snapshot_path else None
        self.snapshot_interval_s = snapshot_interval_s
        self._max_payload = max_payload
        #: reap a connection that sends nothing for this long (None = never);
        #: clients heartbeat with MSG_PING to stay alive across quiet spans
        self.idle_timeout_s = idle_timeout_s
        self._lock = threading.Lock()
        # provenance of the stored keys
        self._encoder_fp: dict | None = None  # guarded-by: self._lock
        # optional CNN encoder weights
        self._encoder_state: dict | None = None  # guarded-by: self._lock
        self._stop = threading.Event()
        self._conns: dict[int, socket.socket] = {}  # guarded-by: self._lock
        self._conn_seq = 0  # guarded-by: self._lock
        # recently applied insert-batch tags (dict as FIFO set): a client
        # that lost the ack replays the batch on reconnect — at-least-once
        # delivery on the wire, at-most-once application here.  Without
        # this, a replayed batch double-inserts its keys and the duplicate
        # keys perturb index training, so a faulted run's miss
        # similarities drift off the fault-free run's.
        self._applied_batches: dict[str, None] = {}  # guarded-by: self._lock
        self._dedup_window = 4096
        # one worker thread per shard: cross-shard concurrency, within-shard
        # serialization — snapshot/stat reads run on the same threads, so
        # they always observe a shard at a batch boundary
        self._shard_pools = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"{name}-shard{s}")
            for s in range(n_shards)
        ]
        if self.snapshot_path:
            self._load_boot_snapshot()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self._threads: list[threading.Thread] = []  # guarded-by: self._lock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._accept_thread.start()
        self._snapshot_thread = None
        if self.snapshot_path and self.snapshot_interval_s:
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop, name=f"{name}-snapshot", daemon=True
            )
            self._snapshot_thread.start()
        # live telemetry plane: /metrics (traffic gauges + per-entry heat
        # histograms), /healthz, /readyz (accepting), /snapshot
        self.telemetry = None
        if telemetry_port is not None:
            from ..obs.http import TelemetryServer

            def accepting() -> tuple[bool, str]:
                ok = self.running
                return ok, "accepting" if ok else "shut down"

            accepting.probe_name = "accepting"
            self.telemetry = TelemetryServer(
                (telemetry_host, telemetry_port),
                collect=[self._telemetry_collect],
                readiness=[accepting],
                name=name,
            )

    # -- lifecycle -----------------------------------------------------------------------

    def __enter__(self) -> "MemoServerDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: stop accepting, unblock and join every
        connection handler, persist a final snapshot, stop shard workers."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self.telemetry is not None:
            try:
                self.telemetry.close()
            except OSError:
                pass
        try:
            # close() alone does not wake a thread blocked in accept() — the
            # fd stays open inside the syscall and the port stays LISTEN;
            # shutdown() forces accept() to return so the listener actually
            # releases the port
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            handlers = list(self._threads)
        for t in handlers:
            t.join(timeout=5.0)
        if self._snapshot_thread is not None:
            self._snapshot_thread.join(timeout=5.0)
        if self.snapshot_path:
            try:
                self.save_snapshot()
            except Exception as exc:  # noqa: BLE001 — shutdown must not raise
                log.warning("final snapshot failed: %s", exc)
        for pool in self._shard_pools:
            pool.shutdown(wait=True)

    @property
    def running(self) -> bool:
        return not self._stop.is_set()

    # -- persistence ---------------------------------------------------------------------

    def _load_boot_snapshot(self) -> None:
        from ..service.snapshot import SnapshotError, quarantine_snapshot, read_snapshot

        manifest = os.path.join(self.snapshot_path, "manifest.json")
        if not os.path.isfile(manifest):
            return
        try:
            tree = read_snapshot(self.snapshot_path, expect_kind="memo-state")
        except SnapshotError as exc:
            # a corrupt snapshot must neither kill the daemon nor be
            # overwritten by the next periodic save: move it aside
            # (<path>.corrupt) and cold-start
            quarantined = quarantine_snapshot(self.snapshot_path)
            with self._lock:
                self.stats.snapshots_quarantined += 1
            obs.counter("snapshot_quarantined_total", where="server-boot").inc()
            obs.flight_dump(
                "snapshot-quarantine",
                where="server-boot",
                server=self.name,
                snapshot=str(self.snapshot_path),
                error=str(exc),
            )
            log.warning(
                "boot snapshot at %s unusable (%s) — quarantined to %s, "
                "starting cold",
                self.snapshot_path, exc, quarantined,
            )
            return
        self._check_push(tree)
        self.router.load_state(tree)
        self._remember_encoder(tree)
        log.info(
            "warm-started %d partitions from %s",
            len(memo_state_partitions(tree)),
            self.snapshot_path,
        )

    def save_snapshot(self) -> dict:
        """Persist the current tier under ``snapshot_path``."""
        from ..service.snapshot import write_snapshot

        if not self.snapshot_path:
            raise ValueError("daemon was started without a snapshot_path")
        manifest = write_snapshot(self.snapshot_path, self.pull_state(), kind="memo-state")
        with self._lock:
            self.stats.snapshots_persisted += 1
        return manifest

    def _snapshot_loop(self) -> None:
        while not self._stop.wait(self.snapshot_interval_s):
            try:
                self.save_snapshot()
            except Exception as exc:  # noqa: BLE001 — persistence must not kill serving
                log.warning("periodic snapshot failed: %s", exc)

    # -- sharded dispatch ----------------------------------------------------------------

    def _route(self, items: list, service) -> list:
        """Group ``items`` by owning shard, service every group on its
        shard's worker thread concurrently, reassemble in request order —
        the server-side mirror of ``MemoShardRouter``'s scatter/gather."""
        results: list = [None] * len(items)
        groups: dict[int, list[int]] = {}
        for i, item in enumerate(items):
            groups.setdefault(self.router.shard_of(item.location), []).append(i)
        if faults.installed():
            inner = service

            def stalled(sid: int, group: list):
                # slow-shard injection point: the stall runs on the shard's
                # own worker thread, so one slow shard delays only its group
                faults.maybe_stall(f"server:{self.name}:shard{sid}")
                return inner(sid, group)

            service = stalled
        if obs.enabled():
            traced = service

            def timed(sid: int, group: list):
                t0 = time.monotonic()
                try:
                    with obs.span("net_server.shard", shard=sid, items=len(group)):
                        return traced(sid, group)
                finally:
                    obs.histogram(
                        "net_server_shard_seconds", shard=sid
                    ).observe(time.monotonic() - t0)

            # each submission runs under a fresh copy of this handler
            # thread's contextvars, so the shard span parents under the
            # request span even though pool threads start with an empty
            # context.  One copy per submission: a Context object cannot
            # be entered concurrently from two threads
            futures = {
                sid: self._shard_pools[sid].submit(
                    contextvars.copy_context().run,
                    timed,
                    sid,
                    [items[i] for i in idxs],
                )
                for sid, idxs in groups.items()
            }
        else:
            futures = {
                sid: self._shard_pools[sid].submit(
                    service, sid, [items[i] for i in idxs]
                )
                for sid, idxs in groups.items()
            }
        for sid, idxs in groups.items():
            for i, res in zip(idxs, futures[sid].result()):
                results[i] = res
        return results

    def _on_all_shards(self, fn) -> list:
        """Run ``fn(shard)`` on every shard's worker thread; results in
        shard order.  Snapshot and stats reads go through here so they see
        each shard quiesced at a message boundary."""
        futures = [
            pool.submit(fn, shard)
            for pool, shard in zip(self._shard_pools, self.router.shards)
        ]
        return [f.result() for f in futures]

    def serve_query_batch(self, queries) -> list:
        return self._route(
            queries, lambda sid, group: self.router.shards[sid].query_batch(group)
        )

    def serve_insert_batch(self, inserts) -> list[int]:
        return self._route(
            inserts, lambda sid, group: self.router.shards[sid].insert_batch(group)
        )

    # -- snapshot / stats service --------------------------------------------------------

    def pull_state(self) -> dict:
        """The full tier as a ``memo_state()``-compatible tree (sharded
        layout), including key-encoder provenance when one was pushed."""
        shard_states = self._on_all_shards(lambda shard: shard.state_dict())
        tree = {
            "layout": "sharded",
            "n_shards": self.router.n_shards,
            "shards": shard_states,
        }
        with self._lock:
            if self._encoder_fp is not None:
                tree["encoder"] = dict(self._encoder_fp)
            if self._encoder_state is not None:
                tree["encoder_state"] = self._encoder_state
        return tree

    def _check_encoder_fp(self, fp: dict | None, how: str, pin: bool) -> None:
        """One encoder feeds a shared tier: reject a fingerprint conflicting
        with the pinned one.  Keys from different encoders never tau-match,
        so mixing them silently poisons every client's hit decisions.

        Pinning happens only on *data* (``pin=True``: inserts, snapshot
        pushes, boot snapshots) — a handshake or query against a still-empty
        tier must not lock every differently-keyed client out forever."""
        if not fp:
            return
        with self._lock:
            known = self._encoder_fp
            if known is None:
                if pin:
                    self._encoder_fp = dict(fp)
                return
        for field_name in ("kind", "dim", "weights"):
            ours, theirs = known.get(field_name), fp.get(field_name)
            if ours and theirs and ours != theirs:
                raise _AppError(
                    f"{how} keys come from a different encoder "
                    f"({field_name}: {theirs!r} != {ours!r}) — a shared tier "
                    "must be fed by one encoder"
                )

    def _check_push(self, tree: dict) -> None:
        """Reject a pushed tree that would silently change memoization
        semantics: tau / value-mode mismatches, or keys from a different
        encoder than the tier already holds."""
        if not isinstance(tree, dict) or "layout" not in tree:
            raise _AppError("snapshot push payload is not a memo-state tree")
        try:
            partitions = memo_state_partitions(tree)
        except (KeyError, TypeError) as exc:
            raise _AppError(f"malformed memo-state tree: {exc!r}") from None
        for part in partitions:
            try:
                cfg = part["db"]["config"]
                tau, mode = float(cfg["tau"]), str(cfg["value_mode"])
            except (KeyError, TypeError) as exc:
                raise _AppError(f"malformed partition in push: {exc!r}") from None
            if tau != self.memo.tau:
                raise _AppError(
                    f"pushed partition tau {tau} != server tau {self.memo.tau}"
                )
            if mode != self.memo.db_value_mode:
                raise _AppError(
                    f"pushed partition value_mode {mode!r} != server "
                    f"{self.memo.db_value_mode!r}"
                )
        self._check_encoder_fp(tree.get("encoder"), "pushed", pin=True)

    def _remember_encoder(self, tree: dict) -> None:
        with self._lock:
            if tree.get("encoder"):
                self._encoder_fp = dict(tree["encoder"])
            if tree.get("encoder_state"):
                self._encoder_state = tree["encoder_state"]

    def check_client_encoder(self, fp: dict | None, pin: bool = False) -> None:
        """Provenance gate for hot-path (query/insert) clients — the
        snapshot-push check alone would let two hosts with different CNN
        trainings quietly co-mingle keys in one tier.  Checked at handshake
        and on every query; checked *and pinned* on every insert (first
        data wins)."""
        self._check_encoder_fp(fp, "client", pin=pin)

    def push_state(self, tree: dict) -> int:
        """Merge a pushed tier into the live router (partition-level union,
        pushed partitions win); returns the number of partitions installed."""
        self._check_push(tree)
        partitions = memo_state_partitions(tree)
        by_shard: dict[int, list[dict]] = {}
        for part in partitions:
            by_shard.setdefault(
                self.router.shard_of(int(part["location"])), []
            ).append(part)

        def install(sid: int, parts: list[dict]) -> None:
            shard = self.router.shards[sid]
            for part in parts:
                key = (str(part["op"]), int(part["location"]))
                new_db = MemoDatabase.from_state(part["db"])
                old_db = shard._dbs.get(key)
                if old_db is not None:
                    # pushed partitions win wholesale, but heat is telemetry
                    # about *this* tier's traffic: keep max(last-hit) and
                    # sum(hits) for keys both sides hold, so an absorb never
                    # makes a hot entry look cold to the eviction planner
                    new_db.values.merge_heat(old_db.values)
                shard._dbs[key] = new_db

        futures = [
            self._shard_pools[sid].submit(install, sid, parts)
            for sid, parts in by_shard.items()
        ]
        for f in futures:
            f.result()
        self._remember_encoder(tree)
        return len(partitions)

    def resync_from(self, peers) -> int:
        """Anti-entropy resync: pull a peer replica's merged tier and merge
        it into this daemon (partition-level union, peer's partitions win
        for conflicts — the rejoining side is the stale one by definition).

        ``peers`` is anything :func:`parse_address_list` accepts; peers are
        tried in order and the first reachable one is used.  Returns the
        number of partitions installed (0 when every peer is down or the
        first reachable peer is cold — a rejoin must come up regardless)."""
        from .client import RemoteMemoClient

        installed = 0
        for host, port in parse_address_list(peers):
            if (host, port) == tuple(self.address):
                continue  # resyncing from ourselves is a no-op
            try:
                with RemoteMemoClient(
                    (host, port),
                    expect_tau=self.memo.tau,
                    expect_value_mode=self.memo.db_value_mode,
                    fail_open=False,
                    client_name=f"{self.name}-resync",
                ) as peer_client:
                    tree = peer_client.state_dict()
            except (OSError, ProtocolError) as exc:
                log.info("resync peer %s:%d unreachable: %s", host, port, exc)
                continue
            if memo_state_partitions(tree) or tree.get("encoder_state"):
                installed = self.push_state(tree)
            log.info(
                "resynced %d partitions from peer %s:%d", installed, host, port
            )
            obs.counter("net_server_resync_total", server=self.name).inc()
            return installed
        log.info("%s: no reachable resync peer — serving cold", self.name)
        return 0

    def _telemetry_collect(self) -> list[dict]:
        """Telemetry-plane collect hook: publish the traffic counters as
        ``net_server_*`` gauges (side effect into the registry, picked up
        by the same scrape) and return fresh-per-scrape
        ``memo_entry_age_seconds`` histogram entries from the per-entry
        heat metadata.  Runs on the scrape thread; the heat walk hops to
        each shard's worker thread so stores are read quiesced."""
        from ..obs.heat import age_histogram_entries, entry_records_from_store

        with self._lock:
            stats_now = ServerStats(**vars(self.stats))
        stats_now.publish(server=self.name)

        def walk(shard) -> list[dict]:
            records: list[dict] = []
            for (op, loc), db in shard._dbs.items():
                records.extend(
                    entry_records_from_store(db.values, op, shard.shard_id, loc)
                )
            return records

        all_records = [r for recs in self._on_all_shards(walk) for r in recs]
        return age_histogram_entries(all_records)

    def serve_metrics(self) -> dict:
        """The daemon's observability view: its own traffic counters plus a
        full registry snapshot (request/shard latency histograms included
        when observability is enabled in the server process)."""
        with self._lock:
            stats_now = ServerStats(**vars(self.stats))
        # publish outside the daemon lock, then snapshot, so the returned
        # registry view already carries the net_server_* gauges just set
        stats_now.publish(server=self.name)
        metrics = obs.snapshot()
        if not metrics:
            # observability disabled in this process: synthesize the traffic
            # counters as gauges so a metrics pull is never empty
            metrics = [
                {
                    "kind": "gauge",
                    "name": f"net_server_{field_name}",
                    "labels": {"server": self.name},
                    "value": float(value),
                    "max": float(value),
                }
                for field_name, value in sorted(stats_now.as_dict().items())
            ]
        return {
            "server": stats_now.as_dict(),
            "obs_enabled": obs.enabled(),
            "metrics": metrics,
        }

    def serve_stats(self, op: str | None) -> dict:
        """Per-shard statistics, entries and message counters in one body
        (the client derives the merged view)."""
        per_shard = self._on_all_shards(
            lambda shard: (shard.stats(op), shard.entries(op))
        )
        return {
            "op": op,
            "per_shard": [stats_to_wire(s) for s, _n in per_shard],
            "per_shard_entries": [int(n) for _s, n in per_shard],
            "query_messages": [int(s.query_messages) for s in self.router.shards],
            "insert_messages": [int(s.insert_messages) for s in self.router.shards],
        }

    # -- the connection protocol ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except OSError:
                return  # listener closed — shutting down
            with self._lock:
                self._conn_seq += 1
                conn_id = self._conn_seq
                self._conns[conn_id] = conn
                self.stats.connections += 1
                self.stats.active_connections += 1
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, conn_id, peer),
                name=f"{self.name}-conn{conn_id}",
                daemon=True,
            )
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket, conn_id: int, peer) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.idle_timeout_s is not None:
            # a hung or vanished peer can then never park this handler (or,
            # through a blocking read, a shard worker) forever: the recv
            # deadline turns silence into a FrameTimeout we reap below
            conn.settimeout(self.idle_timeout_s)
        conn = faults.wrap_socket(conn, f"server:{self.name}:conn{conn_id}")
        reader = (
            FrameReader(conn)
            if self._max_payload is None
            else FrameReader(conn, max_payload=self._max_payload)
        )
        try:
            try:
                conn_fp = self._handshake(conn, reader)
            except _AppError as exc:
                # rejected client (conflicting encoder): answer clearly, close
                with self._lock:
                    self.stats.app_errors += 1
                send_frame(conn, MSG_ERROR, 0, {"kind": "app", "message": str(exc)})
                return
            while not self._stop.is_set():
                try:
                    msg_type, request_id, body = reader.read_frame()
                except ConnectionClosed:
                    return
                t0 = time.monotonic()
                type_name = MESSAGE_NAMES.get(msg_type, str(msg_type))
                # the optional trace field stitches this handler span (and
                # its shard children) under the client's request span in a
                # merged dump; absent/malformed context -> a local root
                trace_ctx = (
                    trace_ctx_from_wire(body.get("trace"))
                    if isinstance(body, dict)
                    else None
                )
                try:
                    with obs.server_span(
                        "net_server.request", trace_ctx, type=type_name, conn=conn_id
                    ):
                        reply_type, reply = self._dispatch(msg_type, body, conn_fp)
                except _AppError as exc:
                    with self._lock:
                        self.stats.app_errors += 1
                    reply_type = MSG_ERROR
                    reply = {"kind": "app", "message": str(exc)}
                obs.histogram(
                    "net_server_request_seconds",
                    type=type_name,
                    conn=conn_id,
                ).observe(time.monotonic() - t0)
                send_frame(conn, reply_type, request_id, reply)
        except FrameTimeout as exc:
            # idle-connection reaping: quiet-between-frames is an expected
            # liveness event (the client reconnects on demand), mid-frame
            # silence is logged like any poisoned stream
            with self._lock:
                self.stats.idle_reaped += 1
            obs.counter("net_server_idle_reaped_total", server=self.name).inc()
            if exc.mid_frame:
                log.info("connection %d (%s): reaped %s", conn_id, peer, exc)
            self._bail(conn, exc)
        except ProtocolError as exc:
            with self._lock:
                self.stats.protocol_errors += 1
            log.info("connection %d (%s): %s", conn_id, peer, exc)
            self._bail(conn, exc)
        except OSError:
            pass  # peer vanished while we were replying
        except Exception as exc:  # noqa: BLE001 — a server bug must not hang the client
            log.exception("connection %d (%s): unexpected failure", conn_id, peer)
            self._bail(conn, ProtocolError(f"internal server error: {exc}"))
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.pop(conn_id, None)
                self.stats.active_connections -= 1

    def _handshake(self, conn: socket.socket, reader: FrameReader) -> dict | None:
        """First frame must be a version-compatible HELLO; anything else is
        answered with a typed error and the connection closes.  Returns the
        client's encoder fingerprint (re-checked per data request)."""
        msg_type, request_id, body = reader.read_frame()
        if msg_type != MSG_HELLO:
            raise MessageError(
                f"expected a hello frame first, got message type {msg_type}"
            )
        client_version = body.get("version") if isinstance(body, dict) else None
        if client_version != PROTOCOL_VERSION:
            raise VersionMismatch(
                f"client speaks protocol version {client_version!r}, this server "
                f"speaks {PROTOCOL_VERSION} — upgrade the older side"
            )
        conn_fp = body.get("encoder")
        self.check_client_encoder(conn_fp)
        send_frame(
            conn,
            MSG_HELLO_OK,
            request_id,
            {
                "version": PROTOCOL_VERSION,
                "server": self.name,
                "n_shards": self.router.n_shards,
                "tau": self.memo.tau,
                "value_mode": self.memo.db_value_mode,
                # capability advert: clients attach trace context only when
                # the feature is listed, so old servers never see the key
                "features": [FEATURE_TRACE],
            },
        )
        return conn_fp

    def _bail(self, conn: socket.socket, exc: ProtocolError) -> None:
        """Best-effort typed error frame before closing a poisoned stream."""
        try:
            send_frame(
                conn, MSG_ERROR, 0, {"kind": type(exc).__name__, "message": str(exc)}
            )
        except OSError:
            pass

    @staticmethod
    def _body_field(body, field_name: str):
        if not isinstance(body, dict) or field_name not in body:
            raise MessageError(f"request body missing {field_name!r}")
        return body[field_name]

    def _dispatch(self, msg_type: int, body, conn_fp: dict | None = None):
        if msg_type == MSG_QUERY:
            # an unpinned tier answers anyone (it can only miss); once data
            # pinned a provenance, conflicting clients must not read it
            self.check_client_encoder(conn_fp)
            queries = queries_from_wire(self._body_field(body, "queries"))
            outcomes = self.serve_query_batch(queries)
            with self._lock:
                self.stats.query_batches += 1
                self.stats.queries += len(queries)
            return MSG_QUERY_OK, {"outcomes": outcomes_to_wire(outcomes)}
        if msg_type == MSG_INSERT:
            self.check_client_encoder(conn_fp, pin=True)  # first data pins
            batch_tag = body.get("batch") if isinstance(body, dict) else None
            if batch_tag is not None:
                with self._lock:
                    if batch_tag in self._applied_batches:
                        self.stats.duplicate_insert_batches += 1
                        obs.counter(
                            "net_server_duplicate_batches_total", server=self.name
                        ).inc()
                        return MSG_INSERT_OK, {"ids": [], "duplicate": True}
                    # reserve before applying: a replay racing the original
                    # connection's in-flight application must not apply twice
                    self._applied_batches[str(batch_tag)] = None
                    while len(self._applied_batches) > self._dedup_window:
                        self._applied_batches.pop(next(iter(self._applied_batches)))
            inserts = inserts_from_wire(self._body_field(body, "inserts"))
            ids = self.serve_insert_batch(inserts)
            with self._lock:
                self.stats.insert_batches += 1
                self.stats.inserts += len(inserts)
            return MSG_INSERT_OK, {"ids": [int(i) for i in ids]}
        if msg_type == MSG_STATS:
            op = body.get("op") if isinstance(body, dict) else None
            with self._lock:
                self.stats.stats_pulls += 1
            return MSG_STATS_OK, self.serve_stats(None if op is None else str(op))
        if msg_type == MSG_SNAP_PUSH:
            installed = self.push_state(self._body_field(body, "tree"))
            with self._lock:
                self.stats.snapshot_pushes += 1
            return MSG_SNAP_PUSH_OK, {"partitions": installed}
        if msg_type == MSG_SNAP_PULL:
            tree = self.pull_state()
            with self._lock:
                self.stats.snapshot_pulls += 1
            return MSG_SNAP_PULL_OK, {"tree": tree}
        if msg_type == MSG_METRICS:
            with self._lock:
                self.stats.metrics_pulls += 1
            return MSG_METRICS_OK, self.serve_metrics()
        if msg_type == MSG_TRACE_PULL:
            # one-shot drain (not a copy): spans transfer to the puller, so
            # repeated pulls never re-ship the same records.  The handler's
            # own request span finishes after the drain and rides the next
            # pull — a stitched report is always one pull behind on itself
            spans, dropped = obs.drain_spans()
            with self._lock:
                self.stats.trace_pulls += 1
            return MSG_TRACE_PULL_OK, {
                "server": self.name,
                "obs_enabled": obs.enabled(),
                "spans": spans,
                "dropped": int(dropped),
            }
        if msg_type == MSG_PING:
            with self._lock:
                self.stats.pings += 1
            return MSG_PING_OK, {"server": self.name}
        raise MessageError(f"unknown request type {msg_type}")


# -- standalone entry point ----------------------------------------------------------------


def _metrics_dump(address: str) -> int:
    """Fetch a running server's metrics and print them as Prometheus text."""
    from ..obs.export import to_prometheus
    from .client import RemoteMemoClient

    with RemoteMemoClient(
        address, fail_open=False, client_name="metrics-dump"
    ) as client:
        payload = client.metrics()
    print(to_prometheus(payload["metrics"]), end="")
    return 0


def _trace_dump(address: str, out: str | None) -> int:
    """Drain a running server's span rings into a JSONL dump — the same
    format :func:`repro.obs.dump_jsonl` writes locally, so ``python -m
    repro.obs report local.jsonl server.jsonl`` stitches both sides of the
    wire into one cross-process trace tree."""
    from ..obs.export import dump_lines
    from .client import RemoteMemoClient

    with RemoteMemoClient(
        address, fail_open=False, client_name="trace-dump"
    ) as client:
        reply = client.trace_pull()
        payload = client.metrics()
    if reply is None:
        print(
            f"server at {address} does not advertise the trace feature",
            file=sys.stderr,
        )
        return 1
    lines = dump_lines(
        (payload or {}).get("metrics") or [],
        reply.get("spans") or [],
        int(reply.get("dropped") or 0),
    )
    text = "\n".join(lines) + "\n"
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def main(argv=None) -> int:
    """``python -m repro.net.server``: run a memo server in the foreground."""
    parser = argparse.ArgumentParser(
        description="mLR memo server daemon: shared remote memoization service"
    )
    parser.add_argument("--host", default="0.0.0.0", help="bind address")
    parser.add_argument("--port", type=int, default=9876, help="bind port (0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=4, help="database shards")
    parser.add_argument("--tau", type=float, default=0.92, help="similarity threshold")
    parser.add_argument(
        "--value-mode", choices=("array", "bytes"), default="array",
        help="value-store representation",
    )
    parser.add_argument(
        "--snapshot", default=None,
        help="snapshot directory for boot warm-start and persistence",
    )
    parser.add_argument(
        "--snapshot-interval", type=float, default=300.0,
        help="seconds between periodic snapshots (with --snapshot)",
    )
    parser.add_argument(
        "--metrics-dump", default=None, metavar="HOST:PORT",
        help="fetch a running server's metrics, print Prometheus text, exit",
    )
    parser.add_argument(
        "--trace-dump", default=None, metavar="HOST:PORT",
        help="drain a running server's span buffers into a JSONL dump "
             "(stdout or --out), stitchable with `python -m repro.obs report`",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="destination file for --trace-dump (default: stdout)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="reap connections idle longer than this (clients heartbeat "
             "with MSG_PING; default: never reap)",
    )
    parser.add_argument(
        "--peer", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="replica peer(s) to anti-entropy resync from at boot "
             "(first reachable peer wins; unreachable peers are skipped)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics /healthz /readyz /snapshot on this HTTP port "
             "(0 = ephemeral; default: no telemetry server)",
    )
    parser.add_argument(
        "--telemetry-host", default="127.0.0.1",
        help="bind address for --telemetry-port (default: 127.0.0.1)",
    )
    args = parser.parse_args(argv)
    if args.metrics_dump is not None:
        return _metrics_dump(args.metrics_dump)
    if args.trace_dump is not None:
        return _trace_dump(args.trace_dump, args.out)
    if args.peer is not None:
        # fail fast on a malformed list (the error names the bad element)
        # before binding a port the operator then has to clean up
        parse_address_list(args.peer)
    logging.basicConfig(level=logging.INFO, format="%(asctime)s %(name)s %(message)s")
    daemon = MemoServerDaemon(
        host=args.host,
        port=args.port,
        n_shards=args.shards,
        memo=MemoConfig(tau=args.tau, db_value_mode=args.value_mode),
        snapshot_path=args.snapshot,
        snapshot_interval_s=args.snapshot_interval if args.snapshot else None,
        idle_timeout_s=args.idle_timeout,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
    )
    if args.peer is not None:
        try:
            daemon.resync_from(args.peer)
        except Exception as exc:  # noqa: BLE001 — a failed resync must not kill boot
            log.warning("peer resync failed (%s) — serving with local state", exc)
    host, port = daemon.address
    log.info(
        "memo server listening on %s:%d (%d shards, tau=%g, %s values)",
        host, port, daemon.router.n_shards, daemon.memo.tau, daemon.memo.db_value_mode,
    )
    if daemon.telemetry is not None:
        log.info("telemetry plane at %s", daemon.telemetry.url)
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        log.info("shutting down")
    finally:
        daemon.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
