"""Replicated memo tier: one client fanned over N memo server replicas.

:class:`ReplicatedMemoClient` speaks the exact
:class:`~repro.core.memo_shard.MemoShardRouter` surface the single-server
:class:`~repro.net.client.RemoteMemoClient` does, so the distributed
executor swaps it in transparently when
``MemoConfig(server_address=[addr, ...], replication=N)`` names more than
one daemon.  Semantics:

- **inserts fan out to every live replica** — each replica accumulates
  the *full* tier, which is what makes failover reads answer identically
  to the no-fault run (memo hits are approximate reuse; a partial replica
  would change hit decisions, not just latency),
- **queries fail over per shard** — shard ``s`` prefers replica
  ``s % N`` (spreading read load deterministically) and walks the ring on
  failure, publishing ``net_client_failover_total{shard}``,
- **per-replica circuit breakers** (:class:`~repro.net.policy.CircuitBreaker`)
  gate every call: a replica that keeps failing is skipped without a
  connect attempt until its half-open probe succeeds; transitions publish
  the ``circuit_state{replica}`` gauge (0=closed, 1=half-open, 2=open),
- **background health loop + anti-entropy resync** — with
  ``heartbeat_interval_s`` set, a daemon thread pings every replica
  (MSG_PING), forces half-open probes, and when a replica that missed
  inserts (its *dirty* flag) comes back, pushes it a clean peer's full
  tier (partition-level union — the merge the snapshot path already
  speaks).  Leave it ``None`` for strictly deterministic runs (the chaos
  suite's bit-identity tests do): resync then happens on the next
  explicit :meth:`resync` call.

Fail-open mirrors the single-server client: all replicas down degrades
queries to all-miss and drops inserts (``fail_open=True``), while
deterministic misconfiguration — protocol version skew, tau / value-mode /
encoder mismatch on *any* replica — always raises.
"""

from __future__ import annotations

import logging
import threading

from ..core.memo_db import MemoDBStats, QueryOutcome
from ..core.memo_shard import shard_of_location
from ..obs import runtime as obs
from .client import NetClientStats, RemoteMemoClient, TransportUnavailable
from .policy import CIRCUIT_OPEN, RetryPolicy
from .wire import ProtocolError, RemoteError, VersionMismatch, parse_address_list

__all__ = ["ReplicatedMemoClient"]

log = logging.getLogger("repro.net.replicated")


class ReplicatedMemoClient:
    """Replica fan-out over :class:`RemoteMemoClient` instances.

    ``addresses`` is anything :func:`~repro.net.wire.parse_address_list`
    accepts; ``replication=N`` uses the first N entries (``None`` = all).
    Constructor semantics match the single client: a merely-down replica
    is tolerated (even all of them — the set degrades), deterministic
    misconfiguration raises immediately.
    """

    def __init__(
        self,
        addresses,
        replication: int | None = None,
        expect_tau: float | None = None,
        expect_value_mode: str | None = None,
        encoder_fingerprint: dict | None = None,
        fail_open: bool = True,
        n_shards_hint: int = 1,
        connect_timeout: float = 5.0,
        io_timeout: float | None = 60.0,
        backoff_initial_s: float = 0.05,
        backoff_max_s: float = 5.0,
        max_inflight: int = 8,
        client_name: str = "memo-client",
        retry_policy: RetryPolicy | None = None,
        heartbeat_interval_s: float | None = None,
    ) -> None:
        addrs = parse_address_list(addresses)
        if replication is not None:
            if not (1 <= replication <= len(addrs)):
                raise ValueError(
                    f"replication={replication} needs between 1 and "
                    f"{len(addrs)} addresses, got {len(addrs)}"
                )
            addrs = addrs[:replication]
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive, got {heartbeat_interval_s}"
            )
        self.addresses = addrs
        self.fail_open = fail_open
        self.client_name = client_name
        self.retry_policy = retry_policy or RetryPolicy(
            backoff_initial_s=backoff_initial_s, backoff_max_s=backoff_max_s
        )
        self.heartbeat_interval_s = heartbeat_interval_s
        # inner clients are constructed fail-open so a down replica does not
        # abort the set (deterministic misconfig still raises through), then
        # flipped to fail-closed: later transport failures must surface HERE,
        # where the failover/breaker logic decides what degrades
        self._clients: list[RemoteMemoClient] = []
        for i, addr in enumerate(addrs):
            client = RemoteMemoClient(
                addr,
                expect_tau=expect_tau,
                expect_value_mode=expect_value_mode,
                encoder_fingerprint=encoder_fingerprint,
                fail_open=True,
                n_shards_hint=n_shards_hint,
                connect_timeout=connect_timeout,
                io_timeout=io_timeout,
                backoff_initial_s=backoff_initial_s,
                backoff_max_s=backoff_max_s,
                max_inflight=max_inflight,
                client_name=f"{client_name}-r{i}",
                retry_policy=self.retry_policy,
            )
            client.fail_open = False
            self._clients.append(client)
        self._check_topology()
        self._breakers = [self.retry_policy.breaker() for _ in self._clients]
        self._lock = threading.Lock()
        #: replicas that missed one or more insert fan-outs while down and
        #: need an anti-entropy resync before they count as warm again
        self._dirty = [False] * len(self._clients)  # guarded-by: self._lock
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        if heartbeat_interval_s is not None:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name=f"{client_name}-health",
                daemon=True,
            )
            self._health_thread.start()

    def _check_topology(self) -> None:
        """Replicas disagreeing on shard count would route the same location
        to different shards — a deterministic misconfig, never degraded past."""
        counts = {
            c.n_shards for c in self._clients if c.server_info is not None
        }
        if len(counts) > 1:
            raise ValueError(
                f"replicas disagree on shard count ({sorted(counts)}) — "
                "every replica must run the same topology"
            )

    # -- replica health ------------------------------------------------------------------

    def _publish_circuit(self, r: int) -> None:
        host, port = self.addresses[r]
        obs.gauge("circuit_state", replica=f"{host}:{port}").set(
            self._breakers[r].state
        )

    def _allow(self, r: int) -> bool:
        ok = self._breakers[r].allow()
        self._publish_circuit(r)
        return ok

    def _success(self, r: int) -> None:
        self._breakers[r].record_success()
        self._publish_circuit(r)

    def _failure(self, r: int, exc: Exception) -> None:
        breaker = self._breakers[r]
        was_open = breaker.state == CIRCUIT_OPEN
        breaker.record_failure()
        self._publish_circuit(r)
        host, port = self.addresses[r]
        if not was_open and breaker.state == CIRCUIT_OPEN:
            # flight-record the moment the set loses a replica: the recent
            # spans show exactly what traffic was in flight when the breaker
            # tripped (a failed half-open probe re-dumps — each re-open is
            # its own incident)
            obs.flight_dump(
                "circuit-open",
                replica=f"{host}:{port}",
                client=self.client_name,
                error=f"{type(exc).__name__}: {exc}",
            )
        log.debug("%s: replica %s:%d failed: %s", self.client_name, host, port, exc)

    def _mark_dirty(self, r: int) -> None:
        with self._lock:
            self._dirty[r] = True

    def health(self) -> dict:
        """Replica -> {circuit, dirty, connected} — the health map."""
        with self._lock:
            dirty = list(self._dirty)
        return {
            f"{host}:{port}": {
                "circuit": self._breakers[r].state_name,
                "dirty": dirty[r],
                "connected": self._clients[r].connected,
            }
            for r, (host, port) in enumerate(self.addresses)
        }

    # -- the router surface --------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return max(c.n_shards for c in self._clients)

    def shard_of(self, location: int) -> int:
        return shard_of_location(location, self.n_shards)

    @property
    def connected(self) -> bool:
        return any(c.connected for c in self._clients)

    def replica_for(self, shard: int) -> int:
        """The preferred replica of ``shard`` (failover walks the ring)."""
        return shard % len(self._clients)

    def reset_backoff(self) -> None:
        for client in self._clients:
            client.reset_backoff()
        for breaker in self._breakers:
            breaker.force_probe()

    def query_batch(self, queries) -> list[QueryOutcome]:
        """Outcomes in request order; per-shard failover across replicas.
        Only when *every* replica fails does the batch degrade to all-miss
        (fail-open) — a single live replica keeps the run warm."""
        queries = list(queries)
        if not queries:
            return []
        n_replicas = len(self._clients)
        results: list[QueryOutcome | None] = [None] * len(queries)
        groups: dict[int, list[int]] = {}
        for i, q in enumerate(queries):
            groups.setdefault(
                self.replica_for(self.shard_of(q.location)), []
            ).append(i)
        for primary, idxs in groups.items():
            sub = [queries[i] for i in idxs]
            outcomes = None
            for k in range(n_replicas):
                r = (primary + k) % n_replicas
                if not self._allow(r):
                    continue
                try:
                    outcomes = self._clients[r].query_batch(sub)
                except (VersionMismatch, RemoteError, ValueError):
                    raise  # deterministic rejection — failover can't fix it
                except (OSError, ProtocolError) as exc:
                    self._failure(r, exc)
                    continue
                self._success(r)
                if k > 0:
                    for shard in {self.shard_of(q.location) for q in sub}:
                        obs.counter(
                            "net_client_failover_total", shard=shard
                        ).inc()
                break
            if outcomes is None:
                if not self.fail_open:
                    raise TransportUnavailable(
                        f"all {n_replicas} memo replicas are unreachable"
                    )
                obs.counter(
                    "net_client_degraded_total", kind="query_batch"
                ).inc()
                outcomes = [QueryOutcome(None, -2.0, -1, 0) for _ in sub]
            for i, outcome in zip(idxs, outcomes):
                results[i] = outcome
        return results

    def insert_batch(self, inserts) -> list[int]:
        """Fan one insert batch to every live replica; replicas that miss
        it are marked dirty for anti-entropy resync when they rejoin."""
        inserts = list(inserts)
        if not inserts:
            return []
        delivered = 0
        for r, client in enumerate(self._clients):
            if not self._allow(r):
                self._mark_dirty(r)
                continue
            try:
                client.insert_batch(inserts)
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                self._mark_dirty(r)
                continue
            self._success(r)
            delivered += 1
        if delivered == 0:
            if not self.fail_open:
                raise TransportUnavailable(
                    f"all {len(self._clients)} memo replicas are unreachable"
                )
            obs.counter("net_client_degraded_total", kind="insert_batch").inc()
        return [-1] * len(inserts)

    def flush(self) -> None:
        for r, client in enumerate(self._clients):
            try:
                client.flush()
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                self._mark_dirty(r)

    # -- single-replica reads (stats / snapshots), with failover -------------------------

    def _first_live(self, fn, *, what: str):
        """Run ``fn(client)`` against replicas in ring order, returning the
        first success; raises the last transport error when all fail."""
        last_exc: Exception | None = None
        for r, client in enumerate(self._clients):
            if not self._allow(r):
                continue
            try:
                result = fn(client)
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                last_exc = exc
                continue
            self._success(r)
            return result
        raise (
            last_exc
            if last_exc is not None
            else TransportUnavailable(f"no live replica for {what}")
        )

    def _stats_body(self, op: str | None):
        try:
            return self._first_live(
                lambda c: c._stats_body(op), what="stats"
            )
        except (VersionMismatch, RemoteError, ValueError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            obs.counter("net_client_degraded_total", kind="stats_pull").inc()
            return None

    def stats(self, op: str | None = None) -> MemoDBStats:
        body = self._stats_body(op)
        if body is None:
            return MemoDBStats()
        from .wire import stats_from_wire

        return MemoDBStats.merged(stats_from_wire(s) for s in body["per_shard"])

    def per_shard_stats(self, op: str | None = None) -> list[MemoDBStats]:
        body = self._stats_body(op)
        if body is None:
            return [MemoDBStats() for _ in range(self.n_shards)]
        from .wire import stats_from_wire

        return [stats_from_wire(s) for s in body["per_shard"]]

    def entries(self, op: str | None = None) -> int:
        return sum(self.per_shard_entries(op))

    def per_shard_entries(self, op: str | None = None) -> list[int]:
        body = self._stats_body(op)
        if body is None:
            return [0] * self.n_shards
        return [int(n) for n in body["per_shard_entries"]]

    def metrics(self) -> dict | None:
        """Every live replica's observability view, merged into one body:
        each replica's metric entries gain a ``replica="host:port"`` label
        (the replicas run identical workloads, so unlabeled copies would
        collide in a report), and the per-replica daemon counters ride under
        ``"replicas"``.  Each replica's daemon counters are also published
        into *this* process's registry as ``net_server_*{replica=...}``
        gauges, so a scheduler fronting a replicated tier surfaces them on
        its own ``/metrics`` scrape instead of burying them in the JSON
        body.  Pulls fail open *per replica* — a dead replica is skipped,
        not fatal; ``None`` only when no replica answered at all.  The
        single-server ``"server"`` key keeps the first replica's counters
        so existing callers read the merged body unchanged."""
        merged: list[dict] = []
        per_replica: dict[str, dict] = {}
        obs_any = False
        first_server: dict | None = None
        for r, client in enumerate(self._clients):
            if not self._allow(r):
                continue
            host, port = self.addresses[r]
            tag = f"{host}:{port}"
            try:
                payload = client.metrics()
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                continue
            self._success(r)
            if not isinstance(payload, dict):
                continue
            if first_server is None:
                first_server = payload.get("server")
            per_replica[tag] = payload.get("server") or {}
            self._publish_replica_counters(tag, per_replica[tag])
            obs_any = obs_any or bool(payload.get("obs_enabled"))
            for entry in payload.get("metrics") or []:
                if isinstance(entry, dict):
                    entry = dict(entry)
                    entry["labels"] = {**(entry.get("labels") or {}), "replica": tag}
                    merged.append(entry)
        if not per_replica:
            if not self.fail_open:
                raise TransportUnavailable("no live replica for metrics")
            return None
        return {
            "server": first_server,
            "replicas": per_replica,
            "obs_enabled": obs_any,
            "metrics": merged,
        }

    @staticmethod
    def _publish_replica_counters(tag: str, counters: dict) -> None:
        """Mirror one replica's daemon counters into the local registry via
        the same ``ServerStats.publish`` seam the daemon itself uses, with
        the replica tag as the distinguishing label.  Fields are filtered
        to the ones this build knows so a version-skewed replica degrades
        to partial gauges instead of a crash."""
        if not obs.enabled() or not counters:
            return
        from dataclasses import fields

        from .server import ServerStats  # lazy: client side must not need daemon code at import

        known = {f.name for f in fields(ServerStats)}
        ServerStats(
            **{k: v for k, v in counters.items() if k in known}
        ).publish(replica=tag)

    def trace_pull(self) -> dict | None:
        """Drain the span buffers of every live replica into one body.
        Spans already carry their origin process (the ``proc`` field), so
        the merge is a plain concatenation; replicas that predate the trace
        feature contribute nothing.  ``None`` when no replica answered."""
        spans: list[dict] = []
        servers: list[str] = []
        dropped = 0
        obs_any = False
        answered = False
        for r, client in enumerate(self._clients):
            if not self._allow(r):
                continue
            try:
                reply = client.trace_pull()
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                continue
            self._success(r)
            if not isinstance(reply, dict):
                continue  # pre-trace replica: nothing to drain
            answered = True
            servers.append(str(reply.get("server")))
            obs_any = obs_any or bool(reply.get("obs_enabled"))
            spans.extend(
                s for s in (reply.get("spans") or []) if isinstance(s, dict)
            )
            dropped += int(reply.get("dropped") or 0)
        if not answered:
            if not self.fail_open:
                raise TransportUnavailable("no live replica for trace pull")
            return None
        return {
            "server": ",".join(servers),
            "servers": servers,
            "obs_enabled": obs_any,
            "spans": spans,
            "dropped": dropped,
        }

    @property
    def net_stats(self) -> NetClientStats:
        """Transport counters summed across all replica connections."""
        total = NetClientStats()
        for client in self._clients:
            for field_name, value in vars(client.net_stats).items():
                setattr(total, field_name, getattr(total, field_name) + value)
        return total

    def per_replica_net_stats(self) -> list[NetClientStats]:
        return [NetClientStats(**vars(c.net_stats)) for c in self._clients]

    # -- snapshot surface ----------------------------------------------------------------

    def state_dict(self) -> dict:
        """The merged tier, read from the first live replica (replicas are
        kept identical by the fan-out + resync invariant)."""
        try:
            return self._first_live(lambda c: c.state_dict(), what="snapshot pull")
        except (VersionMismatch, RemoteError, ValueError):
            raise
        except (OSError, ProtocolError) as exc:
            if not self.fail_open:
                raise
            log.warning("replicated snapshot pull degraded to empty: %s", exc)
            return {"layout": "single", "partitions": []}

    def push_state(self, tree: dict) -> bool:
        """Seed every live replica with ``tree`` (the others go dirty)."""
        pushed = False
        for r, client in enumerate(self._clients):
            if not self._allow(r):
                self._mark_dirty(r)
                continue
            try:
                client.push_state(tree)
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                self._mark_dirty(r)
                continue
            self._success(r)
            pushed = True
        if not pushed and not self.fail_open:
            raise TransportUnavailable("no live replica accepted the push")
        return pushed

    def load_state(self, tree: dict) -> None:
        self.push_state(tree)

    # -- anti-entropy --------------------------------------------------------------------

    def resync(self, replica: int | None = None) -> int:
        """Push a clean replica's full tier to dirty replicas that answer
        again.  ``replica`` targets one index (``None`` = every dirty one).
        Returns how many replicas were resynced."""
        with self._lock:
            targets = [
                r
                for r in range(len(self._clients))
                if self._dirty[r] and (replica is None or r == replica)
            ]
        if not targets:
            return 0
        # a donor is a live replica that never missed a fan-out
        with self._lock:
            donors = [
                r for r in range(len(self._clients)) if not self._dirty[r]
            ]
        tree = None
        for r in donors:
            if not self._allow(r):
                continue
            try:
                tree = self._clients[r].state_dict()
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                continue
            self._success(r)
            break
        if tree is None:
            return 0
        resynced = 0
        for r in targets:
            if not self._allow(r):
                continue
            try:
                self._clients[r].push_state(tree)
            except (VersionMismatch, RemoteError, ValueError):
                raise
            except (OSError, ProtocolError) as exc:
                self._failure(r, exc)
                continue
            self._success(r)
            with self._lock:
                self._dirty[r] = False
            resynced += 1
            host, port = self.addresses[r]
            log.info(
                "%s: resynced rejoined replica %s:%d",
                self.client_name, host, port,
            )
            obs.counter("net_client_resync_total", replica=f"{host}:{port}").inc()
        return resynced

    def _health_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            for r, client in enumerate(self._clients):
                breaker = self._breakers[r]
                if breaker.state == CIRCUIT_OPEN:
                    # the health loop IS the probe driver: collapse the open
                    # window instead of waiting out reset_timeout_s
                    breaker.force_probe()
                if not self._allow(r):
                    continue
                try:
                    client.reset_backoff()  # health checks skip the connect window
                    ok = client.ping()
                except (VersionMismatch, RemoteError, ValueError):
                    # a replica reconfigured underneath us: keep it out of
                    # rotation (breaker opens), but never kill the caller's
                    # run from a background thread
                    self._breakers[r].record_failure()
                    self._publish_circuit(r)
                    continue
                except (OSError, ProtocolError) as exc:
                    self._failure(r, exc)
                    continue
                if ok:
                    self._success(r)
                else:
                    self._failure(r, TransportUnavailable("ping failed"))
            with self._lock:
                any_dirty = any(self._dirty)
            if any_dirty:
                try:
                    self.resync()
                except (VersionMismatch, RemoteError, ValueError) as exc:
                    log.warning(
                        "%s: background resync rejected: %s", self.client_name, exc
                    )

    # -- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ReplicatedMemoClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedMemoClient({self.address_str!r}, "
            f"live={sum(c.connected for c in self._clients)}/{len(self._clients)})"
        )

    @property
    def address_str(self) -> str:
        return ",".join(f"{h}:{p}" for h, p in self.addresses)
