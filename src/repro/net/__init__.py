"""Remote memoization transport: the memo service as a network service.

The paper's memoization tier pays off most when tau-similar chunks recur
*across* scans and hosts; this package puts a wire protocol between the
compute side and the shard service so multiple beamline hosts share one
memo tier:

- :mod:`repro.net.wire` — length-prefixed, versioned, checksummed binary
  framing with typed request/response messages (array payloads reuse the
  kvstore ``encode_array`` codec),
- :mod:`repro.net.server` — :class:`MemoServerDaemon`, a threaded TCP
  daemon hosting a :class:`~repro.core.memo_shard.MemoShardRouter` with
  shards mapped to worker threads (run it with
  ``python -m repro.net.server``),
- :mod:`repro.net.client` — :class:`RemoteMemoClient`, the same batched
  query/insert surface as the in-process router, with request pipelining,
  reconnect-with-backoff, and fail-open degradation to cold compute,
- :mod:`repro.net.snapshot_store` — :class:`RemoteSnapshotStore`, the
  scheduler-side push/pull tier for cross-host warm starts.

Select it with ``MemoConfig(transport="tcp", server_address=...)`` (compute
side) or ``ServiceConfig(memo_transport="tcp", memo_server=...)``
(scheduler side); ``transport="inproc"`` keeps everything in process and
bit-identical behavior is asserted between the two.
"""

from .client import NetClientStats, RemoteMemoClient, TransportUnavailable
from .server import MemoServerDaemon, ServerStats
from .snapshot_store import RemoteSnapshotStore
from .wire import (
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    ChecksumError,
    ConnectionClosed,
    FrameError,
    FrameReader,
    MessageError,
    ProtocolError,
    RemoteError,
    TruncatedFrame,
    VersionMismatch,
    parse_address,
)

__all__ = [
    "NetClientStats",
    "RemoteMemoClient",
    "TransportUnavailable",
    "MemoServerDaemon",
    "ServerStats",
    "RemoteSnapshotStore",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "ChecksumError",
    "ConnectionClosed",
    "FrameError",
    "FrameReader",
    "MessageError",
    "ProtocolError",
    "RemoteError",
    "TruncatedFrame",
    "VersionMismatch",
    "parse_address",
]
