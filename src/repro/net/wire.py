"""Wire protocol of the remote memoization transport.

Every message between a compute host and the memo server travels as one
**frame**::

    magic (4s) | version (u8) | msg type (u8) | flags (u16, reserved)
    | request id (u64) | payload length (u64) | payload crc32 (u32)
    | payload (length bytes)

The header is fixed-size and little-endian; the payload is the recursive
binary encoding of :func:`pack_obj` — ``None`` / bools / ints / floats /
complex / str / bytes / lists / dicts, with ndarrays framed by the existing
:func:`repro.kvstore.serialization.encode_array` codec (so array payloads
are exactly the store's portable little-endian wire format).  A crc32 over
the payload catches truncation and corruption before any payload byte is
interpreted.

Failure behavior is the protocol's core contract: malformed input raises a
*typed* :class:`ProtocolError` subclass — :class:`FrameError` (bad magic,
header, or declared length), :class:`TruncatedFrame` (the peer vanished
mid-frame), :class:`ChecksumError`, :class:`MessageError` (undecodable
payload), :class:`VersionMismatch` — and never hangs a connection or leaks
a partial frame into the next read.  A clean EOF *between* frames raises
:class:`ConnectionClosed`, which callers treat as an orderly goodbye.

Request/response pairing is by ``request id``: a server echoes the id of
the request it is answering, which is what lets clients pipeline requests
(send several, drain the acknowledgements later) over one ordered TCP
stream.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.memo_db import MemoDBStats, QueryOutcome
from ..core.memo_shard import ShardInsert, ShardQuery
from ..kvstore.serialization import decode_array, encode_array

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD_BYTES",
    "MSG_HELLO",
    "MSG_HELLO_OK",
    "MSG_QUERY",
    "MSG_QUERY_OK",
    "MSG_INSERT",
    "MSG_INSERT_OK",
    "MSG_STATS",
    "MSG_STATS_OK",
    "MSG_SNAP_PUSH",
    "MSG_SNAP_PUSH_OK",
    "MSG_SNAP_PULL",
    "MSG_SNAP_PULL_OK",
    "MSG_METRICS",
    "MSG_METRICS_OK",
    "MSG_PING",
    "MSG_PING_OK",
    "MSG_PONG",
    "MSG_TRACE_PULL",
    "MSG_TRACE_PULL_OK",
    "MSG_ERROR",
    "MESSAGE_NAMES",
    "FEATURE_TRACE",
    "trace_ctx_to_wire",
    "trace_ctx_from_wire",
    "ProtocolError",
    "FrameError",
    "TruncatedFrame",
    "FrameTimeout",
    "ChecksumError",
    "MessageError",
    "VersionMismatch",
    "ConnectionClosed",
    "RemoteError",
    "pack_obj",
    "unpack_obj",
    "encode_frame",
    "send_frame",
    "FrameReader",
    "parse_address",
    "parse_address_list",
    "queries_to_wire",
    "queries_from_wire",
    "inserts_to_wire",
    "inserts_from_wire",
    "outcomes_to_wire",
    "outcomes_from_wire",
    "stats_to_wire",
    "stats_from_wire",
]

PROTOCOL_VERSION = 1

#: refuse to allocate for absurd declared lengths (corrupt or hostile frames)
MAX_PAYLOAD_BYTES = 1 << 33  # 8 GiB

_MAGIC = b"mLRn"
_HEADER = struct.Struct("<4sBBHQQI")  # magic, version, type, flags, req id, len, crc

# -- message types -------------------------------------------------------------------------

MSG_HELLO = 1
MSG_HELLO_OK = 2
MSG_QUERY = 3
MSG_QUERY_OK = 4
MSG_INSERT = 5
MSG_INSERT_OK = 6
MSG_STATS = 7
MSG_STATS_OK = 8
MSG_SNAP_PUSH = 9
MSG_SNAP_PUSH_OK = 10
MSG_SNAP_PULL = 11
MSG_SNAP_PULL_OK = 12
MSG_METRICS = 13
MSG_METRICS_OK = 14
MSG_PING = 15
MSG_PING_OK = 16
MSG_TRACE_PULL = 17
MSG_TRACE_PULL_OK = 18
MSG_ERROR = 255

#: heartbeats read better as ping/pong; the pong *is* the ping's ok-reply
MSG_PONG = MSG_PING_OK

MESSAGE_NAMES = {
    MSG_HELLO: "hello",
    MSG_HELLO_OK: "hello_ok",
    MSG_QUERY: "query_batch",
    MSG_QUERY_OK: "query_batch_ok",
    MSG_INSERT: "insert_batch",
    MSG_INSERT_OK: "insert_batch_ok",
    MSG_STATS: "stats",
    MSG_STATS_OK: "stats_ok",
    MSG_SNAP_PUSH: "snapshot_push",
    MSG_SNAP_PUSH_OK: "snapshot_push_ok",
    MSG_SNAP_PULL: "snapshot_pull",
    MSG_SNAP_PULL_OK: "snapshot_pull_ok",
    MSG_METRICS: "metrics",
    MSG_METRICS_OK: "metrics_ok",
    MSG_PING: "ping",
    MSG_PING_OK: "pong",
    MSG_TRACE_PULL: "trace_pull",
    MSG_TRACE_PULL_OK: "trace_pull_ok",
    MSG_ERROR: "error",
}

# -- trace-context propagation -------------------------------------------------------------
#
# Distributed tracing rides requests as an OPTIONAL "trace" dict in the
# message body — never a new header field — so frames without it are
# byte-identical to pre-trace builds (observability off costs zero wire
# bytes) and old peers interop: servers advertise FEATURE_TRACE in their
# HELLO_OK "features" list, and clients only attach the field to servers
# that advertised it; dict bodies tolerate unknown keys on both sides.

#: HELLO_OK feature token: this server understands the "trace" request
#: field and answers MSG_TRACE_PULL
FEATURE_TRACE = "trace"


def trace_ctx_to_wire(ctx) -> dict | None:
    """Encode a ``(trace_id, span_id)`` pair as the request's optional
    ``"trace"`` field (``None`` passes through: nothing to propagate)."""
    if ctx is None:
        return None
    trace_id, span_id = ctx
    return {"tid": int(trace_id), "sid": int(span_id)}


def trace_ctx_from_wire(node) -> dict | None:
    """Validate an incoming ``"trace"`` field: both ids must be ints
    (bools excluded — they pack as ints' cousins but are never span ids).
    Anything malformed returns ``None``; a hostile peer must not be able
    to break a request handler through its trace annotation."""
    if not isinstance(node, dict):
        return None
    tid, sid = node.get("tid"), node.get("sid")
    if (
        isinstance(tid, int)
        and isinstance(sid, int)
        and not isinstance(tid, bool)
        and not isinstance(sid, bool)
    ):
        return {"tid": tid, "sid": sid}
    return None


# -- typed protocol errors -----------------------------------------------------------------


class ProtocolError(RuntimeError):
    """Base of every wire-level failure; connections raising it must close."""


class FrameError(ProtocolError):
    """Bad magic, malformed header, or an inadmissible declared length."""


class TruncatedFrame(ProtocolError):
    """The stream ended (or errored) in the middle of a frame."""


class FrameTimeout(ProtocolError):
    """The socket's recv deadline expired while waiting for frame bytes.

    Carries ``mid_frame``: ``False`` means the peer simply went quiet
    between frames (idle — the server reaps such connections), ``True``
    means it hung *inside* a frame, which poisons the stream exactly like
    a truncation would."""

    def __init__(self, message: str, mid_frame: bool = False) -> None:
        super().__init__(message)
        self.mid_frame = mid_frame


class ChecksumError(ProtocolError):
    """Payload bytes do not match the frame's crc32."""


class MessageError(ProtocolError):
    """The payload decoded, but not into a valid message object."""


class VersionMismatch(ProtocolError):
    """Peer speaks a different protocol version; fail fast, never guess."""


class ConnectionClosed(ProtocolError):
    """Orderly EOF at a frame boundary (distinct from a truncation)."""


class RemoteError(ProtocolError):
    """The server answered with an MSG_ERROR frame; carries its message."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


# -- recursive payload codec ---------------------------------------------------------------
#
# One tag byte per node.  Arrays defer to encode_array, so the numeric
# payloads (keys, values, snapshot blobs) share the store's exact format.

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"f"
_T_COMPLEX = b"c"
_T_STR = b"s"
_T_BYTES = b"y"
_T_ARRAY = b"a"
_T_LIST = b"l"
_T_DICT = b"d"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_C128 = struct.Struct("<dd")


def _pack_into(obj, out: bytearray) -> None:
    if obj is None:
        out += _T_NONE
    elif isinstance(obj, (bool, np.bool_)):
        out += _T_TRUE if obj else _T_FALSE
    elif isinstance(obj, (int, np.integer)):
        try:
            out += _T_INT + _I64.pack(int(obj))
        except struct.error:
            raise MessageError(f"integer {obj!r} exceeds the wire's i64 range") from None
    elif isinstance(obj, (float, np.floating)):
        out += _T_FLOAT + _F64.pack(float(obj))
    elif isinstance(obj, (complex, np.complexfloating)):
        c = complex(obj)
        out += _T_COMPLEX + _C128.pack(c.real, c.imag)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += _T_STR + _U32.pack(len(raw)) + raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out += _T_BYTES + _U64.pack(len(raw)) + raw
    elif isinstance(obj, np.ndarray):
        raw = encode_array(obj)
        out += _T_ARRAY + _U64.pack(len(raw)) + raw
    elif isinstance(obj, (list, tuple)):
        out += _T_LIST + _U32.pack(len(obj))
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, dict):
        out += _T_DICT + _U32.pack(len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise MessageError(f"message dict keys must be str, got {key!r}")
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw)) + raw
            _pack_into(value, out)
    else:
        raise MessageError(f"unserializable message node {type(obj).__name__}")


def pack_obj(obj) -> bytes:
    """Encode one message object (tree of plain python + ndarrays)."""
    out = bytearray()
    _pack_into(obj, out)
    return bytes(out)


def _need(raw: bytes, off: int, n: int) -> None:
    if off + n > len(raw):
        raise MessageError("payload ends inside a value")


def _unpack_from(raw: bytes, off: int):
    _need(raw, off, 1)
    tag = raw[off : off + 1]
    off += 1
    if tag == _T_NONE:
        return None, off
    if tag == _T_TRUE:
        return True, off
    if tag == _T_FALSE:
        return False, off
    if tag == _T_INT:
        _need(raw, off, 8)
        return _I64.unpack_from(raw, off)[0], off + 8
    if tag == _T_FLOAT:
        _need(raw, off, 8)
        return _F64.unpack_from(raw, off)[0], off + 8
    if tag == _T_COMPLEX:
        _need(raw, off, 16)
        re, im = _C128.unpack_from(raw, off)
        return complex(re, im), off + 16
    if tag == _T_STR:
        _need(raw, off, 4)
        n = _U32.unpack_from(raw, off)[0]
        off += 4
        _need(raw, off, n)
        try:
            return raw[off : off + n].decode("utf-8"), off + n
        except UnicodeDecodeError as exc:
            raise MessageError(f"invalid utf-8 in string value: {exc}") from None
    if tag == _T_BYTES:
        _need(raw, off, 8)
        n = _U64.unpack_from(raw, off)[0]
        off += 8
        _need(raw, off, n)
        return raw[off : off + n], off + n
    if tag == _T_ARRAY:
        _need(raw, off, 8)
        n = _U64.unpack_from(raw, off)[0]
        off += 8
        _need(raw, off, n)
        try:
            return decode_array(raw[off : off + n]), off + n
        except (ValueError, TypeError) as exc:
            raise MessageError(f"bad array payload: {exc}") from None
    if tag == _T_LIST:
        _need(raw, off, 4)
        n = _U32.unpack_from(raw, off)[0]
        off += 4
        items = []
        for _ in range(n):
            item, off = _unpack_from(raw, off)
            items.append(item)
        return items, off
    if tag == _T_DICT:
        _need(raw, off, 4)
        n = _U32.unpack_from(raw, off)[0]
        off += 4
        out = {}
        for _ in range(n):
            _need(raw, off, 4)
            klen = _U32.unpack_from(raw, off)[0]
            off += 4
            _need(raw, off, klen)
            try:
                key = raw[off : off + klen].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise MessageError(f"invalid utf-8 in dict key: {exc}") from None
            off += klen
            out[key], off = _unpack_from(raw, off)
        return out, off
    raise MessageError(f"unknown payload tag {tag!r}")


def unpack_obj(raw: bytes):
    """Decode one :func:`pack_obj` payload; trailing garbage is an error."""
    obj, off = _unpack_from(raw, 0)
    if off != len(raw):
        raise MessageError(f"{len(raw) - off} trailing bytes after message")
    return obj


# -- framing -------------------------------------------------------------------------------


def encode_frame(msg_type: int, request_id: int, obj) -> bytes:
    """One complete frame (header + payload) for ``obj``."""
    payload = pack_obj(obj)
    header = _HEADER.pack(
        _MAGIC,
        PROTOCOL_VERSION,
        msg_type,
        0,
        request_id,
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


def send_frame(sock, msg_type: int, request_id: int, obj) -> None:
    """Frame and transmit one message on a connected socket."""
    sock.sendall(encode_frame(msg_type, request_id, obj))


class FrameReader:
    """Incremental frame decoder over a socket (per-connection framing state).

    Holds the partial-read buffer between calls, so one reader must own the
    receiving side of a connection for its whole life.  ``read_frame``
    blocks until a full frame is buffered and returns
    ``(msg_type, request_id, payload_obj)``.
    """

    def __init__(self, sock, max_payload: int = MAX_PAYLOAD_BYTES) -> None:
        self._sock = sock
        self._max_payload = max_payload
        self._buf = bytearray()

    def _fill(self, n: int, started: bool) -> None:
        """Buffer at least ``n`` bytes; EOF raises ConnectionClosed at a
        frame boundary (``started=False``) and TruncatedFrame inside one."""
        while len(self._buf) < n:
            try:
                chunk = self._sock.recv(1 << 18)
            except TimeoutError as exc:
                # a recv deadline expiring is a *liveness* signal, not a
                # malformed stream: between frames it means the peer is idle
                # (reapable), inside one it means the peer hung mid-message
                mid = started or bool(self._buf)
                raise FrameTimeout(
                    f"recv deadline expired "
                    f"{'mid-frame' if mid else 'between frames'} "
                    f"({len(self._buf)}/{n} bytes buffered)",
                    mid_frame=mid,
                ) from exc
            except OSError as exc:
                raise TruncatedFrame(f"connection lost mid-frame: {exc}") from exc
            if not chunk:
                if started or self._buf:
                    raise TruncatedFrame(
                        f"peer closed mid-frame ({len(self._buf)}/{n} bytes buffered)"
                    )
                raise ConnectionClosed("peer closed the connection")
            self._buf += chunk

    def read_frame(self):
        """Read and validate one frame; raises typed errors, never hangs on
        malformed input (a bad frame poisons the stream, so callers close)."""
        self._fill(_HEADER.size, started=False)
        magic, version, msg_type, _flags, request_id, length, crc = _HEADER.unpack_from(
            self._buf, 0
        )
        if magic != _MAGIC:
            raise FrameError(
                f"bad frame magic {bytes(magic)!r} (expected {_MAGIC!r}) — "
                "peer is not speaking the mLR memo protocol"
            )
        if version != PROTOCOL_VERSION:
            raise VersionMismatch(
                f"peer speaks protocol version {version}, this build speaks "
                f"{PROTOCOL_VERSION} — upgrade the older side"
            )
        if length > self._max_payload:
            raise FrameError(
                f"declared payload of {length} bytes exceeds the "
                f"{self._max_payload}-byte limit"
            )
        self._fill(_HEADER.size + length, started=True)
        payload = bytes(self._buf[_HEADER.size : _HEADER.size + length])
        del self._buf[: _HEADER.size + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ChecksumError("payload crc32 mismatch — frame corrupted in transit")
        return msg_type, request_id, unpack_obj(payload)


# -- typed message bodies ------------------------------------------------------------------
#
# The request/response payloads the daemon and clients exchange, as
# conversions between the core service types (ShardQuery / ShardInsert /
# QueryOutcome / MemoDBStats) and plain pack_obj trees.  Both ends share
# these, so a field added here is added to the whole protocol at once.


def _meta_to_wire(meta):
    """Reuse metadata on the wire: ``None`` or the engine's (AC, DC) pair."""
    if meta is None:
        return None
    try:
        ac, dc = meta
        return {"ac": float(ac), "dc": complex(dc)}
    except (TypeError, ValueError):
        raise MessageError(
            f"reuse metadata must be None or an (ac, dc) pair, got {meta!r}"
        ) from None


def _meta_from_wire(node):
    if node is None:
        return None
    if not isinstance(node, dict) or "ac" not in node or "dc" not in node:
        raise MessageError(f"bad reuse-metadata node {node!r}")
    return float(node["ac"]), complex(node["dc"])


def queries_to_wire(queries) -> list[dict]:
    """MSG_QUERY body: one coalesced key batch."""
    return [
        {"op": q.op, "location": int(q.location), "key": np.asarray(q.key)}
        for q in queries
    ]


def _wire_array(node, what: str) -> np.ndarray:
    if not isinstance(node, np.ndarray):
        raise MessageError(f"{what} must be an array payload, got {type(node).__name__}")
    return node


def queries_from_wire(items) -> list[ShardQuery]:
    try:
        return [
            ShardQuery(
                op=str(it["op"]),
                location=int(it["location"]),
                key=_wire_array(it["key"], "query key"),
            )
            for it in items
        ]
    except (TypeError, KeyError, ValueError) as exc:
        raise MessageError(f"malformed query batch: {exc!r}") from None


def inserts_to_wire(inserts) -> list[dict]:
    """MSG_INSERT body: one batched (key, value, meta) message."""
    return [
        {
            "op": ins.op,
            "location": int(ins.location),
            "key": np.asarray(ins.key),
            "value": np.asarray(ins.value),
            "meta": _meta_to_wire(ins.meta),
        }
        for ins in inserts
    ]


def inserts_from_wire(items) -> list[ShardInsert]:
    try:
        return [
            ShardInsert(
                op=str(it["op"]),
                location=int(it["location"]),
                key=_wire_array(it["key"], "insert key"),
                value=_wire_array(it["value"], "insert value"),
                meta=_meta_from_wire(it["meta"]),
            )
            for it in items
        ]
    except (TypeError, KeyError, ValueError) as exc:
        raise MessageError(f"malformed insert batch: {exc!r}") from None


def outcomes_to_wire(outcomes) -> list[dict]:
    """MSG_QUERY_OK body: per-key outcomes, hit values as array payloads."""
    return [
        {
            "value": o.value if o.hit else None,
            "similarity": float(o.similarity),
            "matched_id": int(o.matched_id),
            "n_entries": int(o.n_entries),
            "meta": _meta_to_wire(o.stored_meta),
        }
        for o in outcomes
    ]


def outcomes_from_wire(items) -> list[QueryOutcome]:
    try:
        return [
            QueryOutcome(
                value=None if it["value"] is None else _wire_array(it["value"], "hit value"),
                similarity=float(it["similarity"]),
                matched_id=int(it["matched_id"]),
                n_entries=int(it["n_entries"]),
                stored_meta=_meta_from_wire(it["meta"]),
            )
            for it in items
        ]
    except (TypeError, KeyError) as exc:
        raise MessageError(f"malformed outcome batch: {exc!r}") from None


def stats_to_wire(stats: MemoDBStats) -> dict:
    return stats.as_dict()


def stats_from_wire(node) -> MemoDBStats:
    try:
        return MemoDBStats(**{k: int(v) for k, v in node.items()})
    except (TypeError, AttributeError) as exc:
        raise MessageError(f"malformed stats node {node!r}: {exc!r}") from None


def parse_address(address) -> tuple[str, int]:
    """Normalize ``"host:port"`` strings and ``(host, port)`` pairs."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        # a remaining ':' in host means a bare IPv6 literal ('::1') or a
        # multi-colon typo — misparsing those into (host, port) buys a
        # confusing connect failure, so fail fast instead (IPv6 endpoints
        # can be passed as an explicit (host, port) pair)
        if sep and port.isdigit() and ":" not in host:
            return host or "127.0.0.1", int(port)
    raise ValueError(
        f"expected 'host:port' or a (host, port) pair, got {address!r}"
    )


def parse_address_list(addresses) -> list[tuple[str, int]]:
    """Normalize every accepted replica-list spelling into address pairs.

    Accepts a single ``"host:port"`` string, a comma-separated
    ``"h1:p1,h2:p2"`` string, one ``(host, port)`` pair, or a list/tuple
    mixing any single-address form.  Validation errors name the element
    that failed, so ``--server a:1,b`` reports ``'b'``, not the whole
    list.  Duplicate addresses are rejected: a replica set with the same
    endpoint twice silently halves its real redundancy."""
    if isinstance(addresses, str):
        items = [part.strip() for part in addresses.split(",") if part.strip()]
        if not items:
            raise ValueError(f"empty address list {addresses!r}")
    elif isinstance(addresses, (tuple, list)):
        if (
            len(addresses) == 2
            and isinstance(addresses[0], str)
            and isinstance(addresses[1], int)
        ):
            items = [addresses]  # one (host, port) pair, not two addresses
        else:
            items = list(addresses)
            if not items:
                raise ValueError("empty address list")
    else:
        raise ValueError(
            f"expected an address or list of addresses, got {addresses!r}"
        )
    parsed: list[tuple[str, int]] = []
    for item in items:
        try:
            addr = parse_address(item)
        except ValueError as exc:
            raise ValueError(f"bad address element {item!r}: {exc}") from None
        if addr in parsed:
            raise ValueError(
                f"duplicate address element {item!r} — each replica must be a "
                "distinct endpoint"
            )
        parsed.append(addr)
    return parsed
