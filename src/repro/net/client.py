"""Remote memo client: the :class:`~repro.core.memo_shard.MemoShardRouter`
surface over a TCP connection to a :class:`~repro.net.server.MemoServerDaemon`.

:class:`RemoteMemoClient` is what the distributed executor swaps in when
``MemoConfig(transport="tcp")`` is set: it speaks the same batched
``query_batch`` / ``insert_batch`` / ``stats`` / ``state_dict`` vocabulary
as the in-process router, so every caller above it is transport-blind.

Three behaviors define it:

- **request pipelining** — insert batches (asynchronous in the paper:
  nothing in a sweep depends on them) are transmitted without waiting for
  the acknowledgement; acks are drained opportunistically before the next
  synchronous request, so the insert round trip overlaps the next sweep's
  compute,
- **reconnect with backoff** — a lost connection schedules an exponentially
  backed-off retry; every call transparently reconnects once the retry
  window opens,
- **fail-open** — with ``fail_open=True`` (the default) a dead or
  unreachable server degrades queries to all-miss outcomes and drops
  inserts/stats on the floor: the reconstruction continues on cold compute
  and *never* fails because the memo tier did.  Deterministic
  misconfiguration (protocol version skew, tau / value-mode mismatch
  against the server) always raises — a mismatched tier would silently
  change hit/miss decisions, which is worse than unavailability.
"""

from __future__ import annotations

import itertools
import logging
import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..core.memo_db import MemoDBStats, QueryOutcome
from ..core.memo_shard import shard_of_location
from ..faults import runtime as faults
from ..obs import runtime as obs
from .policy import RetryPolicy, seed_from_name
from .wire import (
    FEATURE_TRACE,
    MESSAGE_NAMES,
    MSG_ERROR,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_INSERT,
    MSG_METRICS,
    MSG_METRICS_OK,
    MSG_PING,
    MSG_PING_OK,
    MSG_QUERY,
    MSG_QUERY_OK,
    MSG_SNAP_PULL,
    MSG_SNAP_PULL_OK,
    MSG_SNAP_PUSH,
    MSG_SNAP_PUSH_OK,
    MSG_STATS,
    MSG_STATS_OK,
    MSG_TRACE_PULL,
    MSG_TRACE_PULL_OK,
    PROTOCOL_VERSION,
    FrameReader,
    MessageError,
    ProtocolError,
    RemoteError,
    VersionMismatch,
    inserts_to_wire,
    outcomes_from_wire,
    parse_address,
    queries_to_wire,
    send_frame,
    stats_from_wire,
    trace_ctx_to_wire,
)

__all__ = ["NetClientStats", "RemoteMemoClient", "TransportUnavailable"]

log = logging.getLogger("repro.net.client")

# distinguishes same-named client instances (two solvers sharing one tier)
# in the insert-batch tags the server dedups replays by
_instance_seq = itertools.count(1)


class TransportUnavailable(ConnectionError):
    """The memo server cannot be reached (raised only with fail_open=False)."""


@dataclass
class NetClientStats:
    """Client-side transport counters (reconnects, degradation, pipelining)."""

    connects: int = 0
    connect_failures: int = 0
    requests: int = 0
    degraded_query_batches: int = 0
    degraded_queries: int = 0
    degraded_insert_batches: int = 0
    degraded_stats_pulls: int = 0
    pipelined_inserts: int = 0
    drained_acks: int = 0
    retries: int = 0
    replayed_insert_batches: int = 0
    dropped_replays: int = 0

    def publish(self, **labels) -> None:
        """Register every counter as a ``net_client_<field>`` gauge.

        Call on a *copy* taken outside the client lock; publishing sets
        snapshot values, so republishing is idempotent."""
        if not obs.enabled():
            return
        for field_name, value in vars(self).items():
            obs.gauge(f"net_client_{field_name}", **labels).set(float(value))


class RemoteMemoClient:
    """One host's connection to the shared memo service.

    ``expect_tau`` / ``expect_value_mode`` (usually taken from the local
    :class:`~repro.core.config.MemoConfig`) are checked against the server's
    advertised configuration at handshake; a mismatch raises ``ValueError``
    regardless of ``fail_open``, because serving hits gated by a different
    tau would silently change memoization decisions.

    ``encoder_fingerprint`` (the executor's ``_encoder_fingerprint()``) is
    sent at handshake; the server pins the first one it sees and rejects
    conflicting clients, so two hosts with different CNN trainings cannot
    quietly co-mingle keys in one tier.  ``n_shards_hint`` labels shard ids
    (for event traces) until the first successful handshake reports the
    server's true shard count.
    """

    def __init__(
        self,
        address,
        expect_tau: float | None = None,
        expect_value_mode: str | None = None,
        encoder_fingerprint: dict | None = None,
        fail_open: bool = True,
        n_shards_hint: int = 1,
        connect_timeout: float = 5.0,
        io_timeout: float | None = 60.0,
        backoff_initial_s: float = 0.05,
        backoff_max_s: float = 5.0,
        max_inflight: int = 8,
        client_name: str = "memo-client",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.address = parse_address(address)
        self.expect_tau = expect_tau
        self.expect_value_mode = expect_value_mode
        self.encoder_fingerprint = encoder_fingerprint
        self.fail_open = fail_open
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self.max_inflight = max_inflight
        self.client_name = client_name
        self.retry_policy = retry_policy or RetryPolicy(
            backoff_initial_s=backoff_initial_s, backoff_max_s=backoff_max_s
        )
        self.net_stats = NetClientStats()  # guarded-by: self._lock
        self.server_info: dict | None = None
        self._n_shards = max(1, int(n_shards_hint))
        # fault-injection site keyed by the client NAME, not host:port — the
        # chaos suite replays plans across runs whose daemons sit on fresh
        # ephemeral ports, and the per-site RNG streams must line up
        self._fault_site = f"client:{client_name}"
        # insert batches are tagged so the server can skip replayed
        # duplicates (at-least-once wire delivery, at-most-once application)
        self._batch_tag = f"{client_name}#{os.getpid()}.{next(_instance_seq)}"
        self._insert_seq = 0  # guarded-by: self._lock
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None  # guarded-by: self._lock
        self._reader: FrameReader | None = None  # guarded-by: self._lock
        # (request id, wire body) of unacked pipelined inserts — the body
        # rides along so a dropped connection can replay them on reconnect
        self._pending: deque[tuple[int, dict]] = deque()  # guarded-by: self._lock
        # unacked insert bodies salvaged from a dropped connection
        self._replay: list[dict] = []  # guarded-by: self._lock
        self._req_seq = 0  # guarded-by: self._lock
        # seeded decorrelated-jitter schedule: reproducible per client name,
        # different across clients (no thundering herd on daemon restart)
        backoff_seed = seed_from_name(
            f"{client_name}@{self.address[0]}:{self.address[1]}"
        )
        self._backoff_state = self.retry_policy.backoff(backoff_seed)  # guarded-by: self._lock
        # monotonic deadline for the next connect try
        self._next_attempt = 0.0  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock
        self._outage_logged = False  # guarded-by: self._lock
        # eager first connect: deterministic misconfiguration (version/tau/
        # value-mode skew) surfaces at construction; a merely-down server
        # follows the fail-open rules like any later call
        try:
            self._ensure_locked()
        except VersionMismatch:
            raise
        except (OSError, ProtocolError):
            if not fail_open:
                raise

    # -- connection management -----------------------------------------------------------

    @property
    def connected(self) -> bool:
        with self._lock:
            return self._sock is not None

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, location: int) -> int:
        """Consistent location -> shard labeling (server topology once
        known, the constructor hint before that)."""
        return shard_of_location(location, self._n_shards)

    def reset_backoff(self) -> None:
        """Forget the current backoff window so the next call retries
        immediately — for callers that *know* the server just came back
        (tests, operator tooling) rather than waiting out the schedule."""
        with self._lock:
            self._backoff_state.reset()
            self._next_attempt = 0.0

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_locked()
            self._replay.clear()

    def __enter__(self) -> "RemoteMemoClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None
        if self._pending:
            # salvage unacked insert bodies for replay on reconnect — the
            # server may or may not have applied them; re-applying is safe
            # (inserts are idempotent at the memo level: same key, same
            # value) while dropping them silently cools the shared tier
            self._replay.extend(body for _rid, body in self._pending)
            cap = 4 * self.max_inflight
            if len(self._replay) > cap:
                dropped = len(self._replay) - cap
                self._replay = self._replay[-cap:]
                self.net_stats.dropped_replays += dropped
        self._pending.clear()

    def _fail_locked(self, exc: Exception, arm_backoff: bool = True) -> None:
        """Connection-level failure: drop the socket and — for failed
        *connect* attempts — arm the backoff window (decorrelated jitter
        under the hard cap, see RetryPolicy).  A dropped *established*
        connection passes ``arm_backoff=False``: the server may be
        perfectly healthy (a faulted frame, a reset), so the next request
        reconnects immediately; only if that connect itself fails does the
        window arm.  This is what keeps a recoverable fault from degrading
        queries that a live server would have answered."""
        self._drop_locked()
        self.net_stats.connect_failures += 1
        if arm_backoff:
            self._next_attempt = time.monotonic() + self._backoff_state.next_delay(
                self.backoff_initial_s, self.backoff_max_s
            )
        else:
            self._next_attempt = 0.0
        if not self._outage_logged:
            log.warning(
                "%s: memo server %s:%d unavailable (%s) — degrading to cold "
                "compute, will keep retrying",
                self.client_name, self.address[0], self.address[1], exc,
            )
            self._outage_logged = True

    def _ensure_locked(self) -> bool:
        """Connect + handshake if disconnected; False while backing off or
        unreachable (after arming the next retry)."""
        if self._closed:
            raise TransportUnavailable("client is closed")
        if self._sock is not None:
            return True
        if time.monotonic() < self._next_attempt:
            return False
        try:
            faults.on_connect(self._fault_site)
            sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        except OSError as exc:
            self._fail_locked(exc)
            return False
        sock = faults.wrap_socket(sock, self._fault_site)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.connect_timeout)
            reader = FrameReader(sock)
            send_frame(
                sock, MSG_HELLO, 0,
                {
                    "version": PROTOCOL_VERSION,
                    "client": self.client_name,
                    "encoder": self.encoder_fingerprint,
                },
            )
            msg_type, _rid, body = reader.read_frame()
            if msg_type == MSG_ERROR:
                self._raise_remote(body)
            if msg_type != MSG_HELLO_OK or not isinstance(body, dict):
                raise MessageError(f"unexpected handshake reply type {msg_type}")
            self._check_server(body)
            sock.settimeout(self.io_timeout)
        except VersionMismatch:
            sock.close()
            raise  # deterministic: retrying cannot help, fail fast
        except ValueError:
            sock.close()
            raise  # configuration mismatch — never degrade past it
        except RemoteError as exc:
            # the server answered the handshake with a rejection (conflicting
            # encoder provenance): deterministic, so never fail open past it
            sock.close()
            raise ValueError(
                f"memo server rejected this client: {exc.remote_message}"
            ) from None
        except (OSError, ProtocolError) as exc:
            sock.close()
            self._fail_locked(exc)
            return False
        self._sock = sock
        self._reader = reader
        self.server_info = body
        self._n_shards = max(1, int(body.get("n_shards", self._n_shards)))
        self._backoff_state.reset()
        self._outage_logged = False
        self.net_stats.connects += 1
        if self._replay:
            # re-transmit insert bodies that were in flight when the last
            # connection died — this is what keeps a faulted run's tier
            # identical to the fault-free run's (re-applying an already
            # applied insert is harmless: same key, same value)
            replay, self._replay = self._replay, []
            for i, replay_body in enumerate(replay):
                try:
                    with obs.span(
                        "net_client.request", type="insert_batch",
                        pipelined=True, replayed=True,
                    ):
                        rid = self._send_locked(MSG_INSERT, replay_body)
                except (OSError, ProtocolError) as exc:
                    # _fail_locked salvages the already-sent bodies (they
                    # sit in _pending); the unsent remainder goes back too
                    self._fail_locked(exc, arm_backoff=False)
                    self._replay.extend(replay[i:])
                    return False
                self._pending.append((rid, replay_body))
                self.net_stats.replayed_insert_batches += 1
        return True

    def _check_server(self, info: dict) -> None:
        if info.get("version") != PROTOCOL_VERSION:
            raise VersionMismatch(
                f"server speaks protocol version {info.get('version')!r}, this "
                f"client speaks {PROTOCOL_VERSION} — upgrade the older side"
            )
        if self.expect_tau is not None and float(info.get("tau")) != self.expect_tau:
            raise ValueError(
                f"memo server at {self.address[0]}:{self.address[1]} runs "
                f"tau={info.get('tau')}, this client is configured for "
                f"tau={self.expect_tau} — hits would be gated differently"
            )
        if (
            self.expect_value_mode is not None
            and info.get("value_mode") != self.expect_value_mode
        ):
            raise ValueError(
                f"memo server value_mode {info.get('value_mode')!r} != configured "
                f"{self.expect_value_mode!r}"
            )

    @staticmethod
    def _raise_remote(body) -> None:
        kind = body.get("kind", "error") if isinstance(body, dict) else "error"
        message = body.get("message", "") if isinstance(body, dict) else repr(body)
        if kind == "VersionMismatch":
            raise VersionMismatch(message)
        raise RemoteError(kind, message)

    # -- request plumbing ----------------------------------------------------------------

    def _trace_field_locked(self) -> dict | None:
        """The outgoing request's optional trace-context field.

        Attached only when observability is enabled, a span is open in
        this context, AND the server advertised :data:`FEATURE_TRACE` at
        handshake — so old servers never see the key (interop is gated on
        the handshake, not a protocol-version bump) and tracing-off runs
        put byte-identical frames on the wire."""
        if not obs.enabled():
            return None
        info = self.server_info
        if not info or FEATURE_TRACE not in (info.get("features") or ()):
            return None
        return trace_ctx_to_wire(obs.current_trace_context())

    def _send_locked(self, msg_type: int, body) -> int:
        trace = self._trace_field_locked()
        if trace is not None and isinstance(body, dict):
            body = {**body, "trace": trace}
        self._req_seq += 1
        rid = self._req_seq
        send_frame(self._sock, msg_type, rid, body)
        self.net_stats.requests += 1
        return rid

    def _read_until_locked(self, rid: int):
        """Drain the ordered response stream up to request ``rid``; earlier
        frames must be acks of pipelined inserts (popped as they pass).
        Returns without popping ``rid`` itself even if it is the pending
        head — the caller owns that bookkeeping."""
        while True:
            msg_type, got_rid, body = self._reader.read_frame()
            if got_rid != rid:
                if self._pending and got_rid == self._pending[0][0]:
                    self._pending.popleft()
                    self.net_stats.drained_acks += 1
                    if msg_type == MSG_ERROR:
                        log.warning("pipelined insert %d rejected: %s", got_rid, body)
                    continue
                raise MessageError(
                    f"response for unknown request {got_rid} (awaiting {rid})"
                )
            if msg_type == MSG_ERROR:
                self._raise_remote(body)
            return msg_type, body

    def _sync_request(self, msg_type: int, body, expect_type: int):
        """One synchronous round trip under the lock; transport failures
        propagate as the underlying exception (callers decide fail-open).

        Failures on an *established* connection are retried under
        ``retry_policy`` (reconnect after the jittered backoff window, up
        to ``max_attempts`` within ``deadline_s``) — a mid-frame drop or a
        recv timeout recovers transparently.  An initially unreachable
        server is NOT retried here: that is the fail-open path, and the
        backoff window already rations connect attempts."""
        policy = self.retry_policy
        type_name = MESSAGE_NAMES.get(msg_type, str(msg_type))
        with self._lock:
            if not self._ensure_locked():
                raise TransportUnavailable(
                    f"memo server {self.address[0]}:{self.address[1]} is "
                    "unreachable (backing off)"
                )
            deadline = (
                None
                if policy.deadline_s is None
                else time.monotonic() + policy.deadline_s
            )
            last_exc: Exception | None = None
            for attempt in range(1, policy.max_attempts + 1):
                if self._sock is None:
                    # reconnect for a retry attempt: wait out the (short,
                    # jittered) backoff window unless that blows the deadline
                    delay = max(0.0, self._next_attempt - time.monotonic())
                    if deadline is not None and time.monotonic() + delay > deadline:
                        break
                    if delay > 0:
                        time.sleep(delay)
                    self._next_attempt = 0.0
                    if not self._ensure_locked():
                        last_exc = TransportUnavailable(
                            f"memo server {self.address[0]}:{self.address[1]} "
                            "refused the retry reconnect"
                        )
                        continue
                    self.net_stats.retries += 1
                    obs.counter(
                        "net_client_retries_total", type=type_name
                    ).inc()
                t0 = time.monotonic()
                try:
                    # the request span is the hop's client-side half: the
                    # server span it parents (via the trace field read
                    # INSIDE it by _send_locked) subtracts out to the
                    # wire+queue cost in the stitched report.  Each retry
                    # attempt is its own span; all share the caller's trace
                    with obs.span(
                        "net_client.request", type=type_name, attempt=attempt
                    ):
                        rid = self._send_locked(msg_type, body)
                        reply_type, reply = self._read_until_locked(rid)
                except RemoteError:
                    raise  # the connection is fine; the request was rejected
                except (OSError, ProtocolError) as exc:
                    self._fail_locked(exc, arm_backoff=False)
                    if attempt >= policy.max_attempts:
                        raise
                    last_exc = exc
                    continue
                finally:
                    # wire round trip as seen by the caller (includes any
                    # pipelined-insert acks drained on the way to this reply)
                    obs.histogram(
                        "net_client_request_seconds", type=type_name
                    ).observe(time.monotonic() - t0)
                if reply_type != expect_type:
                    exc = MessageError(
                        f"expected reply type {expect_type}, got {reply_type}"
                    )
                    self._fail_locked(exc, arm_backoff=False)
                    raise exc
                return reply
            raise last_exc if last_exc is not None else TransportUnavailable(
                f"memo server {self.address[0]}:{self.address[1]}: "
                f"{policy.max_attempts} attempts exhausted"
            )

    def _drain_one_locked(self) -> None:
        """Block until the oldest pipelined insert is acknowledged."""
        rid = self._pending[0][0]
        try:
            self._read_until_locked(rid)
        except RemoteError as exc:
            log.warning("pipelined insert %d rejected: %s", rid, exc)
        if self._pending and self._pending[0][0] == rid:
            self._pending.popleft()
            self.net_stats.drained_acks += 1

    def flush(self) -> None:
        """Drain every outstanding pipelined insert acknowledgement.  With
        ``fail_open=False`` an undrainable connection raises (the replicated
        tier uses that to mark the replica dirty for resync); fail-open
        callers just lose the acks, like every other degraded path."""
        with self._lock:
            if self._sock is None:
                if self._replay and not self.fail_open:
                    raise TransportUnavailable(
                        f"{len(self._replay)} unacked insert batches await replay"
                    )
                return
            try:
                while self._pending:
                    self._drain_one_locked()
            except (OSError, ProtocolError) as exc:
                self._fail_locked(exc, arm_backoff=False)
                if not self.fail_open:
                    raise

    # -- the batched memo service surface ------------------------------------------------

    def query_batch(self, queries) -> list[QueryOutcome]:
        """One coalesced key batch -> outcomes in request order; a dead
        server answers all-miss (cold compute) instead of raising."""
        queries = list(queries)
        if not queries:
            return []
        try:
            reply = self._sync_request(
                MSG_QUERY, {"queries": queries_to_wire(queries)}, MSG_QUERY_OK
            )
            outcomes = outcomes_from_wire(reply.get("outcomes"))
            if len(outcomes) != len(queries):
                raise MessageError(
                    f"server answered {len(outcomes)} outcomes for "
                    f"{len(queries)} queries"
                )
            return outcomes
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            # TransportUnavailable is an OSError: unreachable and broken
            # servers degrade the same way
            if not self.fail_open:
                raise
            # the degraded counters are part of the lock-guarded stats:
            # solver threads and stats pulls race these increments otherwise
            with self._lock:
                self.net_stats.degraded_query_batches += 1
                self.net_stats.degraded_queries += len(queries)
            obs.counter("net_client_degraded_total", kind="query_batch").inc()
            obs.counter("net_client_degraded_total", kind="query").inc(len(queries))
            return [QueryOutcome(None, -2.0, -1, 0) for _ in queries]

    def insert_batch(self, inserts) -> list[int]:
        """Transmit one batched insertion message, pipelined: the call
        returns once the frame is written; the ack is drained before a later
        synchronous request.  Returns ``-1`` placeholder ids (the real ids
        live on the server; no caller consumes them remotely)."""
        inserts = list(inserts)
        if not inserts:
            return []
        with self._lock:
            # serialized (and tagged) up front so a mid-transmission failure
            # can still park the exact batch for replay — losing it would
            # cool the shared tier and make a faulted run's hit/miss
            # decisions diverge from fault-free; the tag lets the server
            # skip the replay if the original actually arrived
            self._insert_seq += 1
            wire_body = {
                "inserts": inserts_to_wire(inserts),
                "batch": f"{self._batch_tag}:{self._insert_seq}",
            }
            try:
                if not self._ensure_locked():
                    raise TransportUnavailable("backing off")
                while len(self._pending) >= self.max_inflight:
                    self._drain_one_locked()
                # pipelined: the span covers only the transmit (the ack is
                # drained later by whoever's _read_until_locked passes it);
                # the server-side handler span still parents under it via
                # the trace field, so stitched trees show fire-and-forget
                # inserts as near-zero client spans with real server work
                with obs.span("net_client.request", type="insert", pipelined=True):
                    rid = self._send_locked(MSG_INSERT, wire_body)
                self._pending.append((rid, wire_body))
                self.net_stats.pipelined_inserts += len(inserts)
            except (VersionMismatch, RemoteError):
                raise
            except TransportUnavailable:
                if not self.fail_open:
                    raise
                self.net_stats.degraded_insert_batches += 1
                obs.counter("net_client_degraded_total", kind="insert_batch").inc()
            except (OSError, ProtocolError) as exc:
                self._fail_locked(exc, arm_backoff=False)
                # the batch was never acknowledged: park it so the next
                # reconnect replays it (idempotent server-side)
                self._replay.append(wire_body)
                cap = 4 * self.max_inflight
                if len(self._replay) > cap:
                    self._replay = self._replay[-cap:]
                    self.net_stats.dropped_replays += 1
                if not self.fail_open:
                    raise
                self.net_stats.degraded_insert_batches += 1
                obs.counter("net_client_degraded_total", kind="insert_batch").inc()
        return [-1] * len(inserts)

    # -- liveness ------------------------------------------------------------------------

    def ping(self) -> bool:
        """One MSG_PING/MSG_PING_OK heartbeat round trip.  ``True`` means
        the server answered; ``False`` (fail-open) that it is unreachable.
        Deterministic rejections raise, like every other request."""
        try:
            reply = self._sync_request(MSG_PING, {}, MSG_PING_OK)
            return isinstance(reply, dict)
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            return False

    # -- statistics ----------------------------------------------------------------------

    def _stats_body(self, op: str | None) -> dict | None:
        try:
            return self._sync_request(MSG_STATS, {"op": op}, MSG_STATS_OK)
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            with self._lock:
                self.net_stats.degraded_stats_pulls += 1
            obs.counter("net_client_degraded_total", kind="stats_pull").inc()
            return None

    def stats(self, op: str | None = None) -> MemoDBStats:
        body = self._stats_body(op)
        if body is None:
            return MemoDBStats()
        return MemoDBStats.merged(stats_from_wire(s) for s in body["per_shard"])

    def per_shard_stats(self, op: str | None = None) -> list[MemoDBStats]:
        body = self._stats_body(op)
        if body is None:
            return [MemoDBStats() for _ in range(self._n_shards)]
        return [stats_from_wire(s) for s in body["per_shard"]]

    def entries(self, op: str | None = None) -> int:
        return sum(self.per_shard_entries(op))

    def per_shard_entries(self, op: str | None = None) -> list[int]:
        body = self._stats_body(op)
        if body is None:
            return [0] * self._n_shards
        return [int(n) for n in body["per_shard_entries"]]

    def metrics(self) -> dict | None:
        """Pull the server's observability view: its traffic counters plus
        its full metric-registry snapshot (request/shard latency histograms
        when the server process runs with observability enabled).

        Also publishes this client's own transport counters into the *local*
        registry, so one dump carries both sides of the wire.  Fail-open
        returns ``None`` when the server is unreachable."""
        with self._lock:
            stats_now = NetClientStats(**vars(self.net_stats))
        stats_now.publish(client=self.client_name)
        try:
            return self._sync_request(MSG_METRICS, {}, MSG_METRICS_OK)
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            with self._lock:
                self.net_stats.degraded_stats_pulls += 1
            obs.counter("net_client_degraded_total", kind="metrics_pull").inc()
            return None

    def trace_pull(self) -> dict | None:
        """Drain the server's span ring buffers (one-shot: spans transfer,
        they are not copied).  Returns ``{"server", "obs_enabled", "spans",
        "dropped"}``, or ``None`` when the server predates the trace
        feature (it would reject the unknown message and kill the
        connection) or is unreachable under fail-open."""
        info = self.server_info
        if info is not None and FEATURE_TRACE not in (info.get("features") or ()):
            return None
        try:
            reply = self._sync_request(MSG_TRACE_PULL, {}, MSG_TRACE_PULL_OK)
            return reply if isinstance(reply, dict) else None
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            obs.counter("net_client_degraded_total", kind="trace_pull").inc()
            return None

    # -- snapshot surface (the router's state hooks, over the wire) ----------------------

    def state_dict(self) -> dict:
        """Pull the server's full tier (``memo_state()``-compatible tree).
        Fail-open returns an *empty* single-layout tree when the server is
        unreachable — callers persisting it will persist a cold tier."""
        try:
            reply = self._sync_request(MSG_SNAP_PULL, {}, MSG_SNAP_PULL_OK)
            tree = reply.get("tree")
            if not isinstance(tree, dict):
                raise MessageError("snapshot pull returned no tree")
            return tree
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError) as exc:
            if not self.fail_open:
                raise
            log.warning("snapshot pull degraded to an empty tier: %s", exc)
            return {"layout": "single", "partitions": []}

    def push_state(self, tree: dict) -> bool:
        """Merge a tier into the server (partition-level union, ours wins).
        Returns False (fail-open) when the server is unreachable; server-side
        rejections (tau / encoder mismatch) raise ``ValueError``."""
        try:
            self._sync_request(MSG_SNAP_PUSH, {"tree": tree}, MSG_SNAP_PUSH_OK)
            return True
        except RemoteError as exc:
            raise ValueError(exc.remote_message) from None
        except VersionMismatch:
            raise
        except (OSError, ProtocolError) as exc:
            if not self.fail_open:
                raise
            log.warning("snapshot push dropped (server unreachable): %s", exc)
            return False

    # alias: the router's load_state vocabulary
    def load_state(self, tree: dict) -> None:
        self.push_state(tree)
