"""Remote memo client: the :class:`~repro.core.memo_shard.MemoShardRouter`
surface over a TCP connection to a :class:`~repro.net.server.MemoServerDaemon`.

:class:`RemoteMemoClient` is what the distributed executor swaps in when
``MemoConfig(transport="tcp")`` is set: it speaks the same batched
``query_batch`` / ``insert_batch`` / ``stats`` / ``state_dict`` vocabulary
as the in-process router, so every caller above it is transport-blind.

Three behaviors define it:

- **request pipelining** — insert batches (asynchronous in the paper:
  nothing in a sweep depends on them) are transmitted without waiting for
  the acknowledgement; acks are drained opportunistically before the next
  synchronous request, so the insert round trip overlaps the next sweep's
  compute,
- **reconnect with backoff** — a lost connection schedules an exponentially
  backed-off retry; every call transparently reconnects once the retry
  window opens,
- **fail-open** — with ``fail_open=True`` (the default) a dead or
  unreachable server degrades queries to all-miss outcomes and drops
  inserts/stats on the floor: the reconstruction continues on cold compute
  and *never* fails because the memo tier did.  Deterministic
  misconfiguration (protocol version skew, tau / value-mode mismatch
  against the server) always raises — a mismatched tier would silently
  change hit/miss decisions, which is worse than unavailability.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..core.memo_db import MemoDBStats, QueryOutcome
from ..core.memo_shard import shard_of_location
from ..obs import runtime as obs
from .wire import (
    MESSAGE_NAMES,
    MSG_ERROR,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_INSERT,
    MSG_METRICS,
    MSG_METRICS_OK,
    MSG_QUERY,
    MSG_QUERY_OK,
    MSG_SNAP_PULL,
    MSG_SNAP_PULL_OK,
    MSG_SNAP_PUSH,
    MSG_SNAP_PUSH_OK,
    MSG_STATS,
    MSG_STATS_OK,
    PROTOCOL_VERSION,
    FrameReader,
    MessageError,
    ProtocolError,
    RemoteError,
    VersionMismatch,
    inserts_to_wire,
    outcomes_from_wire,
    parse_address,
    queries_to_wire,
    send_frame,
    stats_from_wire,
)

__all__ = ["NetClientStats", "RemoteMemoClient", "TransportUnavailable"]

log = logging.getLogger("repro.net.client")


class TransportUnavailable(ConnectionError):
    """The memo server cannot be reached (raised only with fail_open=False)."""


@dataclass
class NetClientStats:
    """Client-side transport counters (reconnects, degradation, pipelining)."""

    connects: int = 0
    connect_failures: int = 0
    requests: int = 0
    degraded_query_batches: int = 0
    degraded_queries: int = 0
    degraded_insert_batches: int = 0
    degraded_stats_pulls: int = 0
    pipelined_inserts: int = 0
    drained_acks: int = 0

    def publish(self, **labels) -> None:
        """Register every counter as a ``net_client_<field>`` gauge.

        Call on a *copy* taken outside the client lock; publishing sets
        snapshot values, so republishing is idempotent."""
        if not obs.enabled():
            return
        for field_name, value in vars(self).items():
            obs.gauge(f"net_client_{field_name}", **labels).set(float(value))


class RemoteMemoClient:
    """One host's connection to the shared memo service.

    ``expect_tau`` / ``expect_value_mode`` (usually taken from the local
    :class:`~repro.core.config.MemoConfig`) are checked against the server's
    advertised configuration at handshake; a mismatch raises ``ValueError``
    regardless of ``fail_open``, because serving hits gated by a different
    tau would silently change memoization decisions.

    ``encoder_fingerprint`` (the executor's ``_encoder_fingerprint()``) is
    sent at handshake; the server pins the first one it sees and rejects
    conflicting clients, so two hosts with different CNN trainings cannot
    quietly co-mingle keys in one tier.  ``n_shards_hint`` labels shard ids
    (for event traces) until the first successful handshake reports the
    server's true shard count.
    """

    def __init__(
        self,
        address,
        expect_tau: float | None = None,
        expect_value_mode: str | None = None,
        encoder_fingerprint: dict | None = None,
        fail_open: bool = True,
        n_shards_hint: int = 1,
        connect_timeout: float = 5.0,
        io_timeout: float | None = 60.0,
        backoff_initial_s: float = 0.05,
        backoff_max_s: float = 5.0,
        max_inflight: int = 8,
        client_name: str = "memo-client",
    ) -> None:
        self.address = parse_address(address)
        self.expect_tau = expect_tau
        self.expect_value_mode = expect_value_mode
        self.encoder_fingerprint = encoder_fingerprint
        self.fail_open = fail_open
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self.max_inflight = max_inflight
        self.client_name = client_name
        self.net_stats = NetClientStats()  # guarded-by: self._lock
        self.server_info: dict | None = None
        self._n_shards = max(1, int(n_shards_hint))
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None  # guarded-by: self._lock
        self._reader: FrameReader | None = None  # guarded-by: self._lock
        # request ids of unacked inserts
        self._pending: deque[int] = deque()  # guarded-by: self._lock
        self._req_seq = 0  # guarded-by: self._lock
        self._backoff = backoff_initial_s  # guarded-by: self._lock
        # monotonic deadline for the next connect try
        self._next_attempt = 0.0  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock
        self._outage_logged = False  # guarded-by: self._lock
        # eager first connect: deterministic misconfiguration (version/tau/
        # value-mode skew) surfaces at construction; a merely-down server
        # follows the fail-open rules like any later call
        try:
            self._ensure_locked()
        except VersionMismatch:
            raise
        except (OSError, ProtocolError):
            if not fail_open:
                raise

    # -- connection management -----------------------------------------------------------

    @property
    def connected(self) -> bool:
        with self._lock:
            return self._sock is not None

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, location: int) -> int:
        """Consistent location -> shard labeling (server topology once
        known, the constructor hint before that)."""
        return shard_of_location(location, self._n_shards)

    def reset_backoff(self) -> None:
        """Forget the current backoff window so the next call retries
        immediately — for callers that *know* the server just came back
        (tests, operator tooling) rather than waiting out the schedule."""
        with self._lock:
            self._backoff = self.backoff_initial_s
            self._next_attempt = 0.0

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_locked()

    def __enter__(self) -> "RemoteMemoClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None
        self._pending.clear()

    def _fail_locked(self, exc: Exception) -> None:
        """Connection-level failure: drop the socket, arm the backoff."""
        self._drop_locked()
        self.net_stats.connect_failures += 1
        self._next_attempt = time.monotonic() + self._backoff
        self._backoff = min(self._backoff * 2.0, self.backoff_max_s)
        if not self._outage_logged:
            log.warning(
                "%s: memo server %s:%d unavailable (%s) — degrading to cold "
                "compute, will keep retrying",
                self.client_name, self.address[0], self.address[1], exc,
            )
            self._outage_logged = True

    def _ensure_locked(self) -> bool:
        """Connect + handshake if disconnected; False while backing off or
        unreachable (after arming the next retry)."""
        if self._closed:
            raise TransportUnavailable("client is closed")
        if self._sock is not None:
            return True
        if time.monotonic() < self._next_attempt:
            return False
        try:
            sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        except OSError as exc:
            self._fail_locked(exc)
            return False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.connect_timeout)
            reader = FrameReader(sock)
            send_frame(
                sock, MSG_HELLO, 0,
                {
                    "version": PROTOCOL_VERSION,
                    "client": self.client_name,
                    "encoder": self.encoder_fingerprint,
                },
            )
            msg_type, _rid, body = reader.read_frame()
            if msg_type == MSG_ERROR:
                self._raise_remote(body)
            if msg_type != MSG_HELLO_OK or not isinstance(body, dict):
                raise MessageError(f"unexpected handshake reply type {msg_type}")
            self._check_server(body)
            sock.settimeout(self.io_timeout)
        except VersionMismatch:
            sock.close()
            raise  # deterministic: retrying cannot help, fail fast
        except ValueError:
            sock.close()
            raise  # configuration mismatch — never degrade past it
        except RemoteError as exc:
            # the server answered the handshake with a rejection (conflicting
            # encoder provenance): deterministic, so never fail open past it
            sock.close()
            raise ValueError(
                f"memo server rejected this client: {exc.remote_message}"
            ) from None
        except (OSError, ProtocolError) as exc:
            sock.close()
            self._fail_locked(exc)
            return False
        self._sock = sock
        self._reader = reader
        self.server_info = body
        self._n_shards = max(1, int(body.get("n_shards", self._n_shards)))
        self._backoff = self.backoff_initial_s
        self._outage_logged = False
        self.net_stats.connects += 1
        return True

    def _check_server(self, info: dict) -> None:
        if info.get("version") != PROTOCOL_VERSION:
            raise VersionMismatch(
                f"server speaks protocol version {info.get('version')!r}, this "
                f"client speaks {PROTOCOL_VERSION} — upgrade the older side"
            )
        if self.expect_tau is not None and float(info.get("tau")) != self.expect_tau:
            raise ValueError(
                f"memo server at {self.address[0]}:{self.address[1]} runs "
                f"tau={info.get('tau')}, this client is configured for "
                f"tau={self.expect_tau} — hits would be gated differently"
            )
        if (
            self.expect_value_mode is not None
            and info.get("value_mode") != self.expect_value_mode
        ):
            raise ValueError(
                f"memo server value_mode {info.get('value_mode')!r} != configured "
                f"{self.expect_value_mode!r}"
            )

    @staticmethod
    def _raise_remote(body) -> None:
        kind = body.get("kind", "error") if isinstance(body, dict) else "error"
        message = body.get("message", "") if isinstance(body, dict) else repr(body)
        if kind == "VersionMismatch":
            raise VersionMismatch(message)
        raise RemoteError(kind, message)

    # -- request plumbing ----------------------------------------------------------------

    def _send_locked(self, msg_type: int, body) -> int:
        self._req_seq += 1
        rid = self._req_seq
        send_frame(self._sock, msg_type, rid, body)
        self.net_stats.requests += 1
        return rid

    def _read_until_locked(self, rid: int):
        """Drain the ordered response stream up to request ``rid``; earlier
        frames must be acks of pipelined inserts (popped as they pass).
        Returns without popping ``rid`` itself even if it is the pending
        head — the caller owns that bookkeeping."""
        while True:
            msg_type, got_rid, body = self._reader.read_frame()
            if got_rid != rid:
                if self._pending and got_rid == self._pending[0]:
                    self._pending.popleft()
                    self.net_stats.drained_acks += 1
                    if msg_type == MSG_ERROR:
                        log.warning("pipelined insert %d rejected: %s", got_rid, body)
                    continue
                raise MessageError(
                    f"response for unknown request {got_rid} (awaiting {rid})"
                )
            if msg_type == MSG_ERROR:
                self._raise_remote(body)
            return msg_type, body

    def _sync_request(self, msg_type: int, body, expect_type: int):
        """One synchronous round trip under the lock; transport failures
        propagate as the underlying exception (callers decide fail-open)."""
        with self._lock:
            if not self._ensure_locked():
                raise TransportUnavailable(
                    f"memo server {self.address[0]}:{self.address[1]} is "
                    "unreachable (backing off)"
                )
            t0 = time.monotonic()
            try:
                rid = self._send_locked(msg_type, body)
                reply_type, reply = self._read_until_locked(rid)
            except RemoteError:
                raise  # the connection is fine; the request was rejected
            except (OSError, ProtocolError) as exc:
                self._fail_locked(exc)
                raise
            finally:
                # wire round trip as seen by the caller (includes any
                # pipelined-insert acks drained on the way to this reply)
                obs.histogram(
                    "net_client_request_seconds",
                    type=MESSAGE_NAMES.get(msg_type, str(msg_type)),
                ).observe(time.monotonic() - t0)
            if reply_type != expect_type:
                exc = MessageError(
                    f"expected reply type {expect_type}, got {reply_type}"
                )
                self._fail_locked(exc)
                raise exc
            return reply

    def _drain_one_locked(self) -> None:
        """Block until the oldest pipelined insert is acknowledged."""
        rid = self._pending[0]
        try:
            self._read_until_locked(rid)
        except RemoteError as exc:
            log.warning("pipelined insert %d rejected: %s", rid, exc)
        if self._pending and self._pending[0] == rid:
            self._pending.popleft()
            self.net_stats.drained_acks += 1

    def flush(self) -> None:
        """Drain every outstanding pipelined insert acknowledgement."""
        with self._lock:
            if self._sock is None:
                return
            try:
                while self._pending:
                    self._drain_one_locked()
            except (OSError, ProtocolError) as exc:
                self._fail_locked(exc)

    # -- the batched memo service surface ------------------------------------------------

    def query_batch(self, queries) -> list[QueryOutcome]:
        """One coalesced key batch -> outcomes in request order; a dead
        server answers all-miss (cold compute) instead of raising."""
        queries = list(queries)
        if not queries:
            return []
        try:
            reply = self._sync_request(
                MSG_QUERY, {"queries": queries_to_wire(queries)}, MSG_QUERY_OK
            )
            outcomes = outcomes_from_wire(reply.get("outcomes"))
            if len(outcomes) != len(queries):
                raise MessageError(
                    f"server answered {len(outcomes)} outcomes for "
                    f"{len(queries)} queries"
                )
            return outcomes
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            # TransportUnavailable is an OSError: unreachable and broken
            # servers degrade the same way
            if not self.fail_open:
                raise
            # the degraded counters are part of the lock-guarded stats:
            # solver threads and stats pulls race these increments otherwise
            with self._lock:
                self.net_stats.degraded_query_batches += 1
                self.net_stats.degraded_queries += len(queries)
            obs.counter("net_client_degraded_total", kind="query_batch").inc()
            obs.counter("net_client_degraded_total", kind="query").inc(len(queries))
            return [QueryOutcome(None, -2.0, -1, 0) for _ in queries]

    def insert_batch(self, inserts) -> list[int]:
        """Transmit one batched insertion message, pipelined: the call
        returns once the frame is written; the ack is drained before a later
        synchronous request.  Returns ``-1`` placeholder ids (the real ids
        live on the server; no caller consumes them remotely)."""
        inserts = list(inserts)
        if not inserts:
            return []
        with self._lock:
            try:
                if not self._ensure_locked():
                    raise TransportUnavailable("backing off")
                while len(self._pending) >= self.max_inflight:
                    self._drain_one_locked()
                rid = self._send_locked(
                    MSG_INSERT, {"inserts": inserts_to_wire(inserts)}
                )
                self._pending.append(rid)
                self.net_stats.pipelined_inserts += len(inserts)
            except (VersionMismatch, RemoteError):
                raise
            except TransportUnavailable:
                if not self.fail_open:
                    raise
                self.net_stats.degraded_insert_batches += 1
                obs.counter("net_client_degraded_total", kind="insert_batch").inc()
            except (OSError, ProtocolError) as exc:
                self._fail_locked(exc)
                if not self.fail_open:
                    raise
                self.net_stats.degraded_insert_batches += 1
                obs.counter("net_client_degraded_total", kind="insert_batch").inc()
        return [-1] * len(inserts)

    # -- statistics ----------------------------------------------------------------------

    def _stats_body(self, op: str | None) -> dict | None:
        try:
            return self._sync_request(MSG_STATS, {"op": op}, MSG_STATS_OK)
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            with self._lock:
                self.net_stats.degraded_stats_pulls += 1
            obs.counter("net_client_degraded_total", kind="stats_pull").inc()
            return None

    def stats(self, op: str | None = None) -> MemoDBStats:
        body = self._stats_body(op)
        if body is None:
            return MemoDBStats()
        return MemoDBStats.merged(stats_from_wire(s) for s in body["per_shard"])

    def per_shard_stats(self, op: str | None = None) -> list[MemoDBStats]:
        body = self._stats_body(op)
        if body is None:
            return [MemoDBStats() for _ in range(self._n_shards)]
        return [stats_from_wire(s) for s in body["per_shard"]]

    def entries(self, op: str | None = None) -> int:
        return sum(self.per_shard_entries(op))

    def per_shard_entries(self, op: str | None = None) -> list[int]:
        body = self._stats_body(op)
        if body is None:
            return [0] * self._n_shards
        return [int(n) for n in body["per_shard_entries"]]

    def metrics(self) -> dict | None:
        """Pull the server's observability view: its traffic counters plus
        its full metric-registry snapshot (request/shard latency histograms
        when the server process runs with observability enabled).

        Also publishes this client's own transport counters into the *local*
        registry, so one dump carries both sides of the wire.  Fail-open
        returns ``None`` when the server is unreachable."""
        with self._lock:
            stats_now = NetClientStats(**vars(self.net_stats))
        stats_now.publish(client=self.client_name)
        try:
            return self._sync_request(MSG_METRICS, {}, MSG_METRICS_OK)
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError):
            if not self.fail_open:
                raise
            with self._lock:
                self.net_stats.degraded_stats_pulls += 1
            obs.counter("net_client_degraded_total", kind="metrics_pull").inc()
            return None

    # -- snapshot surface (the router's state hooks, over the wire) ----------------------

    def state_dict(self) -> dict:
        """Pull the server's full tier (``memo_state()``-compatible tree).
        Fail-open returns an *empty* single-layout tree when the server is
        unreachable — callers persisting it will persist a cold tier."""
        try:
            reply = self._sync_request(MSG_SNAP_PULL, {}, MSG_SNAP_PULL_OK)
            tree = reply.get("tree")
            if not isinstance(tree, dict):
                raise MessageError("snapshot pull returned no tree")
            return tree
        except (VersionMismatch, RemoteError):
            raise
        except (OSError, ProtocolError) as exc:
            if not self.fail_open:
                raise
            log.warning("snapshot pull degraded to an empty tier: %s", exc)
            return {"layout": "single", "partitions": []}

    def push_state(self, tree: dict) -> bool:
        """Merge a tier into the server (partition-level union, ours wins).
        Returns False (fail-open) when the server is unreachable; server-side
        rejections (tau / encoder mismatch) raise ``ValueError``."""
        try:
            self._sync_request(MSG_SNAP_PUSH, {"tree": tree}, MSG_SNAP_PUSH_OK)
            return True
        except RemoteError as exc:
            raise ValueError(exc.remote_message) from None
        except VersionMismatch:
            raise
        except (OSError, ProtocolError) as exc:
            if not self.fail_open:
                raise
            log.warning("snapshot push dropped (server unreachable): %s", exc)
            return False

    # alias: the router's load_state vocabulary
    def load_state(self, tree: dict) -> None:
        self.push_state(tree)
